"""Audit-pipeline overhead: events must be near-free when nobody
listens, and cheap when a ring buffer is.

Two serving-path configurations are measured:

* **plan path, events disabled** — the same descendant-heavy columnar
  workload as ``bench_obs_overhead.py`` (naive Adex Q1-Q3 + two
  structural ``//``-chains on D4), compared against the
  pre-audit-pipeline wall times checked into ``BENCH_obs.json``
  (``disabled_ms``).  The event layer lives entirely in the engine's
  epilogue, so plan execution must be unchanged: the acceptance bar is
  a geometric-mean ratio below 3%.
* **engine path, ring-buffer sink** — warm-cache
  ``SecureQueryEngine.query`` over the Section 6 view queries on D1,
  with no sinks versus with a
  :class:`~repro.obs.events.RingBufferSink` attached.  Building and
  buffering one :class:`QueryEvent` per query must cost under 5%
  (geomean).  D1 is deliberate: end-to-end queries there run in the
  ~0.1-100 ms range, so the fixed per-query event cost is *most*
  visible — the same bar on D4 (seconds per query) would be
  trivially satisfied.  A JSONL file sink is measured for scale (no
  bar — durable audit trails pay for their write+flush).

``test_audit_overhead`` writes ``BENCH_audit.json`` next to the
repository root for machine consumption.
"""

import json
import math
import time
from pathlib import Path

import pytest

from repro.core.engine import SecureQueryEngine
from repro.core.naive import annotate_document, naive_rewrite
from repro.obs.events import JsonlFileSink, RingBufferSink
from repro.workloads.adex import adex_dtd, adex_spec
from repro.workloads.documents import bench_scale, dataset
from repro.workloads.queries import ADEX_QUERIES, ADEX_QUERY_TEXTS
from repro.xmlmodel.store import build_node_table
from repro.xpath.parser import parse_xpath
from repro.xpath.plan import PlanRuntime, compile_path

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_audit.json"
BASELINE_PATH = REPO_ROOT / "BENCH_obs.json"

#: Plan execution must not notice the event layer at all.
PLAN_OVERHEAD_BAR = 1.03
#: An attached ring buffer may cost one event build + append per query.
SINK_OVERHEAD_BAR = 1.05

STRUCTURAL_QUERY_TEXTS = {
    "S1": "//body//real-estate//r-e.location",
    "S2": "//ad-instance//house//*",
}

PLAN_QUERY_NAMES = ["Q1", "Q2", "Q3", "S1", "S2"]
ENGINE_QUERY_NAMES = ["Q1", "Q2", "Q3", "Q4"]


def _plan_queries():
    queries = {
        name: naive_rewrite(ADEX_QUERIES[name]) for name in ("Q1", "Q2", "Q3")
    }
    for name, text in STRUCTURAL_QUERY_TEXTS.items():
        queries[name] = parse_xpath(text)
    return queries


@pytest.fixture(scope="module")
def plan_workload():
    document = dataset("D4")
    annotate_document(document, adex_spec(adex_dtd()))
    store = build_node_table(document)
    plans = {
        name: compile_path(query) for name, query in _plan_queries().items()
    }
    return document, store, plans


@pytest.fixture(scope="module")
def engine_workload():
    document = dataset("D1")
    dtd = adex_dtd()
    engine = SecureQueryEngine(dtd)
    engine.register_policy("adex", adex_spec(dtd))
    # warm: plan cache entries, projected plans, per-document caches
    for text in ADEX_QUERY_TEXTS.values():
        engine.query("adex", text, document)
    return engine, document


@pytest.mark.parametrize("query_name", PLAN_QUERY_NAMES)
def test_plan_events_disabled(benchmark, plan_workload, query_name):
    document, store, plans = plan_workload
    plan = plans[query_name]
    benchmark.group = "audit-plan-%s" % query_name
    benchmark(
        lambda: plan.execute(
            document, runtime=PlanRuntime(store=store), ordered=True
        )
    )


@pytest.mark.parametrize("query_name", ENGINE_QUERY_NAMES)
def test_engine_no_sink(benchmark, engine_workload, query_name):
    engine, document = engine_workload
    text = ADEX_QUERY_TEXTS[query_name]
    benchmark.group = "audit-engine-%s" % query_name
    benchmark(lambda: engine.query("adex", text, document))


@pytest.mark.parametrize("query_name", ENGINE_QUERY_NAMES)
def test_engine_ring_sink(benchmark, engine_workload, query_name):
    engine, document = engine_workload
    text = ADEX_QUERY_TEXTS[query_name]
    sink = engine.add_sink(RingBufferSink(capacity=1024))
    benchmark.group = "audit-engine-%s" % query_name
    try:
        benchmark(lambda: engine.query("adex", text, document))
    finally:
        engine.remove_sink(sink)
    assert sink.emitted > 0 and sink.dropped == 0


def test_sink_does_not_change_answers(engine_workload):
    """An attached sink must not change a single answer."""
    engine, document = engine_workload
    for text in ADEX_QUERY_TEXTS.values():
        plain = list(engine.query("adex", text, document))
        sink = engine.add_sink(RingBufferSink(capacity=16))
        try:
            audited = list(engine.query("adex", text, document))
        finally:
            engine.remove_sink(sink)
        assert len(audited) == len(plain), text
        assert sink.emitted == 1


def _best_mean(callable_, repetitions, trials=3):
    best = math.inf
    for _ in range(trials):
        start = time.perf_counter()
        for _ in range(repetitions):
            callable_()
        best = min(best, (time.perf_counter() - start) / repetitions)
    return best


def _geomean(ratios):
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def test_audit_overhead(plan_workload, engine_workload, request, tmp_path):
    """Acceptance bars: plan path unchanged (< 3% geomean vs
    ``BENCH_obs.json``), ring-buffer sink < 5% over the no-sink engine
    path.  Also emits ``BENCH_audit.json``."""
    if request.config.getoption("--quick", default=False):
        pytest.skip(
            "overhead bars are calibrated for full-size D4; quick-mode "
            "documents are overhead-bound"
        )
    if not BASELINE_PATH.exists():
        pytest.skip("no BENCH_obs.json baseline checked in")
    baseline = json.loads(BASELINE_PATH.read_text())["queries"]
    document, store, plans = plan_workload
    engine, engine_document = engine_workload
    repetitions = 5

    plan_cells = {}
    for name in PLAN_QUERY_NAMES:
        plan = plans[name]

        def run_plan():
            return plan.execute(
                document, runtime=PlanRuntime(store=store), ordered=True
            )

        measured_s = _best_mean(run_plan, repetitions)
        baseline_ms = baseline[name]["disabled_ms"]
        plan_cells[name] = {
            "baseline_disabled_ms": baseline_ms,
            "events_disabled_ms": measured_s * 1e3,
            "overhead": measured_s * 1e3 / baseline_ms,
        }

    engine_cells = {}
    jsonl_path = tmp_path / "bench_audit.jsonl"
    for name in ENGINE_QUERY_NAMES:
        text = ADEX_QUERY_TEXTS[name]

        def run_query():
            return engine.query("adex", text, engine_document)

        no_sink_s = _best_mean(run_query, repetitions)
        ring = engine.add_sink(RingBufferSink(capacity=1024))
        try:
            ring_s = _best_mean(run_query, repetitions)
        finally:
            engine.remove_sink(ring)
        jsonl = engine.add_sink(JsonlFileSink(jsonl_path))
        try:
            jsonl_s = _best_mean(run_query, repetitions)
        finally:
            engine.remove_sink(jsonl)
            jsonl.close()
        engine_cells[name] = {
            "no_sink_ms": no_sink_s * 1e3,
            "ring_sink_ms": ring_s * 1e3,
            "jsonl_sink_ms": jsonl_s * 1e3,
            "ring_overhead": ring_s / no_sink_s,
            "jsonl_overhead": jsonl_s / no_sink_s,
        }

    geomean_plan = _geomean(
        [cell["overhead"] for cell in plan_cells.values()]
    )
    geomean_ring = _geomean(
        [cell["ring_overhead"] for cell in engine_cells.values()]
    )
    geomean_jsonl = _geomean(
        [cell["jsonl_overhead"] for cell in engine_cells.values()]
    )
    report = {
        "plan_dataset": "D4",
        "engine_dataset": "D1",
        "scale": bench_scale(),
        "plan_overhead_bar": PLAN_OVERHEAD_BAR,
        "sink_overhead_bar": SINK_OVERHEAD_BAR,
        "plan_queries": plan_cells,
        "engine_queries": engine_cells,
        "geomean_plan_overhead": geomean_plan,
        "geomean_ring_sink_overhead": geomean_ring,
        "geomean_jsonl_sink_overhead": geomean_jsonl,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    assert geomean_plan <= PLAN_OVERHEAD_BAR, plan_cells
    assert geomean_ring <= SINK_OVERHEAD_BAR, engine_cells
