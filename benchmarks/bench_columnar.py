"""Columnar (set-at-a-time) execution vs the object-tree plan backend.

The workload is the descendant-heavy shape that dominates Section 6:
the naive-baseline rewrites of Adex Q1-Q3 (every child axis relaxed to
``//``, an ``[@accessibility = "1"]`` qualifier on the last step) plus
two deep structural ``//``-chains, evaluated on the largest generated
dataset (D4).  Three backends answer each query:

* ``interpreter`` — the node-at-a-time reference evaluator;
* ``plan`` — the compiled object-tree plans (the previous serving
  path: same traversal as the interpreter, compiled operators);
* ``columnar`` — the same plans executing set-at-a-time over the
  :class:`~repro.xmlmodel.store.NodeTable` (interval joins on sorted
  row frontiers).

``test_columnar_speedup`` asserts the acceptance bar — >= 3x geometric
mean over the plan backend with node-for-node identical results — and
writes ``BENCH_columnar.json`` (per-query wall times, visit counts,
geomeans) next to the repository root for machine consumption.
"""

import json
import math
import time
from pathlib import Path

import pytest

from repro.core.naive import annotate_document, naive_rewrite
from repro.workloads.adex import adex_dtd, adex_spec
from repro.workloads.documents import bench_scale, dataset
from repro.workloads.queries import ADEX_QUERIES
from repro.xmlmodel.store import build_node_table
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.parser import parse_xpath
from repro.xpath.plan import PlanRuntime, compile_path

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_columnar.json"

#: Deep structural chains without qualifiers, to isolate the interval
#: kernels from qualifier evaluation.
STRUCTURAL_QUERY_TEXTS = {
    "S1": "//body//real-estate//r-e.location",
    "S2": "//ad-instance//house//*",
}


def _workload_queries():
    queries = {
        name: naive_rewrite(ADEX_QUERIES[name]) for name in ("Q1", "Q2", "Q3")
    }
    for name, text in STRUCTURAL_QUERY_TEXTS.items():
        queries[name] = parse_xpath(text)
    return queries


@pytest.fixture(scope="module")
def workload():
    document = dataset("D4")
    annotate_document(document, adex_spec(adex_dtd()))
    store = build_node_table(document)
    queries = _workload_queries()
    plans = {name: compile_path(query) for name, query in queries.items()}
    return document, store, queries, plans


QUERY_NAMES = ["Q1", "Q2", "Q3", "S1", "S2"]


@pytest.mark.parametrize("query_name", QUERY_NAMES)
def test_interpreter_backend(benchmark, workload, query_name):
    document, _, queries, _ = workload
    query = queries[query_name]
    benchmark.group = "columnar-%s" % query_name
    benchmark(
        lambda: XPathEvaluator().evaluate(query, document, ordered=True)
    )


@pytest.mark.parametrize("query_name", QUERY_NAMES)
def test_plan_backend(benchmark, workload, query_name):
    document, _, _, plans = workload
    plan = plans[query_name]
    benchmark.group = "columnar-%s" % query_name
    benchmark(
        lambda: plan.execute(document, runtime=PlanRuntime(), ordered=True)
    )


@pytest.mark.parametrize("query_name", QUERY_NAMES)
def test_columnar_backend(benchmark, workload, query_name):
    document, store, _, plans = workload
    plan = plans[query_name]
    benchmark.group = "columnar-%s" % query_name
    benchmark(
        lambda: plan.execute(
            document, runtime=PlanRuntime(store=store), ordered=True
        )
    )


def test_node_table_build(benchmark, workload):
    document, _, _, _ = workload
    benchmark.group = "columnar-build"
    benchmark(build_node_table, document)


def test_backends_agree(workload):
    """All three backends return the same nodes in the same order."""
    document, store, queries, plans = workload
    for name, query in queries.items():
        expected = XPathEvaluator().evaluate(query, document, ordered=True)
        via_plan = plans[name].execute(
            document, runtime=PlanRuntime(), ordered=True
        )
        via_columnar = plans[name].execute(
            document, runtime=PlanRuntime(store=store), ordered=True
        )
        assert [id(n) for n in via_plan] == [id(n) for n in expected], name
        assert [id(n) for n in via_columnar] == [
            id(n) for n in expected
        ], name


def _best_mean(callable_, repetitions, trials=3):
    best = math.inf
    for _ in range(trials):
        start = time.perf_counter()
        for _ in range(repetitions):
            callable_()
        best = min(best, (time.perf_counter() - start) / repetitions)
    return best


def _geomean(ratios):
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def test_columnar_speedup(workload, request):
    """Acceptance bar: >= 3x geometric mean over the object-tree plan
    backend on the descendant-heavy workload, identical node sets.
    Also emits ``BENCH_columnar.json``."""
    if request.config.getoption("--quick", default=False):
        pytest.skip(
            "speedup bar is calibrated for full-size D4; quick-mode "
            "documents are overhead-bound"
        )
    document, store, queries, plans = workload
    repetitions = 5
    per_query = {}
    for name in QUERY_NAMES:
        query, plan = queries[name], plans[name]

        def run_interpreter():
            return XPathEvaluator().evaluate(query, document, ordered=True)

        def run_plan():
            return plan.execute(
                document, runtime=PlanRuntime(), ordered=True
            )

        def run_columnar():
            return plan.execute(
                document, runtime=PlanRuntime(store=store), ordered=True
            )

        results = run_columnar()
        assert [id(n) for n in results] == [
            id(n) for n in run_plan()
        ], name

        plan_runtime = PlanRuntime()
        plan.execute(document, runtime=plan_runtime, ordered=True)
        columnar_runtime = PlanRuntime(store=store)
        plan.execute(document, runtime=columnar_runtime, ordered=True)

        interpreter_s = _best_mean(run_interpreter, repetitions)
        plan_s = _best_mean(run_plan, repetitions)
        columnar_s = _best_mean(run_columnar, repetitions)
        per_query[name] = {
            "query": str(query),
            "result_count": len(results),
            "interpreter_ms": interpreter_s * 1e3,
            "plan_ms": plan_s * 1e3,
            "columnar_ms": columnar_s * 1e3,
            "speedup_vs_plan": plan_s / columnar_s,
            "speedup_vs_interpreter": interpreter_s / columnar_s,
            "visits": {
                "plan": plan_runtime.visits,
                "columnar": columnar_runtime.visits,
            },
        }
    geomean_vs_plan = _geomean(
        [cell["speedup_vs_plan"] for cell in per_query.values()]
    )
    geomean_vs_interpreter = _geomean(
        [cell["speedup_vs_interpreter"] for cell in per_query.values()]
    )
    report = {
        "dataset": "D4",
        "scale": bench_scale(),
        "document_nodes": document.size(),
        "node_table_rows": store.size,
        "queries": per_query,
        "geomean_speedup_vs_plan": geomean_vs_plan,
        "geomean_speedup_vs_interpreter": geomean_vs_interpreter,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    assert geomean_vs_plan >= 3.0, per_query
