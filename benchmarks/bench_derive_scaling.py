"""Scaling of Algorithm derive (Theorem 3.2: O(|D|^2)).

Runs derive over DTD families of doubling size and asserts sub-cubic
growth; the timed cells expose the raw curve for inspection in the
pytest-benchmark report.
"""

import time

import pytest

from repro.benchtools.scaling import (
    alternating_spec,
    chain_dtd,
    chain_sizes,
    diamond_dtd,
    full_access_spec,
    star_tree_dtd,
    wide_dtd,
)
from repro.core.derive import derive
from repro.core.spec import AccessSpec

SIZES = chain_sizes(points=4, start=16)


@pytest.mark.parametrize("size", SIZES)
def test_derive_chain(benchmark, size):
    spec = alternating_spec(chain_dtd(size), size)
    benchmark.group = "derive-chain"
    benchmark(derive, spec)


@pytest.mark.parametrize("size", SIZES)
def test_derive_wide(benchmark, size):
    dtd = wide_dtd(size)
    spec = AccessSpec(dtd)
    for index in range(1, size + 1, 2):
        spec.annotate("r", "b%d" % index, "N")
    benchmark.group = "derive-wide"
    benchmark(derive, spec)


@pytest.mark.parametrize("layers", [4, 8, 16, 32])
def test_derive_diamond(benchmark, layers):
    spec = full_access_spec(diamond_dtd(layers))
    benchmark.group = "derive-diamond"
    benchmark(derive, spec)


@pytest.mark.parametrize("depth", [4, 6, 8])
def test_derive_star_tree(benchmark, depth):
    dtd = star_tree_dtd(depth, fanout=2)
    spec = AccessSpec(dtd)
    benchmark.group = "derive-tree"
    benchmark(derive, spec)


def test_derive_growth_is_polynomial():
    """Doubling |D| must not grow runtime by more than ~8x (cubic
    guard with slack; the claim is quadratic)."""
    timings = []
    for size in (64, 128, 256):
        spec = alternating_spec(chain_dtd(size), size)
        started = time.perf_counter()
        for _ in range(3):
            derive(spec)
        timings.append(time.perf_counter() - started)
    for previous, current in zip(timings, timings[1:]):
        assert current < max(previous, 1e-4) * 16
