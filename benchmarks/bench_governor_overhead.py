"""Resource-governor overhead: limits must be free when disabled.

The governor threads one cooperative :class:`~repro.robustness.Budget`
check per operator batch through the plan kernels (mirroring the
``rt.profile is not None`` guard idiom), so an *ungoverned* query —
``limits=None``, the serving default — pays exactly one extra
attribute check per operator invocation.  Two configurations:

* **plan path, ungoverned** — the descendant-heavy columnar workload
  of ``bench_audit_overhead.py`` (naive Adex Q1-Q3 + two structural
  ``//``-chains on D4), compared against the pre-governor wall times
  checked into ``BENCH_audit.json`` (``events_disabled_ms``).  The
  acceptance bar is a geometric-mean ratio below 3%.
* **plan path, governed** — the same plans with a live budget carrying
  generous bounds (nothing trips), recorded for scale with a loose
  sanity bar: batch-granularity checkpoints plus the strided per-node
  tick must stay under 25% even on these pure-execution microbenches.
  End-to-end engine queries amortize this further (also recorded, no
  bar).

``test_governor_overhead`` writes ``BENCH_governor.json`` next to the
repository root for machine consumption.
"""

import json
import math
import time
from pathlib import Path

import pytest

from repro.core.engine import SecureQueryEngine
from repro.core.naive import annotate_document, naive_rewrite
from repro.core.options import ExecutionOptions
from repro.robustness import QueryLimits
from repro.workloads.adex import adex_dtd, adex_spec
from repro.workloads.documents import bench_scale, dataset
from repro.workloads.queries import ADEX_QUERIES, ADEX_QUERY_TEXTS
from repro.xmlmodel.store import build_node_table
from repro.xpath.parser import parse_xpath
from repro.xpath.plan import PlanRuntime, compile_path

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_governor.json"
BASELINE_PATH = REPO_ROOT / "BENCH_audit.json"

#: Ungoverned execution must not notice the governor at all.
UNGOVERNED_OVERHEAD_BAR = 1.03
#: A live (never-tripping) budget on the raw plan path: loose sanity
#: bar only; real deployments are engine-path (amortized further).
GOVERNED_OVERHEAD_BAR = 1.25

#: Generous enough that nothing ever trips during the benchmark.
GENEROUS = QueryLimits(
    deadline_seconds=300.0,
    max_results=10**9,
    max_visits=10**12,
    max_frontier_rows=10**9,
)

STRUCTURAL_QUERY_TEXTS = {
    "S1": "//body//real-estate//r-e.location",
    "S2": "//ad-instance//house//*",
}

PLAN_QUERY_NAMES = ["Q1", "Q2", "Q3", "S1", "S2"]
ENGINE_QUERY_NAMES = ["Q1", "Q2", "Q3", "Q4"]


def _plan_queries():
    queries = {
        name: naive_rewrite(ADEX_QUERIES[name]) for name in ("Q1", "Q2", "Q3")
    }
    for name, text in STRUCTURAL_QUERY_TEXTS.items():
        queries[name] = parse_xpath(text)
    return queries


@pytest.fixture(scope="module")
def plan_workload():
    document = dataset("D4")
    annotate_document(document, adex_spec(adex_dtd()))
    store = build_node_table(document)
    plans = {
        name: compile_path(query) for name, query in _plan_queries().items()
    }
    return document, store, plans


@pytest.fixture(scope="module")
def engine_workload():
    document = dataset("D1")
    dtd = adex_dtd()
    engine = SecureQueryEngine(dtd)
    engine.register_policy("adex", adex_spec(dtd))
    # warm: plan cache entries, projected plans, per-document caches
    for text in ADEX_QUERY_TEXTS.values():
        engine.query("adex", text, document)
    return engine, document


@pytest.mark.parametrize("query_name", PLAN_QUERY_NAMES)
def test_plan_ungoverned(benchmark, plan_workload, query_name):
    document, store, plans = plan_workload
    plan = plans[query_name]
    benchmark.group = "governor-plan-%s" % query_name
    benchmark(
        lambda: plan.execute(
            document, runtime=PlanRuntime(store=store), ordered=True
        )
    )


@pytest.mark.parametrize("query_name", PLAN_QUERY_NAMES)
def test_plan_governed(benchmark, plan_workload, query_name):
    document, store, plans = plan_workload
    plan = plans[query_name]
    benchmark.group = "governor-plan-%s" % query_name
    benchmark(
        lambda: plan.execute(
            document,
            runtime=PlanRuntime(store=store, budget=GENEROUS.budget()),
            ordered=True,
        )
    )


@pytest.mark.parametrize("query_name", ENGINE_QUERY_NAMES)
def test_engine_governed(benchmark, engine_workload, query_name):
    engine, document = engine_workload
    text = ADEX_QUERY_TEXTS[query_name]
    options = ExecutionOptions(limits=GENEROUS)
    benchmark.group = "governor-engine-%s" % query_name
    benchmark(lambda: engine.query("adex", text, document, options=options))


def test_limits_do_not_change_answers(engine_workload):
    """A generous budget must not change a single answer."""
    engine, document = engine_workload
    options = ExecutionOptions(limits=GENEROUS)
    for text in ADEX_QUERY_TEXTS.values():
        plain = list(engine.query("adex", text, document))
        governed = list(engine.query("adex", text, document, options=options))
        assert len(governed) == len(plain), text


def _best_mean(callable_, repetitions, trials=3):
    best = math.inf
    for _ in range(trials):
        start = time.perf_counter()
        for _ in range(repetitions):
            callable_()
        best = min(best, (time.perf_counter() - start) / repetitions)
    return best


def _geomean(ratios):
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def test_governor_overhead(plan_workload, engine_workload, request):
    """Acceptance bars: ungoverned plan path unchanged (< 3% geomean
    vs ``BENCH_audit.json``), governed plan path under the loose
    sanity bar.  Also emits ``BENCH_governor.json``."""
    if request.config.getoption("--quick", default=False):
        pytest.skip(
            "overhead bars are calibrated for full-size D4; quick-mode "
            "documents are overhead-bound"
        )
    if not BASELINE_PATH.exists():
        pytest.skip("no BENCH_audit.json baseline checked in")
    baseline = json.loads(BASELINE_PATH.read_text())["plan_queries"]
    document, store, plans = plan_workload
    engine, engine_document = engine_workload
    repetitions = 5

    plan_cells = {}
    for name in PLAN_QUERY_NAMES:
        plan = plans[name]

        def run_ungoverned():
            return plan.execute(
                document, runtime=PlanRuntime(store=store), ordered=True
            )

        def run_governed():
            return plan.execute(
                document,
                runtime=PlanRuntime(store=store, budget=GENEROUS.budget()),
                ordered=True,
            )

        ungoverned_s = _best_mean(run_ungoverned, repetitions)
        governed_s = _best_mean(run_governed, repetitions)
        baseline_ms = baseline[name]["events_disabled_ms"]
        plan_cells[name] = {
            "baseline_ms": baseline_ms,
            "ungoverned_ms": ungoverned_s * 1e3,
            "governed_ms": governed_s * 1e3,
            "ungoverned_overhead": ungoverned_s * 1e3 / baseline_ms,
            "governed_overhead": governed_s / ungoverned_s,
        }

    engine_cells = {}
    options = ExecutionOptions(limits=GENEROUS)
    for name in ENGINE_QUERY_NAMES:
        text = ADEX_QUERY_TEXTS[name]
        plain_s = _best_mean(
            lambda: engine.query("adex", text, engine_document), repetitions
        )
        governed_s = _best_mean(
            lambda: engine.query(
                "adex", text, engine_document, options=options
            ),
            repetitions,
        )
        engine_cells[name] = {
            "ungoverned_ms": plain_s * 1e3,
            "governed_ms": governed_s * 1e3,
            "governed_overhead": governed_s / plain_s,
        }

    geomean_ungoverned = _geomean(
        [cell["ungoverned_overhead"] for cell in plan_cells.values()]
    )
    geomean_governed = _geomean(
        [cell["governed_overhead"] for cell in plan_cells.values()]
    )
    geomean_engine = _geomean(
        [cell["governed_overhead"] for cell in engine_cells.values()]
    )
    report = {
        "plan_dataset": "D4",
        "engine_dataset": "D1",
        "scale": bench_scale(),
        "ungoverned_overhead_bar": UNGOVERNED_OVERHEAD_BAR,
        "governed_overhead_bar": GOVERNED_OVERHEAD_BAR,
        "plan_queries": plan_cells,
        "engine_queries": engine_cells,
        "geomean_ungoverned_overhead": geomean_ungoverned,
        "geomean_governed_plan_overhead": geomean_governed,
        "geomean_governed_engine_overhead": geomean_engine,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    assert geomean_ungoverned <= UNGOVERNED_OVERHEAD_BAR, plan_cells
    assert geomean_governed <= GOVERNED_OVERHEAD_BAR, plan_cells
