"""Document-index ablation: scan vs binary-search evaluation of
``//label`` patterns.

The naive baseline of Section 6 is slow because its rewrite rules turn
every child step into a descendant step; a classic XML-database label
index (preorder intervals + per-label position lists,
:mod:`repro.xmlmodel.index`) recovers much of that cost.  These cells
measure (a) index construction, (b) naive-query evaluation with and
without the index, and (c) that precise rewritten queries gain little
— the rewriting approach already avoids the scans the index
accelerates, which is the paper's very point.
"""

import pytest

from repro.core.accessibility import annotate_accessibility
from repro.core.naive import naive_rewrite
from repro.workloads.documents import dataset
from repro.workloads.queries import ADEX_QUERIES
from repro.xmlmodel.index import build_index
from repro.xpath.evaluator import XPathEvaluator


@pytest.fixture(scope="module")
def setting(adex_policy, adex_rewriter):
    document = dataset("D2")
    annotate_accessibility(document, adex_policy)
    index = build_index(document)
    return document, index


def test_index_construction(benchmark, setting):
    document, _ = setting
    benchmark.group = "index-build"
    benchmark(build_index, document)


@pytest.mark.parametrize("query_name", ["Q1", "Q2"])
def test_naive_query_scan(benchmark, setting, query_name):
    document, _ = setting
    plan = naive_rewrite(ADEX_QUERIES[query_name])
    evaluator = XPathEvaluator()
    benchmark.group = "index-naive-%s" % query_name
    benchmark(evaluator.evaluate, plan, document)


@pytest.mark.parametrize("query_name", ["Q1", "Q2"])
def test_naive_query_indexed(benchmark, setting, query_name):
    document, index = setting
    plan = naive_rewrite(ADEX_QUERIES[query_name])
    evaluator = XPathEvaluator(index=index)
    benchmark.group = "index-naive-%s" % query_name
    benchmark(evaluator.evaluate, plan, document)


def test_index_speeds_up_descendant_heavy_queries(setting):
    document, index = setting
    plan = naive_rewrite(ADEX_QUERIES["Q1"])
    scan = XPathEvaluator()
    scan.evaluate(plan, document)
    fast = XPathEvaluator(index=index)
    fast.evaluate(plan, document)
    assert fast.visits < scan.visits / 5


def test_rewritten_queries_gain_little(setting, adex_rewriter):
    """Precise paths barely touch the tree already: the index cannot
    save much — evidence that rewriting subsumes the indexing win."""
    document, index = setting
    plan = adex_rewriter.rewrite(ADEX_QUERIES["Q1"])
    scan = XPathEvaluator()
    scan.evaluate(plan, document)
    fast = XPathEvaluator(index=index)
    fast.evaluate(plan, document)
    assert fast.visits >= scan.visits / 3
