"""Ablation: virtual views (query rewriting) vs materialized views.

The paper's motivation for rewriting (Section 4): "it is expensive to
actually materialize and maintain multiple security views of a large
XML document".  This bench quantifies the trade-off on the Adex
workload:

* ``materialize`` — build ``Tv`` once, then answer queries on it;
* ``rewrite``     — answer each query on ``T`` through rewriting.

Rewriting wins whenever documents change between queries (the
materialized view must be rebuilt) or many policies exist (one view
each); materialization can amortize for a hot, read-only document and
one policy.  Both rows are reported so the crossover is visible.
"""

import pytest

from repro.core.derive import derive
from repro.core.materialize import materialize
from repro.core.rewrite import Rewriter
from repro.workloads.documents import dataset
from repro.workloads.queries import ADEX_QUERIES
from repro.xpath.evaluator import XPathEvaluator


@pytest.fixture(scope="module")
def setting(adex, adex_policy, adex_view):
    document = dataset("D2")
    rewriter = Rewriter(adex_view)
    plans = {
        name: rewriter.rewrite(query) for name, query in ADEX_QUERIES.items()
    }
    return document, adex_view, adex_policy, plans


def test_materialize_view_cost(benchmark, setting):
    document, view, spec, _ = setting
    benchmark.group = "view-strategy-setup"
    benchmark(materialize, document, view, spec)


def test_rewrite_setup_cost(benchmark, setting, adex_view):
    _, _, _, _ = setting
    from repro.workloads.queries import adex_query

    benchmark.group = "view-strategy-setup"

    def run():
        rewriter = Rewriter(adex_view)
        for name in ADEX_QUERIES:
            rewriter.rewrite(adex_query(name))

    benchmark(run)


@pytest.mark.parametrize("query_name", list(ADEX_QUERIES))
def test_query_on_materialized_view(benchmark, setting, query_name):
    document, view, spec, _ = setting
    view_tree = materialize(document, view, spec)
    evaluator = XPathEvaluator()
    query = ADEX_QUERIES[query_name]
    benchmark.group = "view-strategy-query-%s" % query_name
    benchmark(evaluator.evaluate, query, view_tree)


@pytest.mark.parametrize("query_name", list(ADEX_QUERIES))
def test_query_via_rewriting(benchmark, setting, query_name):
    document, _, _, plans = setting
    evaluator = XPathEvaluator()
    benchmark.group = "view-strategy-query-%s" % query_name
    benchmark(evaluator.evaluate, plans[query_name], document)


def test_update_scenario_favors_rewriting(setting):
    """One document update between every query: the materialized-view
    strategy pays a rebuild each time, rewriting pays nothing."""
    import time

    document, view, spec, plans = setting
    evaluator = XPathEvaluator()
    query = ADEX_QUERIES["Q1"]
    rounds = 3

    started = time.perf_counter()
    for _ in range(rounds):
        view_tree = materialize(document, view, spec)  # rebuild after update
        evaluator.evaluate(query, view_tree)
    materialized_cost = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(rounds):
        evaluator.evaluate(plans["Q1"], document)
    rewriting_cost = time.perf_counter() - started

    assert rewriting_cost < materialized_cost
