"""Observability overhead: instrumentation must be near-free when off.

Every plan operator now carries profiling hooks (``rt.profile is not
None`` checks) and the plan cache / NodeTable record into the metrics
registry (module-flag guarded).  This bench quantifies what that costs
on the serving hot path, using the same descendant-heavy columnar
workload as ``bench_columnar.py`` (naive Adex Q1-Q3 + two structural
``//``-chains on D4):

* ``disabled`` — the default serving path: no collector attached,
  metrics off.  Compared against the *pre-instrumentation* columnar
  wall times checked into ``BENCH_columnar.json``; the acceptance bar
  is a geometric-mean overhead below 3%.
* ``traced`` — ``ExecutionOptions(trace=True)`` equivalent: a
  :class:`~repro.obs.profile.ProfileCollector` attached to the
  runtime.  Reported for scale (no bar — tracing is opt-in).

``test_disabled_overhead`` writes ``BENCH_obs.json`` next to the
repository root for machine consumption.
"""

import json
import math
import time
from pathlib import Path

import pytest

from repro.core.naive import annotate_document, naive_rewrite
from repro.obs.profile import ProfileCollector
from repro.workloads.adex import adex_dtd, adex_spec
from repro.workloads.documents import bench_scale, dataset
from repro.workloads.queries import ADEX_QUERIES
from repro.xmlmodel.store import build_node_table
from repro.xpath.parser import parse_xpath
from repro.xpath.plan import PlanRuntime, compile_path

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_obs.json"
BASELINE_PATH = REPO_ROOT / "BENCH_columnar.json"

#: Acceptance bar: geometric-mean slowdown of the disabled path vs the
#: pre-instrumentation baseline.
OVERHEAD_BAR = 1.03

STRUCTURAL_QUERY_TEXTS = {
    "S1": "//body//real-estate//r-e.location",
    "S2": "//ad-instance//house//*",
}

QUERY_NAMES = ["Q1", "Q2", "Q3", "S1", "S2"]


def _workload_queries():
    queries = {
        name: naive_rewrite(ADEX_QUERIES[name]) for name in ("Q1", "Q2", "Q3")
    }
    for name, text in STRUCTURAL_QUERY_TEXTS.items():
        queries[name] = parse_xpath(text)
    return queries


@pytest.fixture(scope="module")
def workload():
    document = dataset("D4")
    annotate_document(document, adex_spec(adex_dtd()))
    store = build_node_table(document)
    queries = _workload_queries()
    plans = {name: compile_path(query) for name, query in queries.items()}
    return document, store, plans


@pytest.mark.parametrize("query_name", QUERY_NAMES)
def test_disabled_instrumentation(benchmark, workload, query_name):
    document, store, plans = workload
    plan = plans[query_name]
    benchmark.group = "obs-%s" % query_name
    benchmark(
        lambda: plan.execute(
            document, runtime=PlanRuntime(store=store), ordered=True
        )
    )


@pytest.mark.parametrize("query_name", QUERY_NAMES)
def test_traced_execution(benchmark, workload, query_name):
    document, store, plans = workload
    plan = plans[query_name]
    benchmark.group = "obs-%s" % query_name
    benchmark(
        lambda: plan.execute(
            document,
            runtime=PlanRuntime(store=store, profile=ProfileCollector()),
            ordered=True,
        )
    )


def test_traced_results_identical(workload):
    """Attaching a collector must not change a single answer."""
    document, store, plans = workload
    for name, plan in plans.items():
        plain = plan.execute(
            document, runtime=PlanRuntime(store=store), ordered=True
        )
        collector = ProfileCollector()
        traced = plan.execute(
            document,
            runtime=PlanRuntime(store=store, profile=collector),
            ordered=True,
        )
        assert [id(n) for n in traced] == [id(n) for n in plain], name
        assert len(collector) > 0, name


def _best_mean(callable_, repetitions, trials=3):
    best = math.inf
    for _ in range(trials):
        start = time.perf_counter()
        for _ in range(repetitions):
            callable_()
        best = min(best, (time.perf_counter() - start) / repetitions)
    return best


def _geomean(ratios):
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def test_disabled_overhead(workload, request):
    """Acceptance bar: disabled instrumentation costs < 3% (geomean)
    against the pre-instrumentation columnar wall times recorded in
    ``BENCH_columnar.json``.  Also emits ``BENCH_obs.json``."""
    if request.config.getoption("--quick", default=False):
        pytest.skip(
            "overhead bar is calibrated for full-size D4; quick-mode "
            "documents are overhead-bound"
        )
    if not BASELINE_PATH.exists():
        pytest.skip("no BENCH_columnar.json baseline checked in")
    baseline = json.loads(BASELINE_PATH.read_text())["queries"]
    document, store, plans = workload
    repetitions = 5
    per_query = {}
    for name in QUERY_NAMES:
        plan = plans[name]

        def run_disabled():
            return plan.execute(
                document, runtime=PlanRuntime(store=store), ordered=True
            )

        def run_traced():
            return plan.execute(
                document,
                runtime=PlanRuntime(store=store, profile=ProfileCollector()),
                ordered=True,
            )

        disabled_s = _best_mean(run_disabled, repetitions)
        traced_s = _best_mean(run_traced, repetitions)
        baseline_ms = baseline[name]["columnar_ms"]
        per_query[name] = {
            "baseline_columnar_ms": baseline_ms,
            "disabled_ms": disabled_s * 1e3,
            "traced_ms": traced_s * 1e3,
            "disabled_overhead": disabled_s * 1e3 / baseline_ms,
            "traced_overhead": traced_s / disabled_s,
        }
    geomean_disabled = _geomean(
        [cell["disabled_overhead"] for cell in per_query.values()]
    )
    geomean_traced = _geomean(
        [cell["traced_overhead"] for cell in per_query.values()]
    )
    report = {
        "dataset": "D4",
        "scale": bench_scale(),
        "overhead_bar": OVERHEAD_BAR,
        "queries": per_query,
        "geomean_disabled_overhead": geomean_disabled,
        "geomean_traced_overhead": geomean_traced,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    assert geomean_disabled <= OVERHEAD_BAR, per_query
