"""Ablation: what does the optimizer cost, and what does it buy?

For each workload query this measures (a) the one-off optimization
time and (b) the per-evaluation time with and without optimization.
The paper's Section 6 claims the optimize approach is never slower and
up to ~2x faster (Q3), with Q4 eliminated entirely; DESIGN.md calls
out the three constraint families as the design choices under test, so
the hospital queries isolate co-existence, exclusive, and
non-existence constraints individually.
"""

import pytest

from repro.core.derive import derive
from repro.core.optimize import Optimizer
from repro.core.rewrite import Rewriter
from repro.workloads.documents import dataset
from repro.workloads.hospital import hospital_document, hospital_dtd
from repro.workloads.queries import ADEX_QUERIES
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.parser import parse_xpath

#: Hospital document-level queries isolating one constraint family each.
HOSPITAL_ABLATION = {
    "coexistence": "//patient[name and wardNo]",  # both required: folds
    "exclusive": "//treatment[trial and regular]",  # disjunction: empty
    "nonexistence": "//staffInfo[medication]",  # impossible child: empty
    "wildcard-expansion": "//dept/*/patient",
    "descendant-expansion": "//medication",
}


@pytest.mark.parametrize("query_name", list(ADEX_QUERIES))
def test_optimizer_cost_adex(benchmark, adex_rewriter, adex, query_name):
    rewritten = adex_rewriter.rewrite(ADEX_QUERIES[query_name])
    benchmark.group = "optimizer-cost"

    def run():
        Optimizer(adex).optimize(rewritten)  # fresh caches: worst case

    benchmark(run)


@pytest.mark.parametrize("case", list(HOSPITAL_ABLATION))
def test_hospital_constraint_ablation(benchmark, case):
    dtd = hospital_dtd()
    query = parse_xpath(HOSPITAL_ABLATION[case])
    optimized = Optimizer(dtd).optimize(query)
    document = hospital_document(seed=5, max_branch=12)
    evaluator = XPathEvaluator()
    benchmark.group = "hospital-ablation-" + case
    benchmark(evaluator.evaluate, optimized, document)


@pytest.mark.parametrize("case", list(HOSPITAL_ABLATION))
def test_hospital_constraint_ablation_baseline(benchmark, case):
    dtd = hospital_dtd()
    query = parse_xpath(HOSPITAL_ABLATION[case])
    document = hospital_document(seed=5, max_branch=12)
    evaluator = XPathEvaluator()
    benchmark.group = "hospital-ablation-" + case
    benchmark(evaluator.evaluate, query, document)


def test_optimizer_amortizes(adex, adex_rewriter, adex_optimizer):
    """The optimizer's one-off cost is repaid within a few evaluations
    on the queries it improves (Q3/Q4 of Table 1)."""
    import time

    document = dataset("D2")
    for name in ("Q3", "Q4"):
        rewritten = adex_rewriter.rewrite(ADEX_QUERIES[name])
        started = time.perf_counter()
        optimized = Optimizer(adex).optimize(rewritten)
        optimize_cost = time.perf_counter() - started

        evaluator = XPathEvaluator()
        started = time.perf_counter()
        evaluator.evaluate(rewritten, document)
        baseline = time.perf_counter() - started

        started = time.perf_counter()
        evaluator.evaluate(optimized, document)
        improved = time.perf_counter() - started

        saving = baseline - improved
        assert saving > 0, name
        assert optimize_cost < 50 * max(saving, 1e-9), (
            name,
            optimize_cost,
            saving,
        )


def test_optimizer_never_hurts_evaluation(adex, adex_rewriter, adex_optimizer):
    document = dataset("D1")
    for name, query in ADEX_QUERIES.items():
        rewritten = adex_rewriter.rewrite(query)
        optimized = adex_optimizer.optimize(rewritten)
        before = XPathEvaluator()
        before.evaluate(rewritten, document)
        after = XPathEvaluator()
        after.evaluate(optimized, document)
        assert after.visits <= before.visits, name
