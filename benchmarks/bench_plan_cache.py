"""Plan cache: repeated-query throughput on the serving path.

The engine's plan cache amortizes parse → rewrite → optimize → compile
per ``(policy, query, optimize)`` instead of per request; with the
document index attached, residual ``//label`` steps evaluate via
binary search.  These cells measure the Adex workload (Section 6) on
D2 under three configurations:

* ``seed`` — the pre-plan-cache pipeline (``use_cache=False``,
  interpreter evaluation, no index): every request re-rewrites;
* ``cached`` — warm plan cache, interpreter-compatible compiled plans;
* ``cached+index`` — warm plan cache plus the document index.

``test_warm_cache_speedup`` asserts the acceptance bar: on repeated
identical queries the warm cache+index path answers Q1-Q3 at least 5x
faster (geometric mean) than the seed path, with node-for-node
identical results.  (Q4 is excluded from the speedup bar: the
optimizer proves it empty, so both paths are trivially fast.)
"""

import math
import time

import pytest

from repro.core.engine import SecureQueryEngine
from repro.core.options import ExecutionOptions
from repro.workloads.adex import adex_dtd, adex_spec
from repro.workloads.documents import dataset
from repro.workloads.queries import ADEX_QUERY_TEXTS

SEED = ExecutionOptions(use_cache=False, use_index=False, project=False)
CACHED = ExecutionOptions(use_cache=True, use_index=False, project=False)
CACHED_INDEXED = ExecutionOptions(use_cache=True, use_index=True, project=False)
CACHED_PROJECTED = ExecutionOptions(use_cache=True, use_index=True)


@pytest.fixture(scope="module")
def serving():
    dtd = adex_dtd()
    engine = SecureQueryEngine(dtd)
    engine.register_policy("adex", adex_spec(dtd))
    document = dataset("D2")
    # warm the plan cache and the document index once
    for text in ADEX_QUERY_TEXTS.values():
        engine.query("adex", text, document, options=CACHED_INDEXED)
        engine.query("adex", text, document, options=CACHED_PROJECTED)
    return engine, document


@pytest.mark.parametrize("query_name", list(ADEX_QUERY_TEXTS))
def test_repeated_query_seed_path(benchmark, serving, query_name):
    engine, document = serving
    text = ADEX_QUERY_TEXTS[query_name]
    benchmark.group = "plan-cache-%s" % query_name
    benchmark(engine.query, "adex", text, document, SEED)


@pytest.mark.parametrize("query_name", list(ADEX_QUERY_TEXTS))
def test_repeated_query_cached(benchmark, serving, query_name):
    engine, document = serving
    text = ADEX_QUERY_TEXTS[query_name]
    benchmark.group = "plan-cache-%s" % query_name
    benchmark(engine.query, "adex", text, document, CACHED)


@pytest.mark.parametrize("query_name", list(ADEX_QUERY_TEXTS))
def test_repeated_query_cached_indexed(benchmark, serving, query_name):
    engine, document = serving
    text = ADEX_QUERY_TEXTS[query_name]
    benchmark.group = "plan-cache-%s" % query_name
    benchmark(engine.query, "adex", text, document, CACHED_INDEXED)


@pytest.mark.parametrize("query_name", list(ADEX_QUERY_TEXTS))
def test_repeated_query_cached_projected(benchmark, serving, query_name):
    """The full serving surface: warm cache + index + view projection."""
    engine, document = serving
    text = ADEX_QUERY_TEXTS[query_name]
    benchmark.group = "plan-cache-projected-%s" % query_name
    benchmark(engine.query, "adex", text, document, CACHED_PROJECTED)


def _best_mean(callable_, repetitions, trials=3):
    best = math.inf
    for _ in range(trials):
        start = time.perf_counter()
        for _ in range(repetitions):
            callable_()
        best = min(best, (time.perf_counter() - start) / repetitions)
    return best


def test_cached_results_identical(serving):
    """Warm-cache answers are node-for-node the seed path's answers."""
    engine, document = serving
    for text in ADEX_QUERY_TEXTS.values():
        seed = engine.query("adex", text, document, options=SEED)
        warm = engine.query("adex", text, document, options=CACHED_INDEXED)
        assert [id(node) for node in seed] == [id(node) for node in warm]
        assert warm.report.cache_hit


def test_warm_cache_speedup(serving, request):
    """Acceptance bar: >= 5x (geomean, Q1-Q3) for repeated identical
    queries with warm cache + index over the seed path."""
    if request.config.getoption("--quick", default=False):
        pytest.skip(
            "speedup bar is calibrated for full-size D2; quick-mode "
            "documents are overhead-bound"
        )
    engine, document = serving
    repetitions = 10
    ratios = {}
    for query_name in ("Q1", "Q2", "Q3"):
        text = ADEX_QUERY_TEXTS[query_name]
        seed_time = _best_mean(
            lambda: engine.query("adex", text, document, options=SEED),
            repetitions,
        )
        warm_time = _best_mean(
            lambda: engine.query(
                "adex", text, document, options=CACHED_INDEXED
            ),
            repetitions,
        )
        ratios[query_name] = seed_time / warm_time
    geomean = math.exp(
        sum(math.log(ratio) for ratio in ratios.values()) / len(ratios)
    )
    assert geomean >= 5.0, ratios
