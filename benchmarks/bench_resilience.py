"""Resilience benchmark: shed-path overhead and goodput under overload.

Two measurements over the mixed-tenant hospital+Adex workload:

* **overhead** — the cost of carrying an armed
  :class:`~repro.serving.resilience.OverloadDetector` when the server
  is *not* overloaded.  The same replay runs through two otherwise
  identical servers — admission with and without the detector — with
  interleaved trials, min-of-trials elapsed.  The acceptance bar:
  the shed-path ratio stays under **1.03x** (shedding must be free
  until it fires).
* **goodput** — the point of priority shedding.  A burst of
  ``load``× the capacity that fits the queue deadline is submitted
  against a slot-constrained server whose execution is slowed by a
  deterministic latency fault (``serving.execute``), once without and
  once with shedding, under a uniform criticality mix.  The
  acceptance bar at the top load: ``critical`` goodput with shedding
  is at least the ``critical`` goodput without it, sheds actually
  happened, and no ``critical`` request was ever shed.

``test_resilience_report`` writes ``BENCH_resilience.json`` at the
repo root (overhead ratio, goodput-vs-load curve per criticality
class) for machine consumption; when ``BENCH_serving.json`` exists its
concurrent-replay QPS is included for cross-reference.
"""

import json
from pathlib import Path

import pytest

from repro.robustness.faults import FaultPlan, FaultSpec
from repro.serving.admission import AdmissionController, TenantPolicy
from repro.serving.replay import mixed_workload, replay, standard_catalog
from repro.serving.resilience import (
    CRITICAL,
    CRITICALITIES,
    OverloadDetector,
)
from repro.serving.server import QueryServer
from repro.workloads.documents import bench_scale

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_resilience.json"
SERVING_REPORT_PATH = REPO_ROOT / "BENCH_serving.json"

OVERHEAD_TRIALS = 5
OVERHEAD_CLIENTS = 8
OVERHEAD_REPETITIONS = 4
OVERHEAD_BAR = 1.03

#: Offered-load multiples measured for the goodput curve.
GOODPUT_LOADS = (1, 2, 4)
GOODPUT_BASE_REPETITIONS = 6
#: Injected execution latency: a deterministic floor under the
#: (measured) real execution cost.
GOODPUT_LATENCY_SECONDS = 0.005
#: Queue-deadline headroom over the measured 1x drain time: 1x fits,
#: 2x does not — but the critical third of the mix still does.
GOODPUT_DEADLINE_MARGIN = 1.5


@pytest.fixture(scope="module")
def catalog():
    cat = standard_catalog(seed=0)
    # warm every cache once so neither arm of a comparison pays the
    # cold-start cost
    for request in mixed_workload(repetitions=1, seed=0):
        engine, document = cat.resolve(request.document)
        response = engine.execute_request(request, document)
        assert response.ok, response.error_message
    return cat


def criticality_mix(requests):
    """A deterministic uniform assignment of criticality classes."""
    return [
        request.with_(criticality=CRITICALITIES[index % len(CRITICALITIES)])
        for index, request in enumerate(requests)
    ]


# -- shed-path overhead ----------------------------------------------------


def _overhead_trial(catalog, requests, with_detector):
    """One replay through a fresh server; both arms are identical but
    for the armed detector (generous bounds, so it never fires)."""
    admission = AdmissionController(
        TenantPolicy(max_concurrent=8, max_queue_depth=64),
        overload=OverloadDetector() if with_detector else None,
    )
    with QueryServer(
        catalog, admission=admission, workers=4, max_batch=8
    ) as server:
        stats = replay(server, requests, clients=OVERHEAD_CLIENTS)
    assert not stats["errors"], stats["errors"]
    if with_detector:
        # never overloaded -> the detector must not have shed anything
        assert all(
            count == 0 for count in admission.shed_counts().values()
        ), admission.shed_counts()
    return stats


def test_shed_path_overhead(catalog, request):
    """An armed-but-idle detector must cost (nearly) nothing."""
    quick = request.config.getoption("--quick", default=False)
    trials = 1 if quick else OVERHEAD_TRIALS
    requests = mixed_workload(repetitions=OVERHEAD_REPETITIONS, seed=0)
    baseline = []
    shedding = []
    for _ in range(trials):  # interleaved to share ambient noise
        baseline.append(_overhead_trial(catalog, requests, False))
        shedding.append(_overhead_trial(catalog, requests, True))
    base = min(stats["elapsed_seconds"] for stats in baseline)
    shed = min(stats["elapsed_seconds"] for stats in shedding)
    ratio = shed / base
    test_shed_path_overhead.result = {
        "trials": trials,
        "clients": OVERHEAD_CLIENTS,
        "repetitions": OVERHEAD_REPETITIONS,
        "requests": len(requests),
        "baseline_seconds": base,
        "shedding_seconds": shed,
        "baseline_qps": len(requests) / base,
        "shedding_qps": len(requests) / shed,
        "ratio": ratio,
        "bar": OVERHEAD_BAR,
    }
    if quick:
        return  # smoke: tiny documents are noise-bound
    assert ratio < OVERHEAD_BAR, (
        "armed detector cost %.3fx the detector-free path (bar %.2fx)"
        % (ratio, OVERHEAD_BAR)
    )


# -- goodput under overload ------------------------------------------------


def _by_class(pairs):
    """Per-criticality ``{requests, ok, goodput}`` plus the overall."""
    classes = {
        cls: {"requests": 0, "ok": 0} for cls in CRITICALITIES
    }
    for criticality, response in pairs:
        bucket = classes[criticality]
        bucket["requests"] += 1
        if response.ok:
            bucket["ok"] += 1
    for bucket in classes.values():
        bucket["goodput"] = (
            bucket["ok"] / bucket["requests"] if bucket["requests"] else 0.0
        )
    total = sum(bucket["requests"] for bucket in classes.values())
    ok = sum(bucket["ok"] for bucket in classes.values())
    return {
        "requests": total,
        "ok": ok,
        "goodput": ok / total if total else 0.0,
        "by_class": classes,
    }


def _service_seconds(catalog):
    """Measured warm per-request service time (sequential, plus the
    injected latency the goodput runs add at ``serving.execute``) —
    execution is CPU-bound Python, so the sequential rate is the
    honest capacity estimate."""
    from time import perf_counter

    requests = mixed_workload(repetitions=1, seed=0)
    started = perf_counter()
    for request in requests:
        engine, document = catalog.resolve(request.document)
        response = engine.execute_request(request, document)
        assert response.ok, response.error_message
    sequential = (perf_counter() - started) / len(requests)
    return sequential + GOODPUT_LATENCY_SECONDS


def _goodput_run(catalog, load, shed, base_repetitions, service_seconds):
    """Submit a ``load``x burst against a slot-constrained server with
    latency-inflated execution; return per-class goodput."""
    base = len(mixed_workload(repetitions=base_repetitions, seed=0))
    deadline = base * service_seconds * GOODPUT_DEADLINE_MARGIN
    detector = OverloadDetector() if shed else None
    admission = AdmissionController(
        TenantPolicy(
            max_concurrent=1,
            max_queue_depth=64,
            queue_deadline_seconds=deadline,
        ),
        overload=detector,
    )
    requests = criticality_mix(
        mixed_workload(repetitions=base_repetitions * load, seed=0)
    )
    server = QueryServer(
        catalog,
        admission=admission,
        workers=4,
        max_batch=4,
        tracing=False,
        profiling=False,
    ).start()
    errors = {}
    try:
        with FaultPlan(
            FaultSpec(
                "serving.execute",
                kind="latency",
                latency_seconds=GOODPUT_LATENCY_SECONDS,
                every=1,
            )
        ):
            futures = [
                (request, server.submit(request)) for request in requests
            ]
            pairs = [
                (request.criticality_class, future.result(timeout=120))
                for request, future in futures
            ]
    finally:
        report = server.drain(deadline_seconds=30.0)
    assert report["unresolved"] == 0
    for _, response in pairs:
        if not response.ok:
            code = response.error_code or "E_UNKNOWN"
            errors[code] = errors.get(code, 0) + 1
    result = _by_class(pairs)
    result["errors"] = errors
    result["shed"] = admission.shed_counts()
    result["queue_deadline_seconds"] = deadline
    return result


def test_goodput_under_overload(catalog, request):
    """The goodput-vs-load curve with and without priority shedding."""
    quick = request.config.getoption("--quick", default=False)
    base_repetitions = 1 if quick else GOODPUT_BASE_REPETITIONS
    loads = (1, 2) if quick else GOODPUT_LOADS
    service = _service_seconds(catalog)
    curve = []
    for load in loads:
        without = _goodput_run(
            catalog, load, False, base_repetitions, service
        )
        with_shed = _goodput_run(
            catalog, load, True, base_repetitions, service
        )
        curve.append(
            {
                "load": load,
                "requests": with_shed["requests"],
                "without_shedding": without,
                "with_shedding": with_shed,
            }
        )
    test_goodput_under_overload.result = {
        "latency_fault_seconds": GOODPUT_LATENCY_SECONDS,
        "service_seconds": service,
        "base_repetitions": base_repetitions,
        "curve": curve,
    }
    # critical is never shed, whatever the load
    for point in curve:
        assert point["with_shedding"]["shed"][CRITICAL] == 0
    if quick:
        return  # smoke: tiny documents make capacity timing noise-bound
    top = curve[-1]
    shed_total = sum(top["with_shedding"]["shed"].values())
    assert shed_total > 0, "no request was shed at %dx load" % top["load"]
    critical_with = top["with_shedding"]["by_class"][CRITICAL]["goodput"]
    critical_without = top["without_shedding"]["by_class"][CRITICAL][
        "goodput"
    ]
    assert critical_with >= critical_without, (
        "shedding made critical goodput worse at %dx load "
        "(%.3f with vs %.3f without)"
        % (top["load"], critical_with, critical_without)
    )


# -- report ----------------------------------------------------------------


def test_resilience_report(catalog, request):
    """Aggregate the measurements into ``BENCH_resilience.json``."""
    if request.config.getoption("--quick", default=False):
        pytest.skip("report reflects full-size runs; quick mode is a smoke")
    overhead = getattr(test_shed_path_overhead, "result", None)
    goodput = getattr(test_goodput_under_overload, "result", None)
    if not (overhead and goodput):
        pytest.skip("run the full module to produce the report")
    serving_qps = None
    if SERVING_REPORT_PATH.exists():
        try:
            serving = json.loads(SERVING_REPORT_PATH.read_text())
            serving_qps = serving["replay"]["concurrent"]["qps"]
        except (ValueError, KeyError):
            serving_qps = None
    report = {
        "scale": bench_scale(),
        "overhead": dict(overhead, serving_baseline_qps=serving_qps),
        "goodput": goodput,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    assert report["overhead"]["ratio"] < OVERHEAD_BAR
    top = report["goodput"]["curve"][-1]
    assert (
        top["with_shedding"]["by_class"][CRITICAL]["goodput"]
        >= top["without_shedding"]["by_class"][CRITICAL]["goodput"]
    )
