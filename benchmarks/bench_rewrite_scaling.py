"""Scaling of Algorithm rewrite (Theorem 4.1: O(|p| * |Dv|^2)).

Varies the query size over a fixed view and the view size under a
fixed query, including the diamond family whose root-to-leaf path
*count* is exponential — the recProc sharing must keep rewriting
polynomial regardless.
"""

import time

import pytest

from repro.benchtools.scaling import (
    chain_dtd,
    deep_query,
    descendant_query,
    diamond_dtd,
    full_access_spec,
    qualifier_query,
    union_query,
    wide_dtd,
)
from repro.core.derive import derive
from repro.core.rewrite import Rewriter

QUERY_SIZES = [4, 8, 16, 32]
VIEW_SIZES = [8, 16, 32, 64]


@pytest.fixture(scope="module")
def chain_rewriter():
    dtd = chain_dtd(64)
    return Rewriter(derive(full_access_spec(dtd)))


@pytest.mark.parametrize("depth", QUERY_SIZES)
def test_rewrite_query_depth(benchmark, chain_rewriter, depth):
    query = deep_query(depth)
    benchmark.group = "rewrite-query-depth"
    benchmark(chain_rewriter.rewrite, query)


@pytest.mark.parametrize("depth", [2, 4, 8])
def test_rewrite_descendant_query(benchmark, chain_rewriter, depth):
    query = descendant_query(depth)
    benchmark.group = "rewrite-descendants"
    benchmark(chain_rewriter.rewrite, query)


@pytest.mark.parametrize("width", QUERY_SIZES)
def test_rewrite_union_width(benchmark, width):
    rewriter = Rewriter(derive(full_access_spec(wide_dtd(64))))
    query = union_query(width)
    benchmark.group = "rewrite-union-width"
    benchmark(rewriter.rewrite, query)


@pytest.mark.parametrize("width", [2, 4, 8, 16])
def test_rewrite_qualifier_width(benchmark, width):
    rewriter = Rewriter(derive(full_access_spec(wide_dtd(32))))
    query = qualifier_query(width)
    benchmark.group = "rewrite-qualifiers"
    benchmark(rewriter.rewrite, query)


@pytest.mark.parametrize("size", VIEW_SIZES)
def test_rewrite_view_size(benchmark, size):
    rewriter = Rewriter(derive(full_access_spec(chain_dtd(size))))
    query = descendant_query(3)
    benchmark.group = "rewrite-view-size"
    benchmark(rewriter.rewrite, query)


@pytest.mark.parametrize("layers", [4, 8, 12])
def test_rewrite_diamond_paths(benchmark, layers):
    """2^layers root-to-leaf paths; recProc's shared sub-expressions
    must keep this polynomial."""
    rewriter = Rewriter(derive(full_access_spec(diamond_dtd(layers))))
    from repro.xpath.ast import Descendant, Label

    query = Descendant(Label("d%d" % layers))
    benchmark.group = "rewrite-diamond"
    benchmark(rewriter.rewrite, query)


def test_rewrite_growth_linear_in_query():
    """Doubling |p| on a fixed view grows time roughly linearly
    (guarded at 4x with slack)."""
    rewriter = Rewriter(derive(full_access_spec(chain_dtd(64))))
    timings = []
    for depth in (8, 16, 32):
        query = deep_query(depth)
        rewriter.rewrite(query)  # warm caches
        started = time.perf_counter()
        for _ in range(20):
            # fresh rewriter state is unnecessary: the DP memo is keyed
            # by sub-query, so repeated calls measure lookup+assembly
            rewriter.rewrite(query)
        timings.append(time.perf_counter() - started)
    for previous, current in zip(timings, timings[1:]):
        assert current < max(previous, 1e-4) * 8
