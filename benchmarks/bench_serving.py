"""Serving-layer benchmark: concurrent replay throughput and batched
execution.

Three measurements over the mixed-tenant hospital+Adex workload
(:func:`repro.serving.replay.mixed_workload` — every hospital query as
nurse and as doctor plus the paper's Adex Q1-Q4 as the buyer):

* **replay** — the 16-client closed-loop replay through a
  :class:`~repro.serving.server.QueryServer` against a single-client
  sequential run of the same request list.  The acceptance bar:
  concurrent QPS must beat sequential QPS (the engine's shared caches
  must scale across threads rather than serialize them).
* **batch** — ``engine.query_batch`` (one pass, shared scan cache)
  against the per-query loop on repeated columnar query sets; the bar
  is a geometric-mean speedup above 1 (batching must pay for itself).
* **soak** — the full replay with the security canary sampling at
  100%: the acceptance bar is **zero canary violations**, i.e. the
  concurrent serving path answers exactly like the materialized-view
  oracle while under multi-threaded load.

``test_serving_report`` writes ``BENCH_serving.json`` at the repo root
(p50/p95/p99 latency, QPS, speedups) for machine consumption.
"""

import json
import math
import time
from pathlib import Path

import pytest

from repro.core.options import ExecutionOptions
from repro.serving.replay import (
    mixed_workload,
    replay,
    standard_catalog,
    summarize,
)
from repro.serving.server import QueryServer
from repro.workloads.documents import bench_scale
from repro.workloads.queries import HOSPITAL_QUERY_TEXTS
from repro.xmlmodel.serialize import serialize

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_serving.json"

REPLAY_CLIENTS = 16
REPLAY_WORKERS = 8
REPLAY_REPETITIONS = 6
BATCH_ROUNDS = 3


@pytest.fixture(scope="module")
def catalog():
    return standard_catalog(seed=0)


@pytest.fixture(scope="module")
def requests():
    return mixed_workload(repetitions=REPLAY_REPETITIONS, seed=0)


def _sequential(catalog, requests):
    """Single-client baseline: same requests, no server, no threads."""
    latencies = []
    started = time.perf_counter()
    for request in requests:
        engine, document = catalog.resolve(request.document)
        began = time.perf_counter()
        response = engine.execute_request(request, document)
        latencies.append(time.perf_counter() - began)
        assert response.ok, response.error_message
    return summarize(latencies, time.perf_counter() - started)


def test_replay_concurrent_beats_sequential(catalog, requests, request):
    sequential = _sequential(catalog, requests)
    with QueryServer(
        catalog, workers=REPLAY_WORKERS, max_batch=8
    ) as server:
        concurrent = replay(server, requests, clients=REPLAY_CLIENTS)
    assert not concurrent["errors"], concurrent["errors"]
    test_replay_concurrent_beats_sequential.result = {
        "sequential": sequential,
        "concurrent": concurrent,
        "qps_speedup": concurrent["qps"] / sequential["qps"],
    }
    if request.config.getoption("--quick", default=False):
        return  # smoke: correctness only, tiny documents are noise-bound
    assert concurrent["qps"] > sequential["qps"], (
        "16-client replay (%.1f qps) did not beat sequential (%.1f qps)"
        % (concurrent["qps"], sequential["qps"])
    )


def _geomean(ratios):
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def _canonical(values):
    return [
        value if isinstance(value, str) else serialize(value)
        for value in values
    ]


def test_batch_beats_loop(catalog, request):
    """query_batch on repeated columnar query sets vs the per-query
    loop, per-set speedups aggregated by geometric mean."""
    engine, document = catalog.resolve("hospital")
    columnar = ExecutionOptions(strategy="columnar")
    # repeated queries make the shared scan cache representative of
    # the server coalescing same-document tenant traffic
    batch = (list(HOSPITAL_QUERY_TEXTS.values()) * BATCH_ROUNDS)
    # warm all caches so the measurement isolates execution
    for text in set(batch):
        engine.query("nurse", text, document, options=columnar)

    def run_loop():
        return [
            engine.query("nurse", text, document, options=columnar)
            for text in batch
        ]

    def run_batch():
        return engine.query_batch("nurse", batch, document, options=columnar)

    # answers agree exactly
    assert [_canonical(r) for r in run_batch()] == [
        _canonical(r) for r in run_loop()
    ]
    quick = request.config.getoption("--quick", default=False)
    trials = 1 if quick else 5
    loop_s = min(_time_once(run_loop) for _ in range(trials))
    batch_s = min(_time_once(run_batch) for _ in range(trials))
    speedup = loop_s / batch_s
    test_batch_beats_loop.result = {
        "loop_ms": loop_s * 1e3,
        "batch_ms": batch_s * 1e3,
        "speedup": speedup,
    }
    if quick:
        return
    assert speedup > 1.0, (
        "query_batch (%.2f ms) did not beat the loop (%.2f ms)"
        % (batch_s * 1e3, loop_s * 1e3)
    )


def _time_once(callable_):
    start = time.perf_counter()
    callable_()
    return time.perf_counter() - start


def test_soak_zero_canary_violations(catalog, requests):
    """The whole mixed-tenant replay with the canary sampling 100%:
    every served answer must match the materialized-view oracle."""
    from repro.obs.events import RingBufferSink

    sinks = []
    engines = [catalog.resolve(ref)[0] for ref in catalog.refs()]
    for engine in engines:
        sink = engine.add_sink(RingBufferSink(capacity=4096))
        engine.enable_canary(1.0, seed=0)
        sinks.append((engine, sink))
    try:
        with QueryServer(catalog, workers=4, max_batch=4) as server:
            stats = replay(server, requests, clients=8)
        assert not stats["errors"], stats["errors"]
        checks = violations = 0
        for _, sink in sinks:
            for event in sink.events(kind="canary"):
                checks += 1
                violations += event.violations
        assert checks > 0, "canary never sampled during the soak"
        assert violations == 0, "%d canary violations during soak" % violations
        test_soak_zero_canary_violations.result = {
            "canary_checks": checks,
            "canary_violations": violations,
        }
    finally:
        for engine, sink in sinks:
            engine.remove_sink(sink)
            engine.disable_canary()


def test_serving_report(catalog, requests, request):
    """Aggregate the measurements into ``BENCH_serving.json``."""
    if request.config.getoption("--quick", default=False):
        pytest.skip("report reflects full-size runs; quick mode is a smoke")
    replay_result = getattr(
        test_replay_concurrent_beats_sequential, "result", None
    )
    batch_result = getattr(test_batch_beats_loop, "result", None)
    soak_result = getattr(test_soak_zero_canary_violations, "result", None)
    if not (replay_result and batch_result and soak_result):
        pytest.skip("run the full module to produce the report")
    report = {
        "scale": bench_scale(),
        "workload": {
            "clients": REPLAY_CLIENTS,
            "workers": REPLAY_WORKERS,
            "repetitions": REPLAY_REPETITIONS,
            "requests": replay_result["concurrent"]["requests"],
            "tenants": sorted(replay_result["concurrent"]["tenants"]),
        },
        "replay": replay_result,
        "batch": batch_result,
        "soak": soak_result,
    }
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    assert report["replay"]["qps_speedup"] > 1.0
    assert report["batch"]["speedup"] > 1.0
    assert report["soak"]["canary_violations"] == 0
