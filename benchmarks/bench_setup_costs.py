"""Setup-cost comparison the paper's Table 1 leaves implicit.

The naive baseline needs every element of every document annotated
with its accessibility (and re-annotated after each policy change or
document update); the security-view approach needs one schema-level
derivation per policy, independent of any document.  These cells make
the asymmetry visible: derivation is microseconds and O(|D|^2), while
annotation is linear in the document and must be repeated per
(policy, document) pair.
"""

import pytest

from repro.core.accessibility import annotate_accessibility, strip_accessibility
from repro.core.derive import derive
from repro.workloads.documents import dataset
from repro.workloads.hospital import hospital_dtd, nurse_spec


def test_setup_derive_view(benchmark, adex_policy):
    benchmark.group = "setup-cost"
    benchmark(derive, adex_policy)


@pytest.mark.parametrize("dataset_name", ["D1", "D2"])
def test_setup_naive_annotation(benchmark, adex_policy, dataset_name):
    document = dataset(dataset_name)
    benchmark.group = "setup-cost"

    def run():
        annotate_accessibility(document, adex_policy)

    benchmark(run)
    strip_accessibility(document)


def test_derive_is_document_independent(adex_policy):
    """Deriving twice yields identical definitions — there is nothing
    per-document to redo (unlike naive annotation)."""
    from repro.core.persistence import view_to_dict

    first = view_to_dict(derive(adex_policy))
    second = view_to_dict(derive(adex_policy))
    assert first == second


def test_multi_policy_setup_scales_with_policies_not_documents():
    """Ten wards = ten derivations; zero document passes."""
    import time

    dtd = hospital_dtd()
    spec = nurse_spec(dtd)
    started = time.perf_counter()
    views = [derive(spec.bind(wardNo=str(ward))) for ward in range(10)]
    elapsed = time.perf_counter() - started
    assert len(views) == 10
    assert elapsed < 2.0
