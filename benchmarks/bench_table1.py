"""Table 1 (the paper's only experimental exhibit): query evaluation
time of the naive / rewrite / optimize approaches for Q1-Q4 over the
four generated Adex documents D1-D4.

Run only the benchmarks with::

    pytest benchmarks/ --benchmark-only

Regenerate the paper-formatted table with::

    python -m repro.benchtools.table1

Expected shape (the paper's findings): naive is one to two orders of
magnitude slower than rewrite (the paper reports up to 40x); optimize
matches rewrite on Q1/Q2, improves Q3 (up to ~2x at scale), and makes
Q4 free.  ``test_table1_shape`` asserts the orderings after the timed
runs.
"""

import pytest

from repro.core.accessibility import annotate_accessibility
from repro.core.naive import naive_rewrite
from repro.workloads.documents import DATASET_SCALES, dataset
from repro.workloads.queries import ADEX_QUERIES
from repro.xpath.evaluator import XPathEvaluator

APPROACHES = ("naive", "rewrite", "optimize")
QUERIES = tuple(ADEX_QUERIES)
#: Benchmark the smallest and largest datasets by default (all four
#: run in the printed-table tool; two keep the pytest suite quick).
BENCH_DATASETS = ("D1", "D4")


def _plans(adex_rewriter, adex_optimizer):
    plans = {}
    for name, query in ADEX_QUERIES.items():
        rewritten = adex_rewriter.rewrite(query)
        plans[name] = {
            "naive": naive_rewrite(query),
            "rewrite": rewritten,
            "optimize": adex_optimizer.optimize(rewritten),
        }
    return plans


@pytest.fixture(scope="module")
def prepared(adex_policy, adex_rewriter, adex_optimizer):
    documents = {}
    for dataset_name in BENCH_DATASETS:
        document = dataset(dataset_name)
        annotate_accessibility(document, adex_policy)
        documents[dataset_name] = document
    return _plans(adex_rewriter, adex_optimizer), documents


@pytest.mark.parametrize("dataset_name", BENCH_DATASETS)
@pytest.mark.parametrize("approach", APPROACHES)
@pytest.mark.parametrize("query_name", QUERIES)
def test_table1_cell(benchmark, prepared, query_name, approach, dataset_name):
    plans, documents = prepared
    plan = plans[query_name][approach]
    document = documents[dataset_name]
    evaluator = XPathEvaluator()
    benchmark.group = "table1-%s-%s" % (query_name, dataset_name)
    benchmark(evaluator.evaluate, plan, document)


def test_table1_shape(prepared):
    """The orderings Table 1 demonstrates, asserted on wall-clock-free
    node-visit counts."""
    import math

    plans, documents = prepared
    for dataset_name, document in documents.items():
        for query_name, row in plans.items():
            visits = {}
            for approach in APPROACHES:
                evaluator = XPathEvaluator()
                evaluator.evaluate(row[approach], document)
                visits[approach] = evaluator.visits
            assert visits["naive"] > 5 * max(visits["rewrite"], 1), (
                query_name,
                dataset_name,
                visits,
            )
            assert visits["optimize"] <= visits["rewrite"]
            if query_name == "Q4":
                assert visits["optimize"] == 0
    assert math.isfinite(1.0)  # keep pytest happy about assertions above
