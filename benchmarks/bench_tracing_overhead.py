"""Tracing overhead: the flight recorder and SLO tracker must be
near-free when serving runs with ``tracing=False``.

PR 8 threads a per-request span tree (queue wait, batch, engine
stages) through :class:`~repro.serving.server.QueryServer` and feeds a
:class:`~repro.obs.flight.FlightRecorder` plus
:class:`~repro.obs.slo.SLOTracker`.  All of it is gated on the
server's ``tracing`` flag; when off, requests must run the exact
pre-tracing hot path (``tracer=None`` reaches the engine, which builds
its own private tracer exactly as before this PR).

Two measurements over the same mixed-tenant replay workload as
``bench_serving.py`` (16 clients, 8 workers):

* ``disabled`` — ``QueryServer(tracing=False)``.
* ``enabled`` — the default tracing path: span tree per request,
  tail-sampled retention, SLO burn windows.  The same replay must
  leave every request findable in the flight recorder's accounting.

**The acceptance bar is same-process**: the geometric-mean
(sequential + concurrent qps ratio) slowdown of ``enabled`` over
``disabled``, both arms measured in this run, must stay below 3%.
Earlier revisions asserted ``disabled`` against the replay throughput
checked into ``BENCH_serving.json``; that cross-run ratio mixes in
machine/load drift between the run that wrote the baseline file and
the run reading it (it has measured *faster* than 1.0x), so it is now
recorded as informational only.

``test_tracing_overhead_report`` writes ``BENCH_tracing.json`` at the
repository root for machine consumption.
"""

import json
import math
import time
from pathlib import Path

import pytest

from repro.serving.replay import mixed_workload, replay, standard_catalog
from repro.serving.server import QueryServer
from repro.workloads.documents import bench_scale

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_tracing.json"
BASELINE_PATH = REPO_ROOT / "BENCH_serving.json"

#: Acceptance bar: geometric-mean qps slowdown of tracing-enabled over
#: tracing-disabled, both arms measured in the same process.
OVERHEAD_BAR = 1.03

REPLAY_CLIENTS = 16
REPLAY_WORKERS = 8
REPLAY_REPETITIONS = 6


@pytest.fixture(scope="module")
def requests():
    return mixed_workload(repetitions=REPLAY_REPETITIONS, seed=0)


def _replay_pass(requests, clients, tracing, trials):
    """Best-of-N replay against a fresh catalog per trial (cold caches
    would favour later trials on a shared one)."""
    best = None
    flight_stats = {}
    for _ in range(trials):
        catalog = standard_catalog(seed=0)
        with QueryServer(
            catalog,
            workers=REPLAY_WORKERS,
            max_batch=8,
            tracing=tracing,
        ) as server:
            # warm the engines so the measurement isolates serving
            warm = replay(server, requests, clients=clients)
            assert not warm["errors"], warm["errors"]
            stats = replay(server, requests, clients=clients)
            if tracing:
                flight_stats = server.flight.stats()
        assert not stats["errors"], stats["errors"]
        if best is None or stats["qps"] > best["qps"]:
            best = stats
    return best, flight_stats


def _sequential_qps(requests, tracing, trials):
    best = math.inf
    for _ in range(trials):
        catalog = standard_catalog(seed=0)
        with QueryServer(catalog, workers=1, tracing=tracing) as server:
            for request_obj in requests:  # warm
                server.query(request_obj)
            started = time.perf_counter()
            for request_obj in requests:
                response = server.query(request_obj)
                assert response.ok, response.error_message
            best = min(best, time.perf_counter() - started)
    return len(requests) / best


def _geomean(ratios):
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def test_tracing_overhead_report(requests, request):
    """Measure disabled vs enabled tracing same-process, write
    ``BENCH_tracing.json``, and enforce the <1.03x enabled bar."""
    quick = request.config.getoption("--quick", default=False)
    trials = 1 if quick else 3

    sequential_off = _sequential_qps(requests, tracing=False, trials=trials)
    sequential_on = _sequential_qps(requests, tracing=True, trials=trials)
    concurrent_off, _ = _replay_pass(
        requests, REPLAY_CLIENTS, tracing=False, trials=trials
    )
    concurrent_on, flight_stats = _replay_pass(
        requests, REPLAY_CLIENTS, tracing=True, trials=trials
    )

    # the enabled path must account for every request it served
    # (warm pass + measured pass through the same server)
    assert flight_stats["recorded"] == 2 * len(requests)

    enabled_overhead = _geomean(
        [
            sequential_off / sequential_on,
            concurrent_off["qps"] / concurrent_on["qps"],
        ]
    )
    report = {
        "scale": bench_scale(),
        "overhead_bar": OVERHEAD_BAR,
        "workload": {
            "clients": REPLAY_CLIENTS,
            "workers": REPLAY_WORKERS,
            "repetitions": REPLAY_REPETITIONS,
            "requests": len(requests),
        },
        "disabled": {
            "sequential_qps": sequential_off,
            "concurrent_qps": concurrent_off["qps"],
            "concurrent_p95_ms": concurrent_off["p95_ms"],
        },
        "enabled": {
            "sequential_qps": sequential_on,
            "concurrent_qps": concurrent_on["qps"],
            "concurrent_p95_ms": concurrent_on["p95_ms"],
            "enabled_overhead": enabled_overhead,
            "flight": flight_stats,
        },
    }

    if quick:
        # smoke: correctness only, tiny documents are noise-bound
        return
    # informational only: the cross-run ratio against the checked-in
    # serving baseline drifts with machine load between runs, so it
    # carries no assertion (it once measured 0.89x — "faster than the
    # baseline" — purely from that drift)
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())["replay"]
        report["disabled"]["baseline_sequential_qps"] = baseline[
            "sequential"
        ]["qps"]
        report["disabled"]["baseline_concurrent_qps"] = baseline[
            "concurrent"
        ]["qps"]
        report["disabled"]["cross_run_disabled_ratio"] = _geomean(
            [
                baseline["sequential"]["qps"] / sequential_off,
                baseline["concurrent"]["qps"] / concurrent_off["qps"],
            ]
        )
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    assert enabled_overhead <= OVERHEAD_BAR, report["enabled"]
