"""Workload-profiler overhead: fingerprinting plus heavy-hitter
accounting must be near-free on the serving hot path.

PR 9 computes a canonical query fingerprint at plan-compile time (so
cached plans carry it for free) and records one
:class:`~repro.obs.workload.WorkloadProfiler` sample per served
request — a dict update plus a histogram observation under a lock.
Both arms here run with tracing **enabled** (the serving default), so
the measured delta isolates the profiler itself:

* ``off`` — ``QueryServer(profiling=False)``: no profiler installed,
  the engine hot path pays one ``is not None`` check per query.
* ``on`` — ``QueryServer(profiling=True)`` (the default): shared
  profiler across the catalog's engines, per-tenant space-saving
  sketches.

The acceptance bar is same-process: the geometric-mean (sequential +
concurrent qps ratio) slowdown of ``on`` over ``off`` must stay below
3%.  The run also checks the boundedness contract — no tenant's
sketch may exceed the profiler capacity, however many distinct query
shapes the replay produced.

``test_workload_overhead_report`` writes ``BENCH_workload.json`` at
the repository root for machine consumption.
"""

import json
import math
import time
from pathlib import Path

import pytest

from repro.serving.replay import mixed_workload, replay, standard_catalog
from repro.serving.server import QueryServer
from repro.workloads.documents import bench_scale

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_workload.json"

#: Acceptance bar: geometric-mean qps slowdown of profiling-on over
#: profiling-off, both arms measured in the same process.
OVERHEAD_BAR = 1.03

REPLAY_CLIENTS = 16
REPLAY_WORKERS = 8
REPLAY_REPETITIONS = 6


@pytest.fixture(scope="module")
def requests():
    return mixed_workload(repetitions=REPLAY_REPETITIONS, seed=0)


def _replay_pass(requests, clients, profiling, trials):
    """Best-of-N replay against a fresh catalog per trial (cold caches
    would favour later trials on a shared one)."""
    best = None
    workload_report = {}
    for _ in range(trials):
        catalog = standard_catalog(seed=0)
        with QueryServer(
            catalog,
            workers=REPLAY_WORKERS,
            max_batch=8,
            profiling=profiling,
        ) as server:
            # warm the engines so the measurement isolates serving
            warm = replay(server, requests, clients=clients)
            assert not warm["errors"], warm["errors"]
            stats = replay(server, requests, clients=clients)
            if profiling:
                workload_report = server.workload.report()
        assert not stats["errors"], stats["errors"]
        if best is None or stats["qps"] > best["qps"]:
            best = stats
    return best, workload_report


def _sequential_qps(requests, profiling, trials):
    best = math.inf
    for _ in range(trials):
        catalog = standard_catalog(seed=0)
        with QueryServer(
            catalog, workers=1, profiling=profiling
        ) as server:
            for request_obj in requests:  # warm
                server.query(request_obj)
            started = time.perf_counter()
            for request_obj in requests:
                response = server.query(request_obj)
                assert response.ok, response.error_message
            best = min(best, time.perf_counter() - started)
    return len(requests) / best


def _geomean(ratios):
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def test_workload_overhead_report(requests, request):
    """Measure profiling off vs on same-process, check sketch
    boundedness, write ``BENCH_workload.json``, and enforce the
    <1.03x bar."""
    quick = request.config.getoption("--quick", default=False)
    trials = 1 if quick else 3

    sequential_off = _sequential_qps(requests, profiling=False, trials=trials)
    sequential_on = _sequential_qps(requests, profiling=True, trials=trials)
    concurrent_off, _ = _replay_pass(
        requests, REPLAY_CLIENTS, profiling=False, trials=trials
    )
    concurrent_on, workload_report = _replay_pass(
        requests, REPLAY_CLIENTS, profiling=True, trials=trials
    )

    # boundedness: however many shapes the replay produced, no tenant
    # sketch may exceed the profiler capacity
    capacity = workload_report["capacity"]
    tenants = workload_report["tenants"]
    assert tenants, "profiling on but no tenants recorded"
    total_queries = 0
    for tenant, bucket in tenants.items():
        assert bucket["fingerprints"] <= capacity, (tenant, bucket)
        total_queries += bucket["queries"]
    # warm pass + measured pass through the same server
    assert total_queries == 2 * len(requests)

    overhead = _geomean(
        [
            sequential_off / sequential_on,
            concurrent_off["qps"] / concurrent_on["qps"],
        ]
    )
    # a small top-K sample per tenant keeps the report inspectable
    # without embedding every shape
    top_sample = {
        tenant: [
            {
                "fingerprint": entry["fingerprint"],
                "shape": entry["shape"],
                "count": entry["count"],
                "p95_ms": entry["p95_ms"],
                "cache_hit_ratio": entry["cache_hit_ratio"],
            }
            for entry in bucket["top"][:3]
        ]
        for tenant, bucket in sorted(tenants.items())
    }
    report = {
        "scale": bench_scale(),
        "overhead_bar": OVERHEAD_BAR,
        "workload": {
            "clients": REPLAY_CLIENTS,
            "workers": REPLAY_WORKERS,
            "repetitions": REPLAY_REPETITIONS,
            "requests": len(requests),
        },
        "off": {
            "sequential_qps": sequential_off,
            "concurrent_qps": concurrent_off["qps"],
            "concurrent_p95_ms": concurrent_off["p95_ms"],
        },
        "on": {
            "sequential_qps": sequential_on,
            "concurrent_qps": concurrent_on["qps"],
            "concurrent_p95_ms": concurrent_on["p95_ms"],
            "profiler_overhead": overhead,
            "capacity": capacity,
            "tenants": {
                tenant: {
                    "queries": bucket["queries"],
                    "fingerprints": bucket["fingerprints"],
                    "evictions": bucket["evictions"],
                }
                for tenant, bucket in sorted(tenants.items())
            },
            "top": top_sample,
        },
    }

    if quick:
        # smoke: correctness only, tiny documents are noise-bound
        return
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    assert overhead <= OVERHEAD_BAR, report["on"]
