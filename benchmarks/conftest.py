"""Benchmark fixtures.

Dataset sizes honor ``REPRO_BENCH_SCALE`` (default 1.0; see
``repro.workloads.documents``).  Set e.g. ``REPRO_BENCH_SCALE=3`` for
larger, paper-ratio documents.

``--quick`` turns the suite into a smoke run: tiny documents (scale
0.02), timing collection disabled, every benchmarked callable executed
exactly once.  The tier-1 test ``tests/integration/test_bench_smoke.py``
runs ``pytest benchmarks --quick`` so bench scripts cannot rot
silently.
"""

import os

import pytest

from repro.core.derive import derive
from repro.core.optimize import Optimizer
from repro.core.rewrite import Rewriter
from repro.workloads.adex import adex_dtd, adex_spec

#: Dataset scale used by ``--quick`` smoke runs.
QUICK_SCALE = "0.02"


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="smoke mode: tiny documents, one repetition, no timing",
    )


def pytest_configure(config):
    if config.getoption("--quick", default=False):
        os.environ["REPRO_BENCH_SCALE"] = QUICK_SCALE
        # pytest-benchmark: run each benchmarked callable once instead
        # of calibrating rounds
        config.option.benchmark_disable = True


@pytest.fixture(scope="session")
def adex():
    return adex_dtd()


@pytest.fixture(scope="session")
def adex_policy(adex):
    return adex_spec(adex)


@pytest.fixture(scope="session")
def adex_view(adex_policy):
    return derive(adex_policy)


@pytest.fixture(scope="session")
def adex_rewriter(adex_view):
    return Rewriter(adex_view)


@pytest.fixture(scope="session")
def adex_optimizer(adex):
    return Optimizer(adex)
