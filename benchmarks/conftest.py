"""Benchmark fixtures.

Dataset sizes honor ``REPRO_BENCH_SCALE`` (default 1.0; see
``repro.workloads.documents``).  Set e.g. ``REPRO_BENCH_SCALE=3`` for
larger, paper-ratio documents.
"""

import pytest

from repro.core.derive import derive
from repro.core.optimize import Optimizer
from repro.core.rewrite import Rewriter
from repro.workloads.adex import adex_dtd, adex_spec


@pytest.fixture(scope="session")
def adex():
    return adex_dtd()


@pytest.fixture(scope="session")
def adex_policy(adex):
    return adex_spec(adex)


@pytest.fixture(scope="session")
def adex_view(adex_policy):
    return derive(adex_policy)


@pytest.fixture(scope="session")
def adex_rewriter(adex_view):
    return Rewriter(adex_view)


@pytest.fixture(scope="session")
def adex_optimizer(adex):
    return Optimizer(adex)
