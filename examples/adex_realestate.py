"""The Section 6 experimental workload, interactively.

Creates the reconstructed Adex classified-advertising document, applies
the paper's security policy ("children of the root annotated N;
real-estate and buyer-info annotated Y"), and walks queries Q1-Q4
through the three compared approaches — naive, rewrite, optimize —
showing the rewritten forms the paper quotes and timing a single
evaluation of each.

Run:  python examples/adex_realestate.py
"""

import time

from repro import Optimizer, Rewriter, derive, naive_rewrite
from repro.core.accessibility import annotate_accessibility
from repro.workloads.adex import adex_document, adex_dtd, adex_spec
from repro.workloads.queries import ADEX_QUERIES
from repro.xpath.evaluator import XPathEvaluator


def timed(evaluator, query, document):
    started = time.perf_counter()
    results = evaluator.evaluate(query, document)
    return len(results), time.perf_counter() - started


def main() -> None:
    dtd = adex_dtd()
    spec = adex_spec(dtd)
    view = derive(spec)

    print("== The exposed real-estate/buyer view DTD ==")
    print(view.exposed_dtd().to_dtd_text())
    print()

    document = adex_document(seed=42, buyers=150, ads=600)
    print("document: %d nodes" % document.size())
    annotate_accessibility(document, spec)  # needed by the naive baseline
    print()

    rewriter = Rewriter(view)
    optimizer = Optimizer(dtd)
    evaluator = XPathEvaluator()

    for name, query in ADEX_QUERIES.items():
        print("%s: %s" % (name, query))
        naive = naive_rewrite(query)
        rewritten = rewriter.rewrite(query)
        optimized = optimizer.optimize(rewritten)
        print("   naive    :", naive)
        print("   rewrite  :", rewritten)
        print("   optimize :", optimized if optimized != rewritten else "-")
        naive_count, naive_seconds = timed(evaluator, naive, document)
        rewrite_count, rewrite_seconds = timed(evaluator, rewritten, document)
        optimize_count, optimize_seconds = timed(
            evaluator, optimized, document
        )
        print(
            "   evaluation: naive %.4fs (%d), rewrite %.4fs (%d), "
            "optimize %.4fs (%d)"
            % (
                naive_seconds,
                naive_count,
                rewrite_seconds,
                rewrite_count,
                optimize_seconds,
                optimize_count,
            )
        )
        print()

    print(
        "Reproduce the full Table 1 with:  python -m repro.benchtools.table1"
    )


if __name__ == "__main__":
    main()
