"""Attribute-level access control and policy verification.

The paper notes attributes "can be easily incorporated" — this example
shows the incorporation end to end:

* ATTLIST declarations parsed, validated, and generated;
* an attribute hidden by policy (`insurer`) disappears from the view
  DTD, from query results, and from qualifier satisfiability;
* `#REQUIRED` attributes power new optimizer folds;
* `verify_policy` fuzz-checks a policy before deployment and flags an
  unsound one.

Run:  python examples/attribute_policies.py
"""

from repro import (
    AccessSpec,
    Optimizer,
    SecureQueryEngine,
    parse_document,
    parse_dtd,
    parse_xpath,
    serialize,
)
from repro.core.verify import verify_policy

DTD_TEXT = """
<!ELEMENT clinic (record*)>
<!ELEMENT record (note)>
<!ATTLIST record mrn CDATA #REQUIRED
                 insurer CDATA #IMPLIED
                 ward (1 | 2 | 3) #REQUIRED>
<!ELEMENT note (#PCDATA)>
"""

DOC_TEXT = """
<clinic>
  <record mrn="111" insurer="acme" ward="2"><note>flu shot</note></record>
  <record mrn="222" insurer="blue" ward="1"><note>cast removed</note></record>
  <record mrn="333" ward="2"><note>check-up</note></record>
</clinic>
"""


def main() -> None:
    dtd = parse_dtd(DTD_TEXT)
    document = parse_document(DOC_TEXT)

    # Researchers may read records but never insurance billing data.
    spec = AccessSpec(dtd, name="researcher")
    spec.annotate_attribute("record", "insurer", "N")

    report = verify_policy(spec, trials=15)
    print("policy verification:", report.summary())
    assert report.ok

    engine = SecureQueryEngine(dtd)
    engine.register_policy("researcher", spec)

    print()
    print("== Exposed view DTD (no insurer attribute) ==")
    print(engine.view_dtd_text("researcher"))
    print()

    print("== Query results carry no hidden attribute ==")
    for record in engine.query("researcher", "//record", document):
        print("  ", serialize(record))
        assert "insurer" not in record.attributes
    print()

    print("== Qualifiers on the hidden attribute select nothing ==")
    leaky = engine.query(
        "researcher", '//record[@insurer = "acme"]/note', document
    )
    print("   //record[@insurer = ...] ->", len(leaky), "results")
    assert leaky == []
    print()

    print("== ATTLIST constraints feed the optimizer ==")
    optimizer = Optimizer(dtd)
    for text in ("//record[@mrn]", "//record[@bogus]", '//record[@ward = "9"]'):
        optimized = optimizer.optimize(parse_xpath(text))
        print("   %-24s -> %s" % (text, optimized))
    print()

    print("== verify_policy flags abort-prone specifications ==")
    risky = AccessSpec(dtd, name="risky")
    risky.annotate("record", "note", '[text() = "flu shot"]')
    risky_report = verify_policy(risky, trials=15)
    print("  ", risky_report.summary().splitlines()[0])
    assert not risky_report.ok


if __name__ == "__main__":
    main()
