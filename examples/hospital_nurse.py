"""The paper's running example, end to end (Examples 1.1 and 3.1-4.1).

Reconstructs every step the paper walks through for the hospital
document of Fig. 1 and the nurse policy of Fig. 4:

* the access specification with the ``$wardNo`` parameter;
* the derived security view of Fig. 2 / Example 3.2 (``dummy1`` and
  ``dummy2`` hiding ``trial``/``regular``; ``clinicalTrial``
  short-cut into ``dept -> patientInfo*``);
* the materialization semantics of Example 3.3;
* the rewriting of ``//patient//bill`` of Example 4.1.

Run:  python examples/hospital_nurse.py
"""

from repro import Rewriter, derive, materialize, parse_xpath, pretty_print
from repro.workloads.hospital import (
    hospital_document,
    hospital_dtd,
    nurse_spec,
)
from repro.xpath.evaluator import XPathEvaluator


def main() -> None:
    dtd = hospital_dtd()
    print("== Document DTD (Fig. 1) ==")
    print(dtd.to_dtd_text())
    print()

    spec = nurse_spec(dtd)
    print("== Nurse specification (Example 3.1 / Fig. 4) ==")
    for (parent, child), annotation in sorted(
        spec.annotations().items(), key=lambda item: item[0]
    ):
        print("  ann(%s, %s) = %r" % (parent, child, annotation))
    print()

    # Bind the $wardNo parameter: this nurse works ward 2.
    concrete = spec.bind(wardNo="2")
    view = derive(concrete)
    print("== Derived security view (Example 3.2 / Fig. 2) ==")
    print(view.describe())
    print()
    print("The nurse is shown ONLY this view DTD:")
    print(view.exposed_dtd().to_dtd_text())
    print()

    document = hospital_document(seed=7, max_branch=3)
    print(
        "== Materialization semantics (Example 3.3; views stay virtual "
        "in production) =="
    )
    view_tree = materialize(document, view, concrete)
    print(pretty_print(view_tree))
    print()

    print("== Query rewriting (Example 4.1) ==")
    rewriter = Rewriter(view)
    query = parse_xpath("//patient//bill")
    rewritten = rewriter.rewrite(query)
    print("view query :", query)
    print("document q :", rewritten)
    evaluator = XPathEvaluator()
    on_view = sorted(
        node.string_value() for node in evaluator.evaluate(query, view_tree)
    )
    on_document = sorted(
        node.string_value() for node in evaluator.evaluate(rewritten, document)
    )
    assert on_view == on_document, "rewriting must be equivalent to the view"
    print("bills visible to the nurse:", on_view)
    print()
    print("rewritten query over the view == query over materialized view  [OK]")


if __name__ == "__main__":
    main()
