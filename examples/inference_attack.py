"""The inference attack of Example 1.1 — and how security views stop it.

The paper motivates security views with an attack: if nurses are
denied ``clinicalTrial`` but still see the *full document DTD*, the
two permissible queries

    p1: //dept//patientInfo/patient/name
    p2: //dept/patientInfo/patient/name

differ exactly on patients in clinical trials — p1 follows
``hospital/dept/(clinicalTrial | .)/patientInfo`` while p2 follows
only the direct path, so ``p1 - p2`` *is* the confidential list.

This script runs the attack twice:

1. against a strawman enforcement that merely filters inaccessible
   elements (the per-element model the paper criticizes) while
   exposing the document DTD — the attack succeeds;
2. against the security view — both queries rewrite to the *same*
   document query, the difference is empty, and the view DTD gives the
   attacker no path structure to exploit.

Run:  python examples/inference_attack.py
"""

from repro import Rewriter, accessible_nodes, derive, parse_xpath
from repro.workloads.hospital import hospital_document, hospital_dtd, nurse_spec
from repro.xpath.evaluator import XPathEvaluator

P1 = parse_xpath("//dept//patientInfo/patient/name")
P2 = parse_xpath("//dept/patientInfo/patient/name")


def main() -> None:
    dtd = hospital_dtd()
    document = hospital_document(seed=3, max_branch=4)

    # The nurse policy without the ward restriction, to keep the attack
    # about clinicalTrial only.
    concrete = nurse_spec(dtd).remove("hospital", "dept")

    evaluator = XPathEvaluator()

    print("== 1. Element-filtering enforcement (document DTD exposed) ==")
    accessible = {id(node) for node in accessible_nodes(document, concrete)}

    def filtered(query):
        return {
            node.string_value()
            for node in evaluator.evaluate(query, document)
            if id(node) in accessible
        }

    names_p1 = filtered(P1)
    names_p2 = filtered(P2)
    leaked = sorted(names_p1 - names_p2)
    print("p1 returned %d names, p2 returned %d" % (len(names_p1), len(names_p2)))
    print("p1 - p2  =>  patients inferred to be in clinical trials:")
    for name in leaked:
        print("   *", name)
    assert leaked, "the strawman leaks (that is the point of Example 1.1)"
    print()

    print("== 2. Security-view enforcement ==")
    view = derive(concrete)
    rewriter = Rewriter(view)
    rewritten_p1 = rewriter.rewrite(P1)
    rewritten_p2 = rewriter.rewrite(P2)
    print("p1 rewrites to:", rewritten_p1)
    print("p2 rewrites to:", rewritten_p2)
    results_p1 = {
        node.string_value()
        for node in evaluator.evaluate(rewritten_p1, document)
    }
    results_p2 = {
        node.string_value()
        for node in evaluator.evaluate(rewritten_p2, document)
    }
    print("p1 - p2  =>  %d names" % len(results_p1 - results_p2))
    assert results_p1 == results_p2, "the view makes p1 and p2 coincide"
    print()
    print(
        "Under the view, dept has a single patientInfo* edge covering\n"
        "both document paths, so the attack queries are one and the\n"
        "same; the clinicalTrial label never appears in the view DTD:"
    )
    print()
    print(view.exposed_dtd().to_dtd_text())
    assert "clinicalTrial" not in view.exposed_dtd().to_dtd_text()


if __name__ == "__main__":
    main()
