"""Multiple concurrent access policies over one document (Fig. 3).

The engine of Fig. 3 serves several user classes against one document
without materializing any view: each class gets its own derived view
DTD, and the same query string means different things — and returns
different data — depending on who asks.

Run:  python examples/multi_policy.py
"""

from repro import SecureQueryEngine
from repro.workloads.hospital import (
    doctor_spec,
    hospital_document,
    hospital_dtd,
    nurse_spec,
)


def main() -> None:
    dtd = hospital_dtd()
    engine = SecureQueryEngine(dtd)
    engine.register_policy("nurse-ward2", nurse_spec(dtd), wardNo="2")
    engine.register_policy("nurse-ward4", nurse_spec(dtd), wardNo="4")
    engine.register_policy("doctor", doctor_spec(dtd))

    document = hospital_document(seed=13, max_branch=5)
    print("document: %d nodes" % document.size())
    print("policies:", ", ".join(engine.policies()))
    print()

    query = "//patient/name"
    for policy in engine.policies():
        names = [
            element.string_value()
            for element in engine.query(policy, query, document)
        ]
        print("%-12s %s -> %d patients" % (policy, query, len(names)))
        for name in names[:4]:
            print("              *", name)
        if len(names) > 4:
            print("              ... and %d more" % (len(names) - 4))
    print()

    # What each class may know structurally:
    print("the doctor's view DTD still names clinicalTrial:")
    doctor_dtd = engine.view_dtd_text("doctor")
    print("   clinicalTrial visible:", "clinicalTrial" in doctor_dtd)
    nurse_dtd = engine.view_dtd_text("nurse-ward2")
    print("the nurses' view DTD does not:")
    print("   clinicalTrial visible:", "clinicalTrial" in nurse_dtd)
    print("   staff info visible   :", "staffInfo" in nurse_dtd)
    print("the doctor sees no staff records:")
    print("   staffInfo visible    :", "staffInfo" in doctor_dtd)

    # Same query, disjoint answers — without any view ever materialized.
    ward2 = {
        element.string_value()
        for element in engine.query("nurse-ward2", query, document)
    }
    ward4 = {
        element.string_value()
        for element in engine.query("nurse-ward4", query, document)
    }
    doctor = {
        element.string_value()
        for element in engine.query("doctor", query, document)
    }
    assert ward2 <= doctor and ward4 <= doctor
    print()
    print("every nurse-visible patient is doctor-visible  [OK]")

    # Each (policy, query) pair was compiled once and served from the
    # engine's plan cache on every repetition:
    stats = engine.plan_cache_stats()
    print()
    print(
        "plan cache: %d entries, %d hits, %d misses (hit rate %.0f%%)"
        % (stats.size, stats.hits, stats.misses, stats.hit_rate * 100)
    )


if __name__ == "__main__":
    main()
