"""Quickstart: define a DTD, annotate a policy, query through a view.

Walks the complete secure-querying pipeline of the paper on a tiny
project-tracker document:

1. parse a document DTD;
2. write an access specification (Y / N / conditional annotations);
3. register the policy with the engine (derives the security view);
4. inspect the exposed view DTD — all the user ever learns;
5. pose XPath queries over the view and get back view-projected
   results, with the rewriting pipeline shown by ``explain``.

Run:  python examples/quickstart.py
"""

from repro import (
    AccessSpec,
    SecureQueryEngine,
    parse_document,
    parse_dtd,
    pretty_print,
)

DTD_TEXT = """
<!ELEMENT tracker (project*)>
<!ELEMENT project (title, budget, tasks)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT budget (#PCDATA)>
<!ELEMENT tasks (task*)>
<!ELEMENT task (summary, assignee, estimate)>
<!ELEMENT summary (#PCDATA)>
<!ELEMENT assignee (#PCDATA)>
<!ELEMENT estimate (#PCDATA)>
"""

DOCUMENT_TEXT = """
<tracker>
  <project>
    <title>Mars lander</title>
    <budget>90000</budget>
    <tasks>
      <task><summary>heat shield</summary><assignee>ada</assignee><estimate>13</estimate></task>
      <task><summary>parachute</summary><assignee>grace</assignee><estimate>8</estimate></task>
    </tasks>
  </project>
  <project>
    <title>Lunar rover</title>
    <budget>40000</budget>
    <tasks>
      <task><summary>wheels</summary><assignee>ada</assignee><estimate>5</estimate></task>
    </tasks>
  </project>
</tracker>
"""


def main() -> None:
    dtd = parse_dtd(DTD_TEXT)
    document = parse_document(DOCUMENT_TEXT)

    # Contractors may see projects, but never budgets, and only the
    # tasks assigned to them.  Note the annotation qualifier is
    # evaluated *at the annotated child* (Section 3.2): the condition
    # on a task's assignee therefore sits on the (tasks, task) edge.
    spec = AccessSpec(dtd, name="contractor")
    spec.annotate("project", "budget", "N")
    spec.annotate("tasks", "task", "[assignee = $me]")

    engine = SecureQueryEngine(dtd)
    engine.register_policy("contractor", spec, me="ada")

    print("== What the contractor sees (the exposed view DTD) ==")
    print(engine.view_dtd_text("contractor"))
    print()

    for query in ("//task/summary", "//project[tasks/task]/title", "//estimate"):
        # one call answers the query AND reports the rewriting
        # pipeline (stages, plan-cache status, per-stage timings)
        results = engine.query("contractor", query, document)
        report = results.report
        print("query      :", report.original)
        print("rewritten  :", report.rewritten)
        print("optimized  :", report.optimized)
        print("plan cache :", "hit" if report.cache_hit else "miss")
        for result in results:
            rendered = (
                pretty_print(result) if not isinstance(result, str) else result
            )
            print("  ->", rendered.replace("\n", " "))
        print()

    # The budget never leaks, not even through wildcards or //:
    assert engine.query("contractor", "//budget", document) == []
    assert all(
        element.label != "budget"
        for element in engine.query("contractor", "project/*", document)
    )
    print("budget is invisible to every contractor query  [OK]")


if __name__ == "__main__":
    main()
