"""Recursive security views and height-bounded unfolding (Section 4.2).

A parts catalog where assemblies nest arbitrarily deep — the DTD graph
has a cycle.  When intermediate ``subassembly`` wrappers are hidden,
the derived view DTD stays recursive, and ``//part`` over the view
corresponds to the *regular* path ``(assembly/subassembly)* / part``
over the document, which plain XPath cannot express.  The paper's way
out: the concrete document's height is known, so the view is unfolded
that many levels into a DAG and rewriting proceeds as usual.

Run:  python examples/recursive_views.py
"""

from repro import (
    Rewriter,
    derive,
    materialize,
    parse_dtd,
    parse_xpath,
    pretty_print,
    unfold_view,
)
from repro.core.spec import AccessSpec
from repro.dtd.generator import DocumentGenerator
from repro.xpath.evaluator import XPathEvaluator

CATALOG_DTD = """
<!ELEMENT catalog (assembly*)>
<!ELEMENT assembly (part, children)>
<!ELEMENT children (assembly*)>
<!ELEMENT part (#PCDATA)>
"""


def main() -> None:
    dtd = parse_dtd(CATALOG_DTD)
    print("document DTD (recursive):")
    print(dtd.to_dtd_text())
    print("recursive types:", sorted(dtd.recursive_types()))
    print()

    # Hide the `children` wrapper elements; parts and assemblies stay
    # visible.  The view DTD remains recursive.
    spec = AccessSpec(dtd, name="flat")
    spec.annotate("assembly", "children", "N")
    spec.annotate("children", "assembly", "Y")
    view = derive(spec)
    print("derived view (still recursive: %s):" % view.is_recursive())
    print(view.exposed_dtd().to_dtd_text())
    print()

    generator = DocumentGenerator(dtd, seed=5, max_branch=2, max_depth=9)
    document = generator.generate()
    print("document: %d nodes, height %d" % (document.size(), document.height()))

    # Rewriting needs a DAG: unfold to the document height.
    unfolded = unfold_view(view, document.height())
    print(
        "unfolded view: %d nodes (from %d)"
        % (len(unfolded.reachable()), len(view.reachable()))
    )
    rewriter = Rewriter(unfolded)
    print()

    evaluator = XPathEvaluator()
    view_tree = materialize(document, view, spec)
    for text in ("//part", "assembly/assembly/part", "//assembly[part]/part"):
        query = parse_xpath(text)
        rewritten = rewriter.rewrite(query)
        on_view = sorted(
            node.string_value() for node in evaluator.evaluate(query, view_tree)
        )
        on_document = sorted(
            node.string_value()
            for node in evaluator.evaluate(rewritten, document)
        )
        assert on_view == on_document
        print("view query:", text)
        print("  document:", rewritten)
        print("  results :", len(on_view), "(equivalent to the view)  [OK]")
        print()

    print("materialized view (what the user conceptually queries):")
    print(pretty_print(view_tree)[:600])


if __name__ == "__main__":
    main()
