"""Shim so `pip install -e .` works on environments without the
`wheel` package (offline build): falls back to setup.py develop."""

from setuptools import setup

setup()
