"""repro — Secure XML Querying with Security Views.

A from-scratch reproduction of Fan, Chan & Garofalakis, *Secure XML
Querying with Security Views* (SIGMOD 2004): a DTD-based XML
access-control model in which each user class receives a *security
view* — a view DTD exposing exactly the structure it may see — and
queries over that view are rewritten (never materialized) into
equivalent, optimized queries over the original document.

Quickstart::

    from repro import (
        parse_dtd, AccessSpec, SecureQueryEngine, DocumentGenerator,
        ExecutionOptions,
    )

    dtd = parse_dtd(open("hospital.dtd").read())
    spec = (
        AccessSpec(dtd, name="nurse")
        .annotate("dept", "clinicalTrial", "N")
    )
    engine = SecureQueryEngine(dtd)
    engine.register_policy("nurse", spec)
    print(engine.view_dtd_text("nurse"))        # what the nurse sees
    document = DocumentGenerator(dtd, seed=1).generate()
    result = engine.query("nurse", "//patient/name", document)
    print(result.report.summary())              # stages, cache, timings
    fast = ExecutionOptions(use_index=True)     # plan cache is on by default
    result = engine.query("nurse", "//patient/name", document, options=fast)

The subpackages are usable on their own:

* :mod:`repro.xmlmodel` — XML tree model, parser, serializer;
* :mod:`repro.dtd` — DTD model, parser, validator, normalizer, and a
  random document generator;
* :mod:`repro.xpath` — the paper's XPath fragment ``C``: AST, parser,
  set-semantics evaluator;
* :mod:`repro.core` — the paper's algorithms (``derive``, ``rewrite``,
  ``optimize``, materialization, the naive baseline, the engine);
* :mod:`repro.workloads` — the hospital running example, the
  reconstructed Adex workload of Section 6, and dataset generation;
* :mod:`repro.obs` — zero-dependency observability: span tracing,
  process-wide metrics, per-operator EXPLAIN ANALYZE profiles, audit
  events with bounded sinks, the :class:`AuditLog` query API,
  Prometheus export, and the sampled :class:`SecurityCanary` (see
  ``docs/observability.md`` and ``docs/audit.md``);
* :mod:`repro.robustness` — the resource governor
  (:class:`QueryLimits` deadlines/budgets with cooperative
  cancellation), graceful degradation (:class:`DegradationPolicy`),
  and the deterministic fault-injection harness (:class:`FaultPlan`)
  — see ``docs/robustness.md``.
"""

from repro.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    DTDError,
    DTDLimitError,
    DTDParseError,
    DTDValidationError,
    FaultInjected,
    MaterializationAborted,
    QueryRejectedError,
    ReproError,
    ResourceError,
    RewriteError,
    SecurityError,
    SpecificationError,
    ViewDerivationError,
    XMLLimitError,
    XMLParseError,
    XPathEvaluationError,
    XPathSyntaxError,
)
from repro.xmlmodel import (
    XMLElement,
    XMLText,
    new_document,
    parse_document,
    pretty_print,
    serialize,
)
from repro.dtd import (
    DTD,
    DocumentGenerator,
    conforms,
    normalize_dtd,
    parse_dtd,
    validate,
)
from repro.xmlmodel import DocumentIndex, NodeTable, build_index, build_node_table
from repro.xpath import (
    CompiledPlan,
    PlanRuntime,
    XPathEvaluator,
    compile_path,
    evaluate,
    parse_qualifier,
    parse_xpath,
)
from repro.obs import (
    AuditLog,
    CallbackSink,
    CanaryEvent,
    DegradationEvent,
    DenialEvent,
    ErrorEvent,
    Event,
    EventPipeline,
    EventSink,
    ExplainProfile,
    JsonlFileSink,
    MetricsRegistry,
    PolicyEvent,
    ProfileCollector,
    QueryEvent,
    RingBufferSink,
    SecurityCanary,
    Span,
    Tracer,
    disable_metrics,
    enable_metrics,
    event_from_dict,
    metrics_enabled,
    metrics_registry,
    prometheus_text,
    read_jsonl,
)
from repro.core import (
    ANN_N,
    ANN_Y,
    AccessSpec,
    ExecutionOptions,
    load_view,
    save_view,
    verify_policy,
    Optimizer,
    PlanCache,
    PlanCacheStats,
    QueryReport,
    QueryResult,
    Rewriter,
    SecureQueryEngine,
    SecurityView,
    accessible_nodes,
    annotate_document,
    derive,
    derive_view,
    materialize,
    naive_rewrite,
    optimize,
    rewrite,
    unfold_view,
)
from repro.robustness import (
    NO_LIMITS,
    Budget,
    DegradationPolicy,
    FaultPlan,
    FaultSpec,
    FaultySink,
    QueryLimits,
)

__version__ = "1.4.0"

__all__ = [
    # errors
    "ReproError",
    "XMLParseError",
    "DTDError",
    "DTDParseError",
    "DTDValidationError",
    "XPathSyntaxError",
    "XPathEvaluationError",
    "SecurityError",
    "SpecificationError",
    "ViewDerivationError",
    "MaterializationAborted",
    "RewriteError",
    "QueryRejectedError",
    "XMLLimitError",
    "DTDLimitError",
    "ResourceError",
    "DeadlineExceeded",
    "BudgetExceeded",
    "FaultInjected",
    # xml
    "XMLElement",
    "XMLText",
    "new_document",
    "parse_document",
    "serialize",
    "pretty_print",
    # dtd
    "DTD",
    "parse_dtd",
    "normalize_dtd",
    "validate",
    "conforms",
    "DocumentGenerator",
    # xml
    "DocumentIndex",
    "build_index",
    "NodeTable",
    "build_node_table",
    # xpath
    "parse_xpath",
    "parse_qualifier",
    "evaluate",
    "XPathEvaluator",
    "CompiledPlan",
    "PlanRuntime",
    "compile_path",
    # core
    "AccessSpec",
    "ANN_Y",
    "ANN_N",
    "SecurityView",
    "derive",
    "derive_view",
    "materialize",
    "Rewriter",
    "rewrite",
    "unfold_view",
    "Optimizer",
    "optimize",
    "naive_rewrite",
    "annotate_document",
    "accessible_nodes",
    "SecureQueryEngine",
    "ExecutionOptions",
    "QueryReport",
    "QueryResult",
    "PlanCache",
    "PlanCacheStats",
    "verify_policy",
    "save_view",
    "load_view",
    # observability
    "Tracer",
    "Span",
    "MetricsRegistry",
    "metrics_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "ProfileCollector",
    "ExplainProfile",
    # audit events / canary (see docs/audit.md)
    "Event",
    "QueryEvent",
    "DenialEvent",
    "PolicyEvent",
    "ErrorEvent",
    "CanaryEvent",
    "event_from_dict",
    "read_jsonl",
    "EventSink",
    "EventPipeline",
    "RingBufferSink",
    "JsonlFileSink",
    "CallbackSink",
    "DegradationEvent",
    "AuditLog",
    "SecurityCanary",
    "prometheus_text",
    # robustness (see docs/robustness.md)
    "QueryLimits",
    "Budget",
    "NO_LIMITS",
    "DegradationPolicy",
    "FaultPlan",
    "FaultSpec",
    "FaultySink",
]
