"""repro — Secure XML Querying with Security Views.

A from-scratch reproduction of Fan, Chan & Garofalakis, *Secure XML
Querying with Security Views* (SIGMOD 2004): a DTD-based XML
access-control model in which each user class receives a *security
view* — a view DTD exposing exactly the structure it may see — and
queries over that view are rewritten (never materialized) into
equivalent, optimized queries over the original document.

Quickstart::

    from repro import (
        parse_dtd, AccessSpec, SecureQueryEngine, DocumentGenerator,
        ExecutionOptions,
    )

    dtd = parse_dtd(open("hospital.dtd").read())
    spec = (
        AccessSpec(dtd, name="nurse")
        .annotate("dept", "clinicalTrial", "N")
    )
    engine = SecureQueryEngine(dtd)
    engine.register_policy("nurse", spec)
    print(engine.view_dtd_text("nurse"))        # what the nurse sees
    document = DocumentGenerator(dtd, seed=1).generate()
    result = engine.query("nurse", "//patient/name", document)
    print(result.report.summary())              # stages, cache, timings
    fast = ExecutionOptions(use_index=True)     # plan cache is on by default
    result = engine.query("nurse", "//patient/name", document, options=fast)

The subpackages are usable on their own:

* :mod:`repro.xmlmodel` — XML tree model, parser, serializer;
* :mod:`repro.dtd` — DTD model, parser, validator, normalizer, and a
  random document generator;
* :mod:`repro.xpath` — the paper's XPath fragment ``C``: AST, parser,
  set-semantics evaluator;
* :mod:`repro.core` — the paper's algorithms (``derive``, ``rewrite``,
  ``optimize``, materialization, the naive baseline, the engine);
* :mod:`repro.workloads` — the hospital running example, the
  reconstructed Adex workload of Section 6, and dataset generation;
* :mod:`repro.obs` — zero-dependency observability: span tracing,
  process-wide metrics, per-operator EXPLAIN ANALYZE profiles, audit
  events with bounded sinks, the :class:`AuditLog` query API,
  Prometheus export, and the sampled :class:`SecurityCanary` (see
  ``docs/observability.md`` and ``docs/audit.md``);
* :mod:`repro.robustness` — the resource governor
  (:class:`QueryLimits` deadlines/budgets with cooperative
  cancellation), graceful degradation (:class:`DegradationPolicy`),
  and the deterministic fault-injection harness (:class:`FaultPlan`)
  — see ``docs/robustness.md``;
* :mod:`repro.serving` — the concurrent multi-tenant serving layer:
  the frozen :class:`QueryRequest` / :class:`QueryResponse` protocol,
  per-tenant admission control, and the batch-coalescing
  :class:`QueryServer` — see ``docs/serving.md``.

Facade imports are **lazy** (PEP 562): ``import repro`` loads only
this module; each exported name pulls in its subpackage on first
attribute access, so programs that touch only the parsing layer never
pay for observability, robustness, or serving imports.
"""

from typing import TYPE_CHECKING

__version__ = "2.3.0"

#: Exported name → defining submodule.  The single source of truth for
#: both ``__getattr__`` and ``__all__``.
_EXPORTS = {
    # errors
    "ReproError": "repro.errors",
    "XMLParseError": "repro.errors",
    "DTDError": "repro.errors",
    "DTDParseError": "repro.errors",
    "DTDValidationError": "repro.errors",
    "XPathSyntaxError": "repro.errors",
    "XPathEvaluationError": "repro.errors",
    "SecurityError": "repro.errors",
    "SpecificationError": "repro.errors",
    "ViewDerivationError": "repro.errors",
    "MaterializationAborted": "repro.errors",
    "RewriteError": "repro.errors",
    "QueryRejectedError": "repro.errors",
    "XMLLimitError": "repro.errors",
    "DTDLimitError": "repro.errors",
    "ResourceError": "repro.errors",
    "DeadlineExceeded": "repro.errors",
    "BudgetExceeded": "repro.errors",
    "AdmissionRejected": "repro.errors",
    "FaultInjected": "repro.errors",
    "error_code": "repro.errors",
    # xml
    "XMLElement": "repro.xmlmodel",
    "XMLText": "repro.xmlmodel",
    "new_document": "repro.xmlmodel",
    "parse_document": "repro.xmlmodel",
    "serialize": "repro.xmlmodel",
    "pretty_print": "repro.xmlmodel",
    "DocumentIndex": "repro.xmlmodel",
    "build_index": "repro.xmlmodel",
    "NodeTable": "repro.xmlmodel",
    "build_node_table": "repro.xmlmodel",
    # dtd
    "DTD": "repro.dtd",
    "parse_dtd": "repro.dtd",
    "normalize_dtd": "repro.dtd",
    "validate": "repro.dtd",
    "conforms": "repro.dtd",
    "DocumentGenerator": "repro.dtd",
    # xpath
    "parse_xpath": "repro.xpath",
    "parse_qualifier": "repro.xpath",
    "evaluate": "repro.xpath",
    "XPathEvaluator": "repro.xpath",
    "CompiledPlan": "repro.xpath",
    "PlanRuntime": "repro.xpath",
    "compile_path": "repro.xpath",
    "Fingerprint": "repro.xpath",
    "query_fingerprint": "repro.xpath",
    # core
    "AccessSpec": "repro.core",
    "ANN_Y": "repro.core",
    "ANN_N": "repro.core",
    "SecurityView": "repro.core",
    "derive": "repro.core",
    "derive_view": "repro.core",
    "materialize": "repro.core",
    "Rewriter": "repro.core",
    "rewrite": "repro.core",
    "unfold_view": "repro.core",
    "Optimizer": "repro.core",
    "optimize": "repro.core",
    "naive_rewrite": "repro.core",
    "annotate_document": "repro.core",
    "accessible_nodes": "repro.core",
    "SecureQueryEngine": "repro.core",
    "ExecutionOptions": "repro.core",
    "QueryReport": "repro.core",
    "QueryResult": "repro.core",
    "PlanCache": "repro.core",
    "PlanCacheStats": "repro.core",
    "verify_policy": "repro.core",
    "save_view": "repro.core",
    "load_view": "repro.core",
    # observability
    "Tracer": "repro.obs",
    "Span": "repro.obs",
    "MetricsRegistry": "repro.obs",
    "metrics_registry": "repro.obs",
    "enable_metrics": "repro.obs",
    "disable_metrics": "repro.obs",
    "metrics_enabled": "repro.obs",
    "ProfileCollector": "repro.obs",
    "ExplainProfile": "repro.obs",
    # audit events / canary (see docs/audit.md)
    "Event": "repro.obs",
    "QueryEvent": "repro.obs",
    "DenialEvent": "repro.obs",
    "PolicyEvent": "repro.obs",
    "ErrorEvent": "repro.obs",
    "CanaryEvent": "repro.obs",
    "event_from_dict": "repro.obs",
    "read_jsonl": "repro.obs",
    "EventSink": "repro.obs",
    "EventPipeline": "repro.obs",
    "RingBufferSink": "repro.obs",
    "JsonlFileSink": "repro.obs",
    "CallbackSink": "repro.obs",
    "DegradationEvent": "repro.obs",
    "AuditLog": "repro.obs",
    "SecurityCanary": "repro.obs",
    "prometheus_text": "repro.obs",
    "WorkloadProfiler": "repro.obs",
    # robustness (see docs/robustness.md)
    "QueryLimits": "repro.robustness",
    "Budget": "repro.robustness",
    "NO_LIMITS": "repro.robustness",
    "DegradationPolicy": "repro.robustness",
    "FaultPlan": "repro.robustness",
    "FaultSpec": "repro.robustness",
    "FaultySink": "repro.robustness",
    # serving (see docs/serving.md)
    "PROTOCOL_VERSION": "repro.serving",
    "QueryRequest": "repro.serving",
    "QueryResponse": "repro.serving",
    "AdmissionController": "repro.serving",
    "TenantPolicy": "repro.serving",
    "EngineCatalog": "repro.serving",
    "QueryServer": "repro.serving",
    "standard_catalog": "repro.serving",
    "mixed_workload": "repro.serving",
    "replay": "repro.serving",
}

__all__ = list(_EXPORTS)


def __getattr__(name):
    """PEP 562 lazy export: resolve ``name`` from its submodule on
    first access and cache it in the module globals so subsequent
    lookups are ordinary attribute hits."""
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name)
        ) from None
    from importlib import import_module

    value = getattr(import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.core import (  # noqa: F401
        AccessSpec,
        ExecutionOptions,
        QueryResult,
        SecureQueryEngine,
    )
    from repro.serving import QueryRequest, QueryResponse  # noqa: F401
