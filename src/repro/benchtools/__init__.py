"""Benchmark drivers that regenerate the paper's evaluation exhibits.

Each module is runnable (``python -m repro.benchtools.table1``) and is
also imported by the pytest-benchmark suites under ``benchmarks/``.
"""
