"""Synthetic DTD/query families for complexity-claim benchmarks.

Theorem 3.2 claims ``derive`` runs in ``O(|D|^2)``; Theorem 4.1 claims
``rewrite`` runs in ``O(|p| * |Dv|^2)``.  These families let the bench
suites vary one size parameter at a time:

* ``chain_dtd(n)`` — a linear chain ``r -> a1 -> ... -> an``;
* ``wide_dtd(n)`` — one root with ``n`` required children;
* ``diamond_dtd(n)`` — ``n`` stacked diamonds (the worst case for
  ``//``-path counting: ``2^n`` root-to-leaf paths, which ``recProc``
  must capture in a polynomial-size expression);
* ``deep_query(n)`` / ``union_query(n)`` / ``qualifier_query(n)`` —
  query families of size ``Theta(n)``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.dtd.content import Choice, EPSILON, Name, STR, Seq, Star
from repro.dtd.dtd import DTD
from repro.core.spec import AccessSpec
from repro.xpath.ast import (
    Descendant,
    Label,
    Path,
    QPath,
    path_seq,
    qualified,
    union,
)


def chain_dtd(length: int) -> DTD:
    """``r -> a1``, ``a1 -> a2``, ..., ``a<length> -> str``."""
    productions = {"r": Name("a1") if length else STR}
    for index in range(1, length + 1):
        name = "a%d" % index
        if index == length:
            productions[name] = STR
        else:
            productions[name] = Name("a%d" % (index + 1))
    return DTD("r", productions)


def wide_dtd(width: int) -> DTD:
    """``r -> b1, ..., b<width>``; each ``bi -> str``."""
    productions = {
        "r": Seq([Name("b%d" % i) for i in range(1, width + 1)])
        if width > 1
        else Name("b1")
    }
    for index in range(1, width + 1):
        productions["b%d" % index] = STR
    return DTD("r", productions)


def diamond_dtd(layers: int) -> DTD:
    """``r = d0``, ``d<i> -> (l<i> | r<i>)``, both -> ``d<i+1>``;
    the final layer is a leaf.  ``2^layers`` distinct root-to-leaf
    paths through ``layers`` diamonds."""
    productions: Dict[str, object] = {}
    for index in range(layers):
        top = "d%d" % index
        left = "l%d" % index
        right = "rr%d" % index
        bottom = "d%d" % (index + 1)
        productions[top] = Choice([Name(left), Name(right)])
        productions[left] = Name(bottom)
        productions[right] = Name(bottom)
    productions["d%d" % layers] = STR
    return DTD("d0", productions)


def star_tree_dtd(depth: int, fanout: int = 2) -> DTD:
    """A complete ``fanout``-ary tree of star productions, depth
    ``depth`` — exercises generator and accessibility scaling."""
    productions: Dict[str, object] = {}

    def build(name: str, level: int):
        if level == depth:
            productions[name] = STR
            return
        children = []
        for branch in range(fanout):
            child = "%s_%d" % (name, branch)
            children.append(Name(child))
            build(child, level + 1)
        productions[name] = (
            Seq(children) if len(children) > 1 else children[0]
        )

    build("n", 0)
    return DTD("n", productions)


def full_access_spec(dtd: DTD) -> AccessSpec:
    """Everything accessible (identity view)."""
    return AccessSpec(dtd, name="full")


def alternating_spec(dtd: DTD, chain_length: int) -> AccessSpec:
    """Every other chain node inaccessible — maximizes short-cutting
    work in ``derive``."""
    spec = AccessSpec(dtd, name="alternating")
    previous = "r"
    for index in range(1, chain_length + 1):
        name = "a%d" % index
        if index % 2 == 1 and index < chain_length:
            spec.annotate(previous, name, "N")
            spec.annotate(name, "a%d" % (index + 1), "Y")
        previous = name
    return spec


def deep_query(depth: int) -> Path:
    """``a1/a2/.../a<depth>``."""
    return path_seq(Label("a%d" % i) for i in range(1, depth + 1))


def descendant_query(depth: int) -> Path:
    """``//a1//a2//...//a<depth>``."""
    query: Path = Descendant(Label("a1"))
    for index in range(2, depth + 1):
        query = path_seq([query, Descendant(Label("a%d" % index))])
    return query


def union_query(width: int) -> Path:
    """``b1 U b2 U ... U b<width>``."""
    return union(Label("b%d" % i) for i in range(1, width + 1))


def qualifier_query(width: int) -> Path:
    """``r[b1][b2]...[b<width>]`` over the wide DTD."""
    query: Path = Label("r")
    for index in range(1, width + 1):
        query = qualified(query, QPath(Label("b%d" % index)))
    return query


def chain_sizes(points: int = 4, start: int = 8) -> List[int]:
    """A doubling progression of family sizes."""
    return [start * (2 ** i) for i in range(points)]
