"""Table 1 reproduction: naive vs rewrite vs optimize on Q1-Q4, D1-D4.

The paper's Table 1 reports query evaluation time (seconds) of three
approaches for four queries over four documents of growing size.  This
module regenerates the same rows: for every (query, dataset) pair it
prepares the three document-level queries —

* **naive**: the two element-annotation rewrite rules of Section 6
  (child axes relaxed to descendant axes + ``[@accessibility = "1"]``),
  evaluated against the accessibility-annotated document;
* **rewrite**: Algorithm ``rewrite`` over the security view;
* **optimize**: Algorithm ``optimize`` applied to the rewritten query —

and measures evaluation wall-clock time plus the evaluator's node-visit
count (a machine-independent work measure).  Following the paper, a
``-`` is printed in the optimize column when optimization does not
change the query.

Run:  ``python -m repro.benchtools.table1 [--scale S] [--repeat N]``
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List, Optional

from repro.core.accessibility import annotate_accessibility
from repro.core.naive import naive_rewrite
from repro.core.optimize import Optimizer
from repro.core.rewrite import Rewriter
from repro.core.derive import derive
from repro.workloads.adex import adex_dtd, adex_spec
from repro.workloads.documents import DATASET_SCALES, dataset
from repro.workloads.queries import ADEX_QUERIES
from repro.xpath.evaluator import XPathEvaluator


class Cell:
    """One measurement: seconds and evaluator node visits."""

    __slots__ = ("seconds", "visits", "results", "skipped")

    def __init__(self, seconds: float, visits: int, results: int, skipped=False):
        self.seconds = seconds
        self.visits = visits
        self.results = results
        self.skipped = skipped

    def render(self) -> str:
        if self.skipped:
            return "-"
        return "%.4f" % self.seconds


def _measure(query, document, repeat: int) -> Cell:
    evaluator = XPathEvaluator()
    results = 0
    best = float("inf")
    for _ in range(repeat):
        evaluator.reset_counters()
        started = time.perf_counter()
        results = len(evaluator.evaluate(query, document))
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return Cell(best, evaluator.visits, results)


def run_table1(
    datasets: Optional[List[str]] = None,
    queries: Optional[List[str]] = None,
    scale: Optional[float] = None,
    repeat: int = 1,
) -> Dict[str, Dict[str, Dict[str, Cell]]]:
    """Compute the table.  Returns ``rows[query][dataset][approach]``
    where approach is ``naive`` / ``rewrite`` / ``optimize``."""
    datasets = list(DATASET_SCALES) if datasets is None else datasets
    queries = list(ADEX_QUERIES) if queries is None else queries

    dtd = adex_dtd()
    spec = adex_spec(dtd)
    view = derive(spec)
    rewriter = Rewriter(view)
    optimizer = Optimizer(dtd)

    plans = {}
    for name in queries:
        source = ADEX_QUERIES[name]
        rewritten = rewriter.rewrite(source)
        optimized = optimizer.optimize(rewritten)
        plans[name] = {
            "naive": naive_rewrite(source),
            "rewrite": rewritten,
            "optimize": optimized,
            "improved": optimized != rewritten,
        }

    documents = {}
    for dataset_name in datasets:
        document = dataset(dataset_name, scale)
        annotate_accessibility(document, spec)
        documents[dataset_name] = document

    rows: Dict[str, Dict[str, Dict[str, Cell]]] = {}
    for query_name in queries:
        plan = plans[query_name]
        rows[query_name] = {}
        for dataset_name in datasets:
            document = documents[dataset_name]
            row = {
                "naive": _measure(plan["naive"], document, repeat),
                "rewrite": _measure(plan["rewrite"], document, repeat),
            }
            if plan["improved"]:
                row["optimize"] = _measure(plan["optimize"], document, repeat)
            else:
                row["optimize"] = Cell(0.0, 0, 0, skipped=True)
            rows[query_name][dataset_name] = row
    return rows


def format_table(rows, scale: Optional[float] = None) -> str:
    """Render in the paper's row format (query x dataset, one line per
    dataset) with node-visit counts appended."""
    lines = []
    lines.append("Table 1: Performance Comparison (evaluation seconds)")
    sizes = {name: dataset(name, scale).size() for name in DATASET_SCALES}
    lines.append(
        "datasets: "
        + ", ".join("%s=%d nodes" % (name, sizes[name]) for name in sizes)
    )
    header = "%-6s %-8s %10s %10s %10s   %12s %12s" % (
        "Query",
        "Data Set",
        "Naive",
        "Rewrite",
        "Optimize",
        "naive-visits",
        "rw-visits",
    )
    lines.append(header)
    lines.append("-" * len(header))
    for query_name, per_dataset in rows.items():
        for dataset_name, row in per_dataset.items():
            lines.append(
                "%-6s %-8s %10s %10s %10s   %12d %12d"
                % (
                    query_name,
                    dataset_name,
                    row["naive"].render(),
                    row["rewrite"].render(),
                    row["optimize"].render(),
                    row["naive"].visits,
                    row["rewrite"].visits,
                )
            )
        lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--repeat", type=int, default=1)
    parser.add_argument(
        "--datasets", nargs="*", default=None, choices=list(DATASET_SCALES)
    )
    arguments = parser.parse_args(argv)
    rows = run_table1(
        datasets=arguments.datasets,
        scale=arguments.scale,
        repeat=arguments.repeat,
    )
    print(format_table(rows, arguments.scale))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
