"""Command-line interface: the secure-querying pipeline from a shell.

    repro validate  DOC.xml  DTD.dtd
    repro generate  DTD.dtd  [--seed N] [--max-branch N] [-o OUT.xml]
    repro view-dtd  DTD.dtd  SPEC.txt  [--bind name=value ...]
    repro rewrite   DTD.dtd  SPEC.txt  QUERY [--bind ...] [--no-optimize]
    repro query     DTD.dtd  SPEC.txt  DOC.xml QUERY [--bind ...]
                    [--no-optimize] [--explain] [--use-index] [--no-cache]
                    [--strategy virtual|columnar|materialized]
                    [--trace] [--metrics] [--json]
                    [--audit-log PATH] [--slow-ms MS]
                    [--canary RATE] [--canary-seed N]
                    [--timeout-ms MS] [--max-results N] [--max-visits N]
    repro audit     tail  LOG.jsonl [-n N] [--kind K] [--policy P]
                    [--trace-id ID] [--json]
    repro audit     stats LOG.jsonl [--policy P] [--json]
    repro metrics   SNAPSHOT.json [--format text|prometheus]
    repro table1    [--scale S] [--repeat N]
    repro serve     [--host H] [--port P] [--workers N] [--max-batch N]
                    [--max-concurrent N] [--max-queue-depth N]
                    [--queue-timeout-ms MS] [--seed N]
    repro replay    [--clients N] [--repetitions N] [--workers N]
                    [--max-batch N] [--seed N] [--json]
    repro trace     tail [--url URL] [-n N] [--tenant T] [--status S]
                    [--trace-id ID] [--json]
    repro workload  top    [--url URL] [--tenant T] [-n N] [--json]
    repro workload  report [--url URL] [--tenant T] [-n N] [--json]

Specification files use the line format of
:func:`repro.core.spec.parse_spec_text`:

    # nurse policy
    hospital dept [*/patient/wardNo = $wardNo]
    dept clinicalTrial N

Failures exit with a status derived from the error's stable code
(see :data:`EXIT_CODES`; generic library errors exit 2), so scripts
can distinguish e.g. a strict-mode denial from an XPath typo.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.engine import SecureQueryEngine
from repro.core.options import ExecutionOptions
from repro.core.spec import parse_spec_text
from repro.dtd.generator import DocumentGenerator
from repro.dtd.parser import parse_dtd
from repro.dtd.validate import validate
from repro.errors import ReproError, error_code
from repro.xmlmodel.parser import parse_document
from repro.xmlmodel.serialize import pretty_print, serialize

#: Stable error code -> process exit status.  Codes not listed here
#: exit 2 (the historical catch-all for library errors).
EXIT_CODES = {
    "E_LABEL_DENIED": 3,
    "E_PARSE_XPATH": 4,
    "E_PARSE_DTD": 5,
    "E_PARSE_XML": 6,
    "E_DTD_INVALID": 7,
    "E_SPEC": 8,
    "E_DERIVE": 9,
    "E_REWRITE": 10,
    "E_DEADLINE": 11,
    "E_BUDGET": 12,
    "E_ADMISSION": 13,
    "E_SHED": 14,
}


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _bindings(pairs) -> dict:
    bindings = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise ReproError("--bind expects name=value, got %r" % pair)
        name, _, value = pair.partition("=")
        bindings[name] = value
    return bindings


def _engine(arguments) -> SecureQueryEngine:
    dtd = parse_dtd(_read(arguments.dtd))
    spec = parse_spec_text(dtd, _read(arguments.spec))
    engine = SecureQueryEngine(
        dtd, strict=getattr(arguments, "strict", False)
    )
    engine.register_policy("policy", spec, **_bindings(arguments.bind))
    return engine


def cmd_validate(arguments) -> int:
    dtd = parse_dtd(_read(arguments.dtd))
    document = parse_document(_read(arguments.document))
    issues = validate(document, dtd)
    if not issues:
        print("valid: document conforms to the DTD")
        return 0
    for issue in issues:
        print("invalid: %s" % issue)
    return 1


def cmd_generate(arguments) -> int:
    dtd = parse_dtd(_read(arguments.dtd))
    generator = DocumentGenerator(
        dtd, seed=arguments.seed, max_branch=arguments.max_branch
    )
    document = generator.generate()
    rendered = (
        pretty_print(document) if arguments.pretty else serialize(document)
    )
    if arguments.output:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(
            "wrote %s (%d nodes)" % (arguments.output, document.size()),
            file=sys.stderr,
        )
    else:
        print(rendered)
    return 0


def cmd_view_dtd(arguments) -> int:
    engine = _engine(arguments)
    print(engine.view_dtd_text("policy"))
    view = engine._policies["policy"].view
    for warning in view.warnings:
        print("warning: %s" % warning, file=sys.stderr)
    return 0


def cmd_rewrite(arguments) -> int:
    engine = _engine(arguments)
    rewritten = engine.rewrite_query("policy", arguments.query)
    print("rewritten: %s" % rewritten)
    if not arguments.no_optimize:
        optimized = engine._optimizer.optimize(rewritten)
        print("optimized: %s" % optimized)
    return 0


def cmd_query(arguments) -> int:
    from repro.obs.metrics import (
        disable_metrics,
        enable_metrics,
        metrics_registry,
    )

    engine = _engine(arguments)
    document = parse_document(_read(arguments.document))
    limits = None
    if (
        arguments.timeout_ms is not None
        or arguments.max_results is not None
        or arguments.max_visits is not None
    ):
        from repro.robustness.governor import QueryLimits

        limits = QueryLimits(
            deadline_seconds=(
                arguments.timeout_ms / 1e3
                if arguments.timeout_ms is not None
                else None
            ),
            max_results=arguments.max_results,
            max_visits=arguments.max_visits,
        )
    options = ExecutionOptions(
        strategy=arguments.strategy,
        optimize=not arguments.no_optimize,
        use_index=arguments.use_index,
        use_cache=not arguments.no_cache,
        trace=arguments.trace,
        slow_query_threshold=(
            arguments.slow_ms / 1e3 if arguments.slow_ms is not None else None
        ),
        limits=limits,
    )
    audit_sink = None
    if arguments.audit_log:
        from repro.obs.events import JsonlFileSink

        audit_sink = engine.add_sink(JsonlFileSink(arguments.audit_log))
    if arguments.canary is not None:
        engine.enable_canary(arguments.canary, seed=arguments.canary_seed)
    if arguments.metrics:
        metrics_registry().reset()
        enable_metrics()
    try:
        result = engine.query(
            "policy", arguments.query, document, options=options
        )
    finally:
        if arguments.metrics:
            disable_metrics()
        if audit_sink is not None:
            audit_sink.close()
    report = result.report
    if arguments.json:
        import json

        payload = {
            "results": [
                value if isinstance(value, str) else serialize(value)
                for value in result
            ],
            "report": report.to_dict(),
        }
        if arguments.metrics:
            payload["metrics"] = engine.metrics()
        print(json.dumps(payload, indent=2))
        return 0
    if arguments.explain:
        print(report.summary())
    if arguments.trace and report.profile is not None:
        print(report.profile.render())
    for value in result:
        print(value if isinstance(value, str) else serialize(value))
    if arguments.metrics:
        print(_render_metrics(engine.metrics()))
    return 0


def _render_metrics(snapshot: dict) -> str:
    """Flat ``name = value`` text rendering of a metrics snapshot."""
    lines = ["metrics:"]
    for name, value in snapshot.get("counters", {}).items():
        lines.append("  %s = %d" % (name, value))
    for name, histogram in snapshot.get("histograms", {}).items():
        lines.append(
            "  %s = count=%d mean=%.6f min=%.6f max=%.6f"
            % (
                name,
                histogram["count"],
                histogram["mean"],
                histogram["min"],
                histogram["max"],
            )
        )
    return "\n".join(lines)


def _render_event(event) -> str:
    """One-line human rendering of an audit event."""
    import time as _time

    stamp = _time.strftime(
        "%Y-%m-%dT%H:%M:%S", _time.localtime(event.timestamp)
    )
    if event.kind == "query":
        detail = "%s -> %s  results=%d  %.3fms  %s%s%s" % (
            event.query,
            event.rewritten,
            event.result_count,
            event.latency_seconds * 1e3,
            event.strategy,
            " cache-hit" if event.cache_hit else "",
            " SLOW" if event.slow else "",
        )
    elif event.kind == "denial":
        detail = "%s  label=%s  [%s]" % (event.query, event.label, event.code)
    elif event.kind == "policy":
        detail = event.action
    elif event.kind == "error":
        detail = "%s  [%s] %s" % (event.query, event.code, event.message)
    elif event.kind == "canary":
        detail = "%s  violations=%d (missing=%d extra=%d)  %s" % (
            event.query,
            event.violations,
            event.missing,
            event.extra,
            "ok" if event.ok else "VIOLATION",
        )
    elif event.kind == "degradation":
        detail = "%s -> %s  [%s] %s" % (
            event.seam,
            event.fallback,
            event.code,
            event.message,
        )
    else:  # pragma: no cover - future kinds
        detail = ""
    policy = getattr(event, "policy", "") or "-"
    return "%s  %-7s %-12s %s" % (stamp, event.kind, policy, detail)


def cmd_audit_tail(arguments) -> int:
    from repro.obs.audit import AuditLog

    log = AuditLog.from_jsonl(arguments.log)
    events = log.tail(
        arguments.count,
        kind=arguments.kind,
        policy=arguments.policy,
        trace_id=arguments.trace_id,
    )
    if arguments.json:
        for event in events:
            print(event.to_json())
        return 0
    for event in events:
        print(_render_event(event))
    return 0


def cmd_audit_stats(arguments) -> int:
    from repro.obs.audit import AuditLog

    log = AuditLog.from_jsonl(arguments.log)
    stats = log.stats(policy=arguments.policy)
    if arguments.json:
        import json

        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    if not stats:
        print("no events")
        return 0
    for policy in sorted(stats):
        bucket = stats[policy]
        latency = bucket["latency"]
        print("policy %s:" % policy)
        print(
            "  queries=%d cache_hits=%d slow=%d denials=%d errors=%d "
            "degradations=%d"
            % (
                bucket["queries"],
                bucket["cache_hits"],
                bucket["slow"],
                bucket["denials"],
                bucket["errors"],
                bucket.get("degradations", 0),
            )
        )
        print(
            "  canary: checks=%d violations=%d"
            % (bucket["canary_checks"], bucket["canary_violations"])
        )
        print(
            "  latency: count=%d mean=%.3fms p50=%.3fms p95=%.3fms max=%.3fms"
            % (
                latency["count"],
                latency["mean"] * 1e3,
                latency["p50"] * 1e3,
                latency["p95"] * 1e3,
                latency["max"] * 1e3,
            )
        )
    return 0


def cmd_metrics(arguments) -> int:
    """Render a metrics snapshot (``engine.metrics()`` JSON, or the
    ``--json`` payload of ``repro query --metrics``) as text or in
    Prometheus exposition format."""
    import json

    if arguments.snapshot == "-":
        payload = json.load(sys.stdin)
    else:
        payload = json.loads(_read(arguments.snapshot))
    # accept either a bare snapshot or a payload embedding one
    if "metrics" in payload and isinstance(payload["metrics"], dict):
        snapshot = payload["metrics"]
    else:
        snapshot = payload
    if "counters" not in snapshot and "histograms" not in snapshot:
        raise ReproError(
            "%s does not look like a metrics snapshot (expected "
            "'counters'/'histograms' keys)" % arguments.snapshot
        )
    if arguments.format == "prometheus":
        from repro.obs.export import prometheus_text

        sys.stdout.write(prometheus_text(snapshot))
    else:
        print(_render_metrics(snapshot))
    return 0


def cmd_verify(arguments) -> int:
    from repro.core.verify import verify_policy

    dtd = parse_dtd(_read(arguments.dtd))
    spec = parse_spec_text(dtd, _read(arguments.spec))
    bindings = _bindings(arguments.bind)
    if bindings:
        spec = spec.bind(**bindings)
    report = verify_policy(spec, trials=arguments.trials, seed=arguments.seed)
    print(report.summary())
    for warning in report.warnings:
        print("warning: %s" % warning, file=sys.stderr)
    return 0 if report.ok else 1


def cmd_table1(arguments) -> int:
    from repro.benchtools.table1 import main as table1_main

    table_arguments = []
    if arguments.scale is not None:
        table_arguments += ["--scale", str(arguments.scale)]
    table_arguments += ["--repeat", str(arguments.repeat)]
    return table1_main(table_arguments)


def _admission(arguments):
    from repro.serving.admission import AdmissionController, TenantPolicy
    from repro.serving.resilience import OverloadDetector

    overload = (
        None if getattr(arguments, "no_shed", False) else OverloadDetector()
    )
    return AdmissionController(
        TenantPolicy(
            max_concurrent=arguments.max_concurrent,
            max_queue_depth=arguments.max_queue_depth,
            queue_deadline_seconds=(
                arguments.queue_timeout_ms / 1e3
                if arguments.queue_timeout_ms is not None
                else None
            ),
        ),
        overload=overload,
    )


def _tracing_kwargs(arguments) -> dict:
    """QueryServer tracing/flight/SLO settings from serving flags."""
    from repro.obs.flight import FlightRecorder
    from repro.obs.slo import SLObjective, SLOTracker

    if arguments.no_tracing:
        return {"tracing": False}
    return {
        "tracing": True,
        "flight": FlightRecorder(
            capacity=arguments.flight_capacity,
            tail_capacity=arguments.flight_tail,
        ),
        "slo": SLOTracker(
            SLObjective(
                threshold_seconds=arguments.slo_ms / 1e3,
                target=arguments.slo_target,
            )
        ),
    }


def cmd_serve(arguments) -> int:
    """Run the HTTP serving front end over the standard catalog (the
    hospital nurse/doctor tenants plus the Adex buyer).  SIGTERM and
    SIGINT both trigger a graceful drain: intake stops (``/readyz``
    flips to 503), queued and in-flight work flushes for up to
    ``--drain-ms``, then the process exits."""
    import signal
    from threading import Thread

    from repro.obs.metrics import enable_metrics
    from repro.serving.httpd import make_http_server
    from repro.serving.replay import standard_catalog
    from repro.serving.server import QueryServer

    enable_metrics()
    catalog = standard_catalog(seed=arguments.seed)
    server = QueryServer(
        catalog,
        admission=_admission(arguments),
        workers=arguments.workers,
        max_batch=arguments.max_batch,
        **_tracing_kwargs(arguments)
    ).start()
    httpd = make_http_server(
        server, host=arguments.host, port=arguments.port
    )

    def _drain_signal(signum, frame):  # pragma: no cover - signal path
        print(
            "received %s, draining..."
            % signal.Signals(signum).name,
            file=sys.stderr,
        )
        server.begin_drain()
        # shutdown() blocks until serve_forever returns, so it must
        # run off the signal-handling (main) thread
        Thread(target=httpd.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _drain_signal)
        signal.signal(signal.SIGINT, _drain_signal)
    except ValueError:
        pass  # not the main thread (tests); rely on KeyboardInterrupt
    print(
        "serving %s on http://%s:%d (POST /query, GET /metrics, "
        "GET /debug/traces, GET /debug/slo, GET /debug/workload, "
        "GET /debug/cachez, GET /debug/vars, GET /debug/resilience, "
        "GET /healthz, GET /readyz)"
        % (", ".join(catalog.refs()), arguments.host, arguments.port),
        file=sys.stderr,
    )
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        server.begin_drain()
    finally:
        httpd.server_close()
        report = server.drain(deadline_seconds=arguments.drain_ms / 1e3)
        print(
            "drained in %.2fs (deadline %.2fs): %d rejected, "
            "%d unresolved%s"
            % (
                report["duration_seconds"],
                report["deadline_seconds"],
                report["rejected"],
                report["unresolved"],
                "" if report["within_deadline"] else " [DEADLINE MISSED]",
            ),
            file=sys.stderr,
        )
    return 0


def cmd_replay(arguments) -> int:
    """Replay the mixed-tenant workload through an in-process server
    and print latency/throughput stats."""
    from repro.serving.replay import mixed_workload, replay, standard_catalog
    from repro.serving.server import QueryServer

    catalog = standard_catalog(seed=arguments.seed)
    requests = mixed_workload(
        repetitions=arguments.repetitions, seed=arguments.seed
    )
    retry_budget = None
    if arguments.retry_budget > 0:
        from repro.serving.resilience import RetryBudget

        retry_budget = RetryBudget(ratio=arguments.retry_budget)
    with QueryServer(
        catalog,
        workers=arguments.workers,
        max_batch=arguments.max_batch,
        **_tracing_kwargs(arguments)
    ) as server:
        stats = replay(
            server,
            requests,
            clients=arguments.clients,
            retry_budget=retry_budget,
        )
    partial = bool(stats.get("partial"))
    if arguments.json:
        import json

        print(json.dumps(stats, indent=2, sort_keys=True))
        return 1 if partial else 0
    print(
        "replayed %d requests from %d clients in %.2fs (%.1f qps)"
        % (
            stats["requests"],
            stats["clients"],
            stats["elapsed_seconds"],
            stats["qps"],
        )
    )
    print(
        "latency: p50=%.2fms p95=%.2fms p99=%.2fms"
        % (stats["p50_ms"], stats["p95_ms"], stats["p99_ms"])
    )
    for tenant, bucket in stats["tenants"].items():
        print(
            "  tenant %-18s requests=%-4d p50=%.2fms p95=%.2fms"
            % (tenant, bucket["requests"], bucket["p50_ms"], bucket["p95_ms"])
        )
    if "flight" in stats:
        print(
            "traces: %(retained)d retained of %(recorded)d recorded "
            "(tail=%(tail)d interesting, %(ok_sampled)d ok-sampled)"
            % stats["flight"]
        )
    for tenant, slo in stats.get("slo", {}).items():
        print(
            "  slo %-21s compliance=%.4f burn fast=%.2f slow=%.2f"
            % (
                tenant,
                slo["compliance"],
                slo["fast_burn_rate"],
                slo["slow_burn_rate"],
            )
        )
    if stats["errors"]:
        for code, count in sorted(stats["errors"].items()):
            print("  errors[%s] = %d" % (code, count))
    if "retries" in stats:
        print("  retries = %d" % stats["retries"])
    if partial:
        print(
            "replay PARTIAL: %d transport errors, %d skipped (server "
            "drained or stopped mid-replay); summary covers completed "
            "requests only"
            % (stats["transport_errors"], stats["skipped"]),
            file=sys.stderr,
        )
        return 1
    return 1 if stats["errors"] else 0


def cmd_trace_tail(arguments) -> int:
    """Fetch and render the newest retained traces from a running
    server's ``/debug/traces`` endpoint."""
    import json
    from urllib.parse import quote
    from urllib.request import urlopen

    from repro.obs.flight import render_trace

    base = arguments.url.rstrip("/")
    params = []
    if arguments.trace_id:
        params.append("trace_id=%s" % quote(arguments.trace_id))
    else:
        params.append("n=%d" % arguments.count)
        if arguments.tenant:
            params.append("tenant=%s" % quote(arguments.tenant))
        if arguments.status:
            params.append("status=%s" % quote(arguments.status))
    with urlopen("%s/debug/traces?%s" % (base, "&".join(params))) as reply:
        payload = json.load(reply)
    if arguments.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not payload.get("enabled", True):
        print("tracing is disabled on the server", file=sys.stderr)
        return 1
    stats = payload.get("stats")
    if stats:
        print(
            "flight recorder: %(retained)d retained of %(recorded)d "
            "recorded (tail=%(tail)d interesting, %(ok_sampled)d "
            "ok-sampled)" % stats
        )
    traces = payload.get("traces", [])
    if not traces:
        if arguments.trace_id:
            print(
                "trace %s not retained" % arguments.trace_id, file=sys.stderr
            )
            return 1
        print("no traces retained yet")
        return 0
    for trace in traces:
        print(render_trace(trace))
    return 0


def _fetch_workload(arguments) -> dict:
    """GET a running server's ``/debug/workload`` payload."""
    import json
    from urllib.parse import quote
    from urllib.request import urlopen

    base = arguments.url.rstrip("/")
    params = []
    if arguments.tenant:
        params.append("tenant=%s" % quote(arguments.tenant))
    if arguments.count is not None:
        params.append("n=%d" % arguments.count)
    url = "%s/debug/workload" % base
    if params:
        url += "?%s" % "&".join(params)
    with urlopen(url) as reply:
        return json.load(reply)


def cmd_workload_top(arguments) -> int:
    """Show each tenant's heaviest query shapes from a running
    server's ``/debug/workload`` endpoint."""
    payload = _fetch_workload(arguments)
    if arguments.json:
        import json

        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not payload.get("enabled", True):
        print("workload profiling is disabled on the server", file=sys.stderr)
        return 1
    tenants = payload.get("tenants", {})
    if not tenants:
        print("no workload recorded yet")
        return 0
    for tenant in sorted(tenants):
        bucket = tenants[tenant]
        print(
            "tenant %s: queries=%d errors=%d denials=%d "
            "fingerprints=%d evictions=%d"
            % (
                tenant,
                bucket["queries"],
                bucket["errors"],
                bucket["denials"],
                bucket["fingerprints"],
                bucket["evictions"],
            )
        )
        for entry in bucket.get("top", []):
            print(
                "  %-16s count=%-6d p50=%.2fms p95=%.2fms hit=%.2f  %s"
                % (
                    entry["fingerprint"],
                    entry["count"],
                    entry["p50_ms"],
                    entry["p95_ms"],
                    entry["cache_hit_ratio"],
                    entry["shape"],
                )
            )
    return 0


def cmd_workload_report(arguments) -> int:
    """Dump the full workload report (always JSON; the human view is
    ``repro workload top``)."""
    import json

    print(json.dumps(_fetch_workload(arguments), indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Secure XML querying with security views (SIGMOD 2004)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    validate_cmd = commands.add_parser(
        "validate", help="check a document against a DTD"
    )
    validate_cmd.add_argument("document")
    validate_cmd.add_argument("dtd")
    validate_cmd.set_defaults(handler=cmd_validate)

    generate_cmd = commands.add_parser(
        "generate", help="generate a random conforming document"
    )
    generate_cmd.add_argument("dtd")
    generate_cmd.add_argument("--seed", type=int, default=0)
    generate_cmd.add_argument("--max-branch", type=int, default=3)
    generate_cmd.add_argument("-o", "--output")
    generate_cmd.add_argument("--pretty", action="store_true")
    generate_cmd.set_defaults(handler=cmd_generate)

    def add_policy_arguments(sub):
        sub.add_argument("dtd")
        sub.add_argument("spec")
        sub.add_argument(
            "--bind",
            action="append",
            metavar="NAME=VALUE",
            help="bind a $parameter of the specification",
        )
        sub.add_argument(
            "--strict",
            action="store_true",
            help="reject queries referencing labels outside the view "
            "DTD (exit code %d)" % EXIT_CODES["E_LABEL_DENIED"],
        )

    view_cmd = commands.add_parser(
        "view-dtd", help="derive a policy's security view DTD"
    )
    add_policy_arguments(view_cmd)
    view_cmd.set_defaults(handler=cmd_view_dtd)

    rewrite_cmd = commands.add_parser(
        "rewrite", help="rewrite a view query over the document"
    )
    add_policy_arguments(rewrite_cmd)
    rewrite_cmd.add_argument("query")
    rewrite_cmd.add_argument("--no-optimize", action="store_true")
    rewrite_cmd.set_defaults(handler=cmd_rewrite)

    query_cmd = commands.add_parser(
        "query", help="answer a view query on a document"
    )
    add_policy_arguments(query_cmd)
    query_cmd.add_argument("document")
    query_cmd.add_argument("query")
    query_cmd.add_argument("--no-optimize", action="store_true")
    query_cmd.add_argument("--explain", action="store_true")
    query_cmd.add_argument(
        "--strategy",
        choices=["virtual", "columnar", "materialized"],
        default="virtual",
        help="virtual (rewrite; default), columnar (rewrite + "
        "set-at-a-time NodeTable execution), or materialized view",
    )
    query_cmd.add_argument(
        "--use-index",
        action="store_true",
        help="build a document index for //label fast paths",
    )
    query_cmd.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the engine's compiled-plan cache",
    )
    query_cmd.add_argument(
        "--trace",
        action="store_true",
        help="collect per-operator stats and print the EXPLAIN "
        "ANALYZE profile tree (composes with --explain)",
    )
    query_cmd.add_argument(
        "--metrics",
        action="store_true",
        help="enable the metrics registry for this query and print "
        "the snapshot",
    )
    query_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON object (results, report, profile, and "
        "metrics when requested) instead of text",
    )
    query_cmd.add_argument(
        "--audit-log",
        metavar="PATH",
        help="append audit events (query/canary/...) as JSONL to PATH "
        "(aggregate with `repro audit stats PATH`)",
    )
    query_cmd.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="flag queries slower than MS milliseconds in the audit "
        "log, attaching their EXPLAIN ANALYZE profile",
    )
    query_cmd.add_argument(
        "--canary",
        type=float,
        default=None,
        metavar="RATE",
        help="re-check answers against the materialized-view oracle "
        "at this sample rate (0..1) and emit canary events",
    )
    query_cmd.add_argument(
        "--canary-seed",
        type=int,
        default=None,
        help="seed the canary's sampling RNG (reproducible schedules)",
    )
    query_cmd.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        metavar="MS",
        help="wall-clock deadline for the query; exceeding it exits "
        "%d [E_DEADLINE]" % EXIT_CODES["E_DEADLINE"],
    )
    query_cmd.add_argument(
        "--max-results",
        type=int,
        default=None,
        metavar="N",
        help="fail with exit %d [E_BUDGET] when the answer would "
        "exceed N results" % EXIT_CODES["E_BUDGET"],
    )
    query_cmd.add_argument(
        "--max-visits",
        type=int,
        default=None,
        metavar="N",
        help="fail with exit %d [E_BUDGET] after N node visits"
        % EXIT_CODES["E_BUDGET"],
    )
    query_cmd.set_defaults(handler=cmd_query)

    audit_cmd = commands.add_parser(
        "audit", help="inspect a JSONL audit log"
    )
    audit_commands = audit_cmd.add_subparsers(
        dest="audit_command", required=True
    )
    tail_cmd = audit_commands.add_parser(
        "tail", help="show the most recent audit events"
    )
    tail_cmd.add_argument("log", help="JSONL audit log path")
    tail_cmd.add_argument("-n", "--count", type=int, default=10)
    tail_cmd.add_argument(
        "--kind",
        choices=["query", "denial", "policy", "error", "canary", "degradation"],
        default=None,
    )
    tail_cmd.add_argument("--policy", default=None)
    tail_cmd.add_argument(
        "--trace-id",
        default=None,
        help="only events stamped with this request trace id",
    )
    tail_cmd.add_argument(
        "--json", action="store_true", help="print raw JSONL instead"
    )
    tail_cmd.set_defaults(handler=cmd_audit_tail)
    stats_cmd = audit_commands.add_parser(
        "stats", help="per-policy accounting of an audit log"
    )
    stats_cmd.add_argument("log", help="JSONL audit log path")
    stats_cmd.add_argument("--policy", default=None)
    stats_cmd.add_argument("--json", action="store_true")
    stats_cmd.set_defaults(handler=cmd_audit_stats)

    metrics_cmd = commands.add_parser(
        "metrics",
        help="render a metrics snapshot (text or Prometheus exposition)",
    )
    metrics_cmd.add_argument(
        "snapshot",
        help="path to an engine.metrics() JSON snapshot (or the "
        "--json payload of `repro query --metrics`); '-' for stdin",
    )
    metrics_cmd.add_argument(
        "--format",
        choices=["text", "prometheus"],
        default="text",
    )
    metrics_cmd.set_defaults(handler=cmd_metrics)

    verify_cmd = commands.add_parser(
        "verify", help="fuzz-check a policy's soundness/completeness"
    )
    add_policy_arguments(verify_cmd)
    verify_cmd.add_argument("--trials", type=int, default=25)
    verify_cmd.add_argument("--seed", type=int, default=0)
    verify_cmd.set_defaults(handler=cmd_verify)

    table_cmd = commands.add_parser(
        "table1", help="reproduce the paper's Table 1"
    )
    table_cmd.add_argument("--scale", type=float, default=None)
    table_cmd.add_argument("--repeat", type=int, default=1)
    table_cmd.set_defaults(handler=cmd_table1)

    def add_serving_arguments(sub):
        sub.add_argument(
            "--workers", type=int, default=4, help="server worker threads"
        )
        sub.add_argument(
            "--max-batch",
            type=int,
            default=8,
            help="most requests one worker coalesces per pass",
        )
        sub.add_argument(
            "--seed", type=int, default=0, help="document-generation seed"
        )
        sub.add_argument(
            "--no-tracing",
            action="store_true",
            help="disable request tracing, the flight recorder, and "
            "SLO tracking",
        )
        sub.add_argument(
            "--slo-ms",
            type=float,
            default=250.0,
            metavar="MS",
            help="per-request latency SLO threshold (default 250 ms)",
        )
        sub.add_argument(
            "--slo-target",
            type=float,
            default=0.99,
            help="fraction of requests that must meet the SLO "
            "(default 0.99)",
        )
        sub.add_argument(
            "--flight-capacity",
            type=int,
            default=128,
            help="reservoir size for sampled OK traces",
        )
        sub.add_argument(
            "--flight-tail",
            type=int,
            default=256,
            help="tail buffer size for slow/error/denied traces",
        )

    serve_cmd = commands.add_parser(
        "serve",
        help="serve the standard catalog over HTTP (multi-tenant)",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8000)
    add_serving_arguments(serve_cmd)
    serve_cmd.add_argument(
        "--max-concurrent",
        type=int,
        default=4,
        help="concurrency slots per tenant",
    )
    serve_cmd.add_argument(
        "--max-queue-depth",
        type=int,
        default=16,
        help="waiters per tenant before hard E_ADMISSION rejection "
        "(exit %d over the CLI)" % EXIT_CODES["E_ADMISSION"],
    )
    serve_cmd.add_argument(
        "--queue-timeout-ms",
        type=float,
        default=None,
        metavar="MS",
        help="queue deadline; waiting longer surfaces E_DEADLINE",
    )
    serve_cmd.add_argument(
        "--no-shed",
        action="store_true",
        help="disable utilization-based load shedding (requests only "
        "fail on hard queue bounds, never E_SHED/exit %d)"
        % EXIT_CODES["E_SHED"],
    )
    serve_cmd.add_argument(
        "--drain-ms",
        type=float,
        default=5000.0,
        metavar="MS",
        help="graceful-drain deadline after SIGTERM/SIGINT "
        "(default 5000 ms)",
    )
    serve_cmd.set_defaults(handler=cmd_serve)

    replay_cmd = commands.add_parser(
        "replay",
        help="replay the mixed-tenant workload and print latency stats",
    )
    replay_cmd.add_argument(
        "--clients", type=int, default=16, help="concurrent client threads"
    )
    replay_cmd.add_argument(
        "--repetitions",
        type=int,
        default=4,
        help="workload repetitions per tenant",
    )
    replay_cmd.add_argument("--json", action="store_true")
    replay_cmd.add_argument(
        "--retry-budget",
        type=float,
        default=0.0,
        metavar="RATIO",
        help="enable client-side retries of shed/rejected requests, "
        "budgeted to RATIO of each tenant's traffic (0 disables)",
    )
    add_serving_arguments(replay_cmd)
    replay_cmd.set_defaults(handler=cmd_replay)

    trace_cmd = commands.add_parser(
        "trace", help="inspect a running server's retained traces"
    )
    trace_commands = trace_cmd.add_subparsers(
        dest="trace_command", required=True
    )
    trace_tail_cmd = trace_commands.add_parser(
        "tail", help="show the newest retained traces"
    )
    trace_tail_cmd.add_argument(
        "--url",
        default="http://127.0.0.1:8000",
        help="base URL of a running `repro serve`",
    )
    trace_tail_cmd.add_argument("-n", "--count", type=int, default=10)
    trace_tail_cmd.add_argument(
        "--tenant", default=None, help="only this tenant's traces"
    )
    trace_tail_cmd.add_argument(
        "--status",
        default=None,
        choices=["ok", "slow", "error", "denied", "canary-violation"],
        help="only traces with this retention status",
    )
    trace_tail_cmd.add_argument(
        "--trace-id", default=None, help="fetch one trace by id"
    )
    trace_tail_cmd.add_argument("--json", action="store_true")
    trace_tail_cmd.set_defaults(handler=cmd_trace_tail)

    workload_cmd = commands.add_parser(
        "workload",
        help="inspect a running server's per-tenant query workload",
    )
    workload_commands = workload_cmd.add_subparsers(
        dest="workload_command", required=True
    )

    def add_workload_arguments(sub):
        sub.add_argument(
            "--url",
            default="http://127.0.0.1:8000",
            help="base URL of a running `repro serve`",
        )
        sub.add_argument(
            "--tenant", default=None, help="only this tenant's workload"
        )
        sub.add_argument(
            "-n",
            "--count",
            type=int,
            default=None,
            help="top-K fingerprints per tenant (default: server's)",
        )
        sub.add_argument("--json", action="store_true")

    workload_top_cmd = workload_commands.add_parser(
        "top", help="heaviest query shapes per tenant"
    )
    add_workload_arguments(workload_top_cmd)
    workload_top_cmd.set_defaults(handler=cmd_workload_top)
    workload_report_cmd = workload_commands.add_parser(
        "report", help="full workload report as JSON"
    )
    add_workload_arguments(workload_report_cmd)
    workload_report_cmd.set_defaults(handler=cmd_workload_report)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except BrokenPipeError:
        return 0  # e.g. output truncated by `| head`
    except ReproError as error:
        code = error_code(error)
        print("error: %s [%s]" % (error, code), file=sys.stderr)
        return EXIT_CODES.get(code, 2)
    except OSError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
