"""The paper's algorithms: access specifications, security-view
derivation, view materialization, query rewriting, and DTD-aware
query optimization."""

from repro.core.spec import AccessSpec, ANN_Y, ANN_N, CondAnnotation, spec_from_edges
from repro.core.accessibility import (
    ACCESSIBILITY_ATTRIBUTE,
    accessible_nodes,
    annotate_accessibility,
    compute_accessibility,
    is_accessible,
)
from repro.core.view import SecurityView, ViewNode
from repro.core.derive import derive, derive_view
from repro.core.materialize import materialize, materialize_subtree
from repro.core.rewrite import Rewriter, rewrite
from repro.core.unfold import unfold_view, view_min_heights
from repro.core.optimize import Optimizer, optimize
from repro.core.naive import naive_rewrite, annotate_document
from repro.core.options import ExecutionOptions
from repro.core.plancache import CompiledQuery, PlanCache, PlanCacheStats
from repro.core.engine import QueryReport, QueryResult, SecureQueryEngine
from repro.core.verify import VerificationReport, verify_policy
from repro.core.persistence import (
    load_view,
    save_view,
    view_from_dict,
    view_to_dict,
)

__all__ = [
    "AccessSpec",
    "ANN_Y",
    "ANN_N",
    "CondAnnotation",
    "spec_from_edges",
    "ACCESSIBILITY_ATTRIBUTE",
    "accessible_nodes",
    "annotate_accessibility",
    "compute_accessibility",
    "is_accessible",
    "SecurityView",
    "ViewNode",
    "derive",
    "derive_view",
    "materialize",
    "materialize_subtree",
    "Rewriter",
    "rewrite",
    "unfold_view",
    "view_min_heights",
    "Optimizer",
    "optimize",
    "naive_rewrite",
    "annotate_document",
    "ExecutionOptions",
    "CompiledQuery",
    "PlanCache",
    "PlanCacheStats",
    "SecureQueryEngine",
    "QueryReport",
    "QueryResult",
    "VerificationReport",
    "verify_policy",
    "save_view",
    "load_view",
    "view_to_dict",
    "view_from_dict",
]
