"""Accessibility of document nodes w.r.t. an access specification.

Implements the semantics of Section 3.2 / Proposition 3.1: for an
instance ``T`` of the document DTD and a specification ``S = (D,
ann)``, each element ``v`` of ``T`` has a uniquely defined
accessibility:

* if ``ann(v)`` (the annotation of the edge from ``v``'s parent type to
  ``v``'s type) is explicitly defined:

  - ``Y``: accessible iff every conditionally-annotated ancestor's
    qualifier holds at that ancestor;
  - ``[q]``: accessible iff ``q`` holds at ``v`` *and* every
    conditionally-annotated ancestor's qualifier holds;
  - ``N``: inaccessible;

* otherwise ``v`` inherits the accessibility of its parent.

The root is accessible (annotated ``Y`` by default).

This module is used (a) as the semantic ground truth in tests, and
(b) by the naive baseline of Section 6, which stores the result in an
``accessibility`` attribute on every element.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.spec import ANN_N, ANN_Y, AccessSpec, CondAnnotation
from repro.xpath.evaluator import XPathEvaluator

#: Attribute name used by the naive baseline (Section 6).
ACCESSIBILITY_ATTRIBUTE = "accessibility"


def compute_accessibility(root, spec: AccessSpec) -> Dict[int, bool]:
    """Map ``id(element) -> accessible?`` for every element under (and
    including) ``root``."""
    evaluator = XPathEvaluator()
    result: Dict[int, bool] = {id(root): True}
    # state per node: (parent_accessible, ancestors_conditions_ok)
    stack: List[tuple] = [(root, True, True)]
    while stack:
        node, node_accessible, conditions_ok = stack.pop()
        for child in node.children:
            if not child.is_element:
                continue
            annotation = spec.ann(node.label, child.label)
            child_conditions_ok = conditions_ok
            if annotation is ANN_Y:
                child_accessible = conditions_ok
            elif annotation is ANN_N:
                child_accessible = False
            elif isinstance(annotation, CondAnnotation):
                holds = evaluator.evaluate_qualifier(
                    annotation.qualifier, child
                )
                child_conditions_ok = conditions_ok and holds
                child_accessible = conditions_ok and holds
            else:
                child_accessible = node_accessible
            result[id(child)] = child_accessible
            stack.append((child, child_accessible, child_conditions_ok))
    return result


def is_accessible(element, root, spec: AccessSpec) -> bool:
    """Accessibility of a single element (recomputes ancestors; for
    bulk queries use :func:`compute_accessibility`)."""
    return compute_accessibility(root, spec)[id(element)]


def accessible_nodes(root, spec: AccessSpec) -> List:
    """All accessible elements of the document, in document order."""
    accessibility = compute_accessibility(root, spec)
    return [
        element
        for element in root.iter_elements()
        if accessibility[id(element)]
    ]


def annotate_accessibility(root, spec: AccessSpec) -> int:
    """Write each element's accessibility into its ``accessibility``
    attribute (``"1"`` / ``"0"``), as required by the naive baseline
    of Section 6.  Returns the number of accessible elements."""
    accessibility = compute_accessibility(root, spec)
    accessible_count = 0
    for element in root.iter_elements():
        flag = accessibility[id(element)]
        element.set(ACCESSIBILITY_ATTRIBUTE, "1" if flag else "0")
        if flag:
            accessible_count += 1
    return accessible_count


def strip_accessibility(root) -> None:
    """Remove naive-baseline annotations again (useful between bench
    configurations sharing one document)."""
    for element in root.iter_elements():
        element.attributes.pop(ACCESSIBILITY_ATTRIBUTE, None)
