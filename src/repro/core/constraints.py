"""DTD structural constraints for qualifier evaluation (Section 5.1).

Three families of constraints are read off a production ``A -> alpha``
(Example 5.1):

* **co-existence**: if ``alpha`` is a concatenation, all its children
  exist together — ``[b and c]`` is *true* at ``a -> (b, c)``;
* **exclusive**: if ``alpha`` is a disjunction, exactly one child
  exists — ``[b and c]`` is *false* at ``a -> (b | c)``;
* **non-existence**: a child label absent from ``alpha`` cannot exist —
  ``[c]`` is *false* at ``b -> (d)``.

``evaluate_qualifier_bool`` is the paper's ``bool([q], A)``: a
three-valued (True/False/None) static evaluation of a qualifier at a
DTD node.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.dtd.content import Choice, Epsilon, Name, Seq, Star, Str
from repro.dtd.dtd import DTD
from repro.core.image import reach_types
from repro.xpath.ast import (
    Absolute,
    Descendant,
    Empty,
    EpsilonPath,
    Label,
    Parent,
    Path,
    QAnd,
    QAttr,
    QAttrEquals,
    QBool,
    QEquals,
    QNot,
    QOr,
    QPath,
    Qualified,
    Qualifier,
    Slash,
    TextStep,
    Union,
    Wildcard,
)


def evaluate_qualifier_bool(
    dtd: DTD, qualifier: Qualifier, node: str
) -> Optional[bool]:
    """``bool([q], A)``: True/False when the DTD decides the qualifier
    at every ``A`` element, None when undetermined."""
    if isinstance(qualifier, QBool):
        return qualifier.value
    if isinstance(qualifier, QPath):
        return path_exists_bool(dtd, qualifier.path, node)
    if isinstance(qualifier, QEquals):
        # values are data-dependent; only a structural False is decidable
        if path_exists_bool(dtd, qualifier.path, node) is False:
            return False
        return None
    if isinstance(qualifier, QAttr):
        return _attribute_test_bool(dtd, qualifier.path, qualifier.name, node)
    if isinstance(qualifier, QAttrEquals):
        exists = _attribute_test_bool(
            dtd, qualifier.path, qualifier.name, node
        )
        if exists is False:
            return False
        value = qualifier.value
        if isinstance(value, str):
            targets = reach_types(dtd, qualifier.path, node)
            decided = []
            for target in targets:
                declaration = (
                    dtd.attribute_decl(target, qualifier.name)
                    if dtd.has_type(target)
                    else None
                )
                decided.append(
                    declaration is not None and not declaration.allows(value)
                )
            if targets and all(decided):
                return False  # no target's declaration admits the value
        return None
    if isinstance(qualifier, QAnd):
        left = evaluate_qualifier_bool(dtd, qualifier.left, node)
        right = evaluate_qualifier_bool(dtd, qualifier.right, node)
        if left is False or right is False:
            return False
        if exclusive_conflict(dtd, qualifier.left, qualifier.right, node):
            return False
        if left is True and right is True:
            return True
        return None
    if isinstance(qualifier, QOr):
        left = evaluate_qualifier_bool(dtd, qualifier.left, node)
        right = evaluate_qualifier_bool(dtd, qualifier.right, node)
        if left is True or right is True:
            return True
        if left is False and right is False:
            return False
        return None
    if isinstance(qualifier, QNot):
        inner = evaluate_qualifier_bool(dtd, qualifier.inner, node)
        if inner is None:
            return None
        return not inner
    raise TypeError("unknown qualifier node %r" % qualifier)


def _attribute_test_bool(dtd, path, name, node) -> Optional[bool]:
    """Three-valued ``[p/@name]`` at ``node``: combines the path's
    existence with per-target attribute declarations."""
    from repro.xpath.ast import EpsilonPath as _Eps

    if isinstance(path, _Eps):
        return attribute_exists_bool(dtd, node, name)
    targets = reach_types(dtd, path, node)
    if not targets:
        return False
    per_target = [
        attribute_exists_bool(dtd, target, name)
        for target in targets
        if target != "#text"
    ]
    if per_target and all(result is False for result in per_target):
        return False
    path_sure = path_exists_bool(dtd, path, node)
    if path_sure is True and per_target and all(
        result is True for result in per_target
    ):
        return True
    return None


def attribute_exists_bool(dtd: DTD, node: str, name: str) -> Optional[bool]:
    """Three-valued ``[@name]`` at ``node`` elements using ATTLIST
    declarations: a ``#REQUIRED`` attribute always exists; an
    undeclared one never does (on elements that declare attributes at
    all — undeclared elements are lax, see the validator)."""
    if node == "#text" or not dtd.has_type(node):
        return False
    if not dtd.has_attribute_declarations(node):
        return None
    declaration = dtd.attribute_decl(node, name)
    if declaration is None:
        return False
    if declaration.required:
        return True
    return None


def path_exists_bool(dtd: DTD, path: Path, node: str) -> Optional[bool]:
    """Three-valued ``[p]`` at ``A`` elements: does ``p`` surely select
    something (True), surely nothing (False), or is it data-dependent
    (None)?"""
    if isinstance(path, Empty):
        return False
    if isinstance(path, EpsilonPath):
        return True
    if node == "#text" or not dtd.has_type(node):
        return False
    content = dtd.production(node)
    if isinstance(path, Label):
        if not dtd.is_child(node, path.name):
            return False  # non-existence constraint
        if isinstance(content, Name):
            return True
        if isinstance(content, Seq) and content.is_normal_form():
            return True  # co-existence: every concatenation child exists
        if isinstance(content, Choice) and len(content.items) == 1:
            return True
        return None  # choice or star position: data-dependent
    if isinstance(path, Wildcard):
        # the paper's case (7)
        if isinstance(content, (Epsilon, Str)):
            return False
        if isinstance(content, (Name, Seq, Choice)):
            return True
        return None  # star
    if isinstance(path, TextStep):
        if not isinstance(content, Str):
            return False
        return None  # PCDATA may be empty
    if isinstance(path, Slash):
        targets = reach_types(dtd, path.left, node)
        if not targets:
            return False
        tails = [path_exists_bool(dtd, path.right, t) for t in targets]
        head = path_exists_bool(dtd, path.left, node)
        if head is True and all(tail is True for tail in tails):
            return True
        if all(tail is False for tail in tails):
            return False
        return None
    if isinstance(path, Descendant):
        origins = dtd.reachable(node)
        results = [path_exists_bool(dtd, path.inner, o) for o in origins]
        if path_exists_bool(dtd, path.inner, node) is True:
            return True  # descendant-or-self includes the context
        if all(result is False for result in results):
            return False
        return None
    if isinstance(path, Union):
        results = [
            path_exists_bool(dtd, branch, node) for branch in path.branches
        ]
        if any(result is True for result in results):
            return True
        if all(result is False for result in results):
            return False
        return None
    if isinstance(path, Qualified):
        base = path_exists_bool(dtd, path.path, node)
        if base is False:
            return False
        targets = reach_types(dtd, path.path, node)
        if not targets:
            return False
        quals = [
            evaluate_qualifier_bool(dtd, path.qualifier, t) for t in targets
        ]
        if all(q is False for q in quals):
            return False
        if base is True and all(q is True for q in quals):
            return True
        return None
    if isinstance(path, Parent):
        parents = dtd.parents_of(node)
        if node != dtd.root:
            return True  # every non-root element has a parent
        return False if not parents else None
    if isinstance(path, Absolute):
        return None  # absolute sub-paths inside qualifiers: give up
    raise TypeError("unknown path node %r" % path)


def exclusive_conflict(
    dtd: DTD, left: Qualifier, right: Qualifier, node: str
) -> bool:
    """The exclusive constraint: at a disjunction production, two
    qualifiers that each *require* a child from disjoint label sets
    cannot both hold (the element has exactly one child)."""
    if node == "#text" or not dtd.has_type(node):
        return False
    content = dtd.production(node)
    if not (isinstance(content, Choice) and content.is_normal_form()):
        return False
    left_required = required_first_labels(left)
    right_required = required_first_labels(right)
    if left_required is None or right_required is None:
        return False
    if not left_required or not right_required:
        return False
    return not (left_required & right_required)


def required_first_labels(qualifier: Qualifier) -> Optional[Set[str]]:
    """The set ``S`` such that the qualifier requires at least one
    child whose label is in ``S`` — or None when no such definite set
    exists (e.g. with ``//`` or ``*`` first steps)."""
    if isinstance(qualifier, QPath):
        return _first_labels(qualifier.path)
    if isinstance(qualifier, QEquals):
        return _first_labels(qualifier.path)
    if isinstance(qualifier, QAnd):
        left = required_first_labels(qualifier.left)
        right = required_first_labels(qualifier.right)
        # either conjunct's requirement suffices; prefer the tighter one
        if left is not None and right is not None:
            return left if len(left) <= len(right) else right
        return left if left is not None else right
    if isinstance(qualifier, QOr):
        left = required_first_labels(qualifier.left)
        right = required_first_labels(qualifier.right)
        if left is None or right is None:
            return None
        return left | right
    return None


def _first_labels(path: Path) -> Optional[Set[str]]:
    if isinstance(path, Label):
        return {path.name}
    if isinstance(path, Slash):
        return _first_labels(path.left)
    if isinstance(path, Qualified):
        return _first_labels(path.path)
    if isinstance(path, Union):
        labels: Set[str] = set()
        for branch in path.branches:
            branch_labels = _first_labels(branch)
            if branch_labels is None:
                return None
            labels |= branch_labels
        return labels
    return None
