"""Algorithm ``derive`` (Fig. 5): security-view derivation.

Given an access specification ``S = (D, ann)``, build a security view
``V = (Dv, sigma)`` that is sound and complete w.r.t. ``S`` whenever
such a view exists (Theorem 3.2).  The construction walks the document
DTD top-down with two mutually recursive procedures:

* ``Proc_Acc(A)`` — for accessible types: emits a view production for
  ``A`` and sigma annotations for its children;
* ``Proc_InAcc(A)`` — for inaccessible types: computes ``reg(A)``, a
  regular expression over the *closest accessible descendants* of
  ``A``, together with the XPath path to each of them.

Inaccessible types are hidden by (a) *pruning* them when they have no
accessible descendants, (b) *short-cutting* them when their ``reg``
fits the surrounding production shape, or (c) renaming them to fresh
``dummyN`` labels that keep the DTD structure while hiding the real
label (Example 3.2's dummy1/dummy2).

Deviations from the printed figure, as recorded in DESIGN.md:

* step 18 of ``Proc_InAcc`` writes into ``path`` rather than ``sigma``
  (the printed ``sigma(A, X) := B_i`` is a typo — ``A`` is
  inaccessible, so it has no sigma edges);
* duplicate labels produced by short-cutting are compacted into a
  starred occurrence with a union annotation, following Example 3.4
  ("a more compact form of this production is
  ``dept -> patientInfo*, staffInfo``");
* a removed *choice* branch (an inaccessible alternative with no
  accessible descendants) is, by default, replaced by an empty dummy
  instead of dropped, which preserves soundness for documents that use
  that alternative; pass ``preserve_choice_branches=False`` for the
  figure's literal behaviour (a warning is recorded).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ViewDerivationError
from repro.dtd.content import (
    Choice,
    ContentModel,
    EPSILON as EPSILON_CONTENT,
    Epsilon,
    Name,
    STR as STR_CONTENT,
    Seq,
    Star,
    Str,
)
from repro.core.spec import ANN_N, ANN_Y, AccessSpec, CondAnnotation, STR_CHILD
from repro.core.view import SecurityView, ViewNode
from repro.xpath.ast import (
    EPSILON as EPSILON_PATH,
    Label,
    Path,
    TEXT,
    qualified,
    slash,
    union,
)

# ---------------------------------------------------------------------------
# Internal representation of reg(A): regular expressions over "slots".
# A slot pairs a view-node key with the XPath path (relative to the
# inaccessible context element) extracting the corresponding nodes.
# ---------------------------------------------------------------------------


class _Slot:
    __slots__ = ("target", "path", "starred")

    def __init__(self, target: str, path: Path, starred: bool = False):
        self.target = target
        self.path = path
        self.starred = starred

    def prefixed(self, prefix: Path) -> "_Slot":
        return _Slot(self.target, slash(prefix, self.path), self.starred)

    def __repr__(self):
        star = "*" if self.starred else ""
        return "Slot(%s%s <- %s)" % (self.target, star, self.path)


class _REps:
    """reg(A) is empty: nothing accessible below A."""

    def __repr__(self):
        return "REps"


class _RSeq:
    __slots__ = ("items",)

    def __init__(self, items: List[_Slot]):
        self.items = items

    def __repr__(self):
        return "RSeq(%r)" % (self.items,)


class _RChoice:
    __slots__ = ("items",)

    def __init__(self, items: List[_Slot]):
        self.items = items

    def __repr__(self):
        return "RChoice(%r)" % (self.items,)


class _RStar:
    __slots__ = ("item",)

    def __init__(self, item: _Slot):
        self.item = item

    def __repr__(self):
        return "RStar(%r)" % (self.item,)


class _RecursiveRef:
    """Marker returned when Proc_InAcc re-enters a type that is still
    being processed (a cycle through inaccessible types)."""

    __slots__ = ("type_name",)

    def __init__(self, type_name: str):
        self.type_name = type_name


_REPS = _REps()


def _single_slot(reg) -> Optional[_Slot]:
    """The single non-starred slot of a 1-ary reg, if that is reg's shape."""
    if isinstance(reg, (_RSeq, _RChoice)) and len(reg.items) == 1:
        only = reg.items[0]
        if not only.starred:
            return only
    return None


class _Deriver:
    def __init__(self, spec: AccessSpec, preserve_choice_branches: bool):
        self.spec = spec
        self.dtd = spec.dtd
        self.preserve_choice_branches = preserve_choice_branches
        self.view = SecurityView(self.dtd, root_key=self.dtd.root)
        self.acc_done: set = set()
        self.inacc_memo: Dict[str, object] = {}
        self.inacc_in_progress: set = set()
        self.recursive_dummy: Dict[str, str] = {}
        self.empty_dummy_key: Optional[str] = None
        self._dummy_counter = 0

    # -- helpers ---------------------------------------------------------------

    def run(self) -> SecurityView:
        if not self.dtd.is_normal_form():
            raise ViewDerivationError(
                "the document DTD must be in the paper's normal form; "
                "apply repro.dtd.normalize_dtd first"
            )
        self.proc_acc(self.dtd.root)
        # attribute-level access control: record hidden attributes per
        # real (non-dummy) view node
        for key, node in self.view.nodes.items():
            if node.is_dummy:
                continue
            hidden = self.spec.hidden_attributes(node.label)
            if hidden:
                self.view.hidden_attributes[key] = hidden
        return self.view

    def new_dummy_key(self) -> str:
        while True:
            self._dummy_counter += 1
            candidate = "dummy%d" % self._dummy_counter
            if not self.dtd.has_type(candidate) and not self.view.has_node(
                candidate
            ):
                return candidate

    def effective_annotation(self, parent: str, child: str, parent_accessible: bool):
        explicit = self.spec.ann(parent, child)
        if explicit is not None:
            return explicit
        return ANN_Y if parent_accessible else ANN_N

    def warn(self, message: str) -> None:
        self.view.warnings.append(message)

    # -- Proc_Acc ------------------------------------------------------------------

    def proc_acc(self, type_name: str) -> None:
        """Emit the view production for an accessible element type."""
        if type_name in self.acc_done:
            return
        self.acc_done.add(type_name)
        content = self.dtd.production(type_name)
        kind = self.dtd.production_kind(type_name)

        if kind == "str":
            if self.spec.ann(type_name, STR_CHILD) is ANN_N:
                # case (4) of Fig. 5: hidden text -> empty production
                node_content: ContentModel = EPSILON_CONTENT
            else:
                node_content = STR_CONTENT
                self.view.sigma_text[type_name] = TEXT
            self.view.add_node(ViewNode(type_name, type_name, node_content))
            return

        if kind == "epsilon":
            self.view.add_node(
                ViewNode(type_name, type_name, EPSILON_CONTENT)
            )
            return

        if kind == "seq":
            child_names = (
                [content.name]
                if isinstance(content, Name)
                else [item.name for item in content.items]
            )
            slots = self._process_seq_children(type_name, child_names)
            self._register_seq(type_name, slots)
            return

        if kind == "choice":
            child_names = [item.name for item in content.items]
            slots = self._process_choice_children(type_name, child_names)
            self._register_choice(type_name, slots)
            return

        if kind == "star":
            child_name = content.item.name
            slot = self._process_star_child(type_name, child_name)
            if slot is None:
                self.view.add_node(
                    ViewNode(type_name, type_name, EPSILON_CONTENT)
                )
            else:
                self.view.add_node(
                    ViewNode(type_name, type_name, Star(Name(slot.target)))
                )
                self.view.set_sigma(type_name, slot.target, slot.path)
            return

        raise ViewDerivationError(
            "unsupported production kind %r for %r" % (kind, type_name)
        )

    # -- children processing (shared by Proc_Acc / Proc_InAcc) -----------------------

    def _process_seq_children(
        self, parent: str, child_names: List[str]
    ) -> List[_Slot]:
        """Slots of a concatenation production (cases 1/6-20 of Fig. 5)."""
        slots: List[_Slot] = []
        parent_accessible = True  # caller context decides; see _inacc_seq
        for child in child_names:
            slots.extend(
                self._child_slots(
                    parent, child, parent_accessible, container="seq"
                )
            )
        return slots

    def _process_choice_children(
        self, parent: str, child_names: List[str]
    ) -> List[_Slot]:
        slots: List[_Slot] = []
        for child in child_names:
            slots.extend(
                self._child_slots(parent, child, True, container="choice")
            )
        return slots

    def _process_star_child(self, parent: str, child: str) -> Optional[_Slot]:
        return self._star_slot(parent, child, True)

    def _child_slots(
        self,
        parent: str,
        child: str,
        parent_accessible: bool,
        container: str,
    ) -> List[_Slot]:
        """Slots contributed by one child edge in a seq/choice
        production.  Implements prune / short-cut / dummy."""
        annotation = self.effective_annotation(parent, child, parent_accessible)
        if annotation is ANN_Y:
            self.proc_acc(child)
            return [_Slot(child, Label(child))]
        if isinstance(annotation, CondAnnotation):
            if container in ("seq", "choice"):
                self.warn(
                    "conditional annotation ann(%s, %s) under a %s "
                    "production: materialization may abort when the "
                    "qualifier fails (Theorem 3.2)"
                    % (parent, child, container)
                )
            self.proc_acc(child)
            return [
                _Slot(child, qualified(Label(child), annotation.qualifier))
            ]
        # inaccessible child
        reg = self.proc_inacc(child)
        prefix = Label(child)
        if isinstance(reg, _REps):
            if container == "choice":
                return self._pruned_choice_branch(parent, child, prefix)
            return []  # step 11: remove from the production
        if isinstance(reg, _RecursiveRef):
            dummy = self._dummy_for_recursion(reg.type_name)
            return [_Slot(dummy, prefix)]
        if isinstance(reg, _RSeq) and container == "seq":
            # short-cut: splice the concatenation into the parent
            # (steps 12-15; a 1-ary concatenation splices too)
            return [slot.prefixed(prefix) for slot in reg.items]
        if isinstance(reg, _RChoice) and container == "choice":
            # case (2): splice a disjunction into a disjunction
            return [slot.prefixed(prefix) for slot in reg.items]
        # shape mismatch (e.g. a concatenation under a disjunction, as
        # with trial/regular in Example 3.4): hide behind a dummy label
        # (steps 16-20)
        dummy = self._make_dummy(reg, preferred_for=child)
        return [_Slot(dummy, prefix)]

    def _star_slot(
        self, parent: str, child: str, parent_accessible: bool
    ) -> Optional[_Slot]:
        """The single slot of a star production ``A -> B*`` (case 3)."""
        annotation = self.effective_annotation(parent, child, parent_accessible)
        if annotation is ANN_Y:
            self.proc_acc(child)
            return _Slot(child, Label(child))
        if isinstance(annotation, CondAnnotation):
            # safe under a star: failing qualifiers just yield fewer children
            self.proc_acc(child)
            return _Slot(child, qualified(Label(child), annotation.qualifier))
        reg = self.proc_inacc(child)
        prefix = Label(child)
        if isinstance(reg, _REps):
            return None
        if isinstance(reg, _RecursiveRef):
            return _Slot(self._dummy_for_recursion(reg.type_name), prefix)
        single = _single_slot(reg)
        if single is not None:
            # case (3): reg(B) = C — each hidden B holds one C => view C*
            return single.prefixed(prefix)
        if isinstance(reg, _RStar):
            # case (3): reg(B) = C* — view C* with path B/path
            return reg.item.prefixed(prefix)
        dummy = self._make_dummy(reg, preferred_for=child)
        return _Slot(dummy, prefix)

    def _pruned_choice_branch(
        self, parent: str, child: str, prefix: Path
    ) -> List[_Slot]:
        if not self.preserve_choice_branches:
            self.warn(
                "choice branch %s of %s removed (no accessible "
                "descendants): documents using that alternative will "
                "fail materialization" % (child, parent)
            )
            return []
        return [_Slot(self._empty_dummy(), prefix)]

    # -- Proc_InAcc -----------------------------------------------------------------

    def proc_inacc(self, type_name: str):
        """Compute ``reg(type_name)`` for an inaccessible type.  Slot
        paths are relative to an element of this type (the step into
        the type itself is added by the caller)."""
        if type_name in self.inacc_memo:
            return self.inacc_memo[type_name]
        if type_name in self.inacc_in_progress:
            return _RecursiveRef(type_name)
        self.inacc_in_progress.add(type_name)
        try:
            reg = self._compute_reg(type_name)
        finally:
            self.inacc_in_progress.discard(type_name)
        self.inacc_memo[type_name] = reg
        # If recursion forced a dummy for this type, give it a production.
        dummy_key = self.recursive_dummy.get(type_name)
        if dummy_key is not None and not self.view.has_node(dummy_key):
            self._register_dummy_node(dummy_key, reg)
        return reg

    def _compute_reg(self, type_name: str):
        content = self.dtd.production(type_name)
        kind = self.dtd.production_kind(type_name)
        if kind in ("str", "epsilon"):
            return _REPS
        if kind == "seq":
            child_names = (
                [content.name]
                if isinstance(content, Name)
                else [item.name for item in content.items]
            )
            slots: List[_Slot] = []
            for child in child_names:
                slots.extend(
                    self._child_slots(type_name, child, False, container="seq")
                )
            return self._pack_seq(slots)
        if kind == "choice":
            child_names = [item.name for item in content.items]
            slots = []
            for child in child_names:
                slots.extend(
                    self._child_slots(
                        type_name, child, False, container="choice"
                    )
                )
            return self._pack_choice(slots)
        if kind == "star":
            child_name = content.item.name
            slot = self._star_slot(type_name, child_name, False)
            if slot is None:
                return _REPS
            return _RStar(_Slot(slot.target, slot.path))
        raise ViewDerivationError(
            "unsupported production kind %r for %r" % (kind, type_name)
        )

    @staticmethod
    def _pack_seq(slots: List[_Slot]):
        # Shape is preserved even for a single item: Example 3.4 treats
        # reg(trial) = bill as a (1-ary) concatenation, which does NOT
        # splice into a disjunction.
        if not slots:
            return _REPS
        return _RSeq(slots)

    @staticmethod
    def _pack_choice(slots: List[_Slot]):
        if not slots:
            return _REPS
        return _RChoice(slots)

    # -- dummy management ---------------------------------------------------------------

    def _dummy_for_recursion(self, type_name: str) -> str:
        key = self.recursive_dummy.get(type_name)
        if key is None:
            key = self.new_dummy_key()
            self.recursive_dummy[type_name] = key
        return key

    def _empty_dummy(self) -> str:
        if self.empty_dummy_key is None:
            self.empty_dummy_key = self.new_dummy_key()
            self.view.add_node(
                ViewNode(
                    self.empty_dummy_key,
                    self.empty_dummy_key,
                    EPSILON_CONTENT,
                    is_dummy=True,
                )
            )
        return self.empty_dummy_key

    def _make_dummy(self, reg, preferred_for: Optional[str] = None) -> str:
        """Create a dummy view node whose production realizes ``reg``."""
        if preferred_for is not None:
            existing = self.recursive_dummy.get(preferred_for)
            if existing is not None:
                return existing
        key = self.new_dummy_key()
        self._register_dummy_node(key, reg)
        return key

    def _register_dummy_node(self, key: str, reg) -> None:
        if isinstance(reg, _REps):
            self.view.add_node(
                ViewNode(key, key, EPSILON_CONTENT, is_dummy=True)
            )
            return
        if isinstance(reg, _RecursiveRef):
            inner = self._dummy_for_recursion(reg.type_name)
            self.view.add_node(ViewNode(key, key, Name(inner), is_dummy=True))
            self.view.set_sigma(key, inner, EPSILON_PATH)
            return
        if isinstance(reg, _RSeq):
            self._register_slots(key, reg.items, Seq, is_dummy=True)
            return
        if isinstance(reg, _RChoice):
            self._register_slots(key, reg.items, Choice, is_dummy=True)
            return
        if isinstance(reg, _RStar):
            self.view.add_node(
                ViewNode(key, key, Star(Name(reg.item.target)), is_dummy=True)
            )
            self.view.set_sigma(key, reg.item.target, reg.item.path)
            return
        raise ViewDerivationError("cannot realize reg %r" % (reg,))

    # -- production registration with compaction -------------------------------------------

    def _register_seq(self, key: str, slots: List[_Slot]) -> None:
        if not slots:
            self.view.add_node(ViewNode(key, key, EPSILON_CONTENT))
            return
        self._register_slots(key, slots, Seq, is_dummy=False)

    def _register_choice(self, key: str, slots: List[_Slot]) -> None:
        if not slots:
            self.view.add_node(ViewNode(key, key, EPSILON_CONTENT))
            return
        self._register_slots(key, slots, Choice, is_dummy=False)

    def _register_slots(self, key: str, slots, combinator, is_dummy: bool):
        """Compact duplicate targets (Example 3.4) and emit the
        production plus sigma edges."""
        merged: List[_Slot] = []
        position: Dict[str, int] = {}
        for slot in slots:
            index = position.get(slot.target)
            if index is None:
                position[slot.target] = len(merged)
                merged.append(
                    _Slot(slot.target, slot.path, starred=slot.starred)
                )
            else:
                kept = merged[index]
                starred = True if combinator is Seq else kept.starred
                merged[index] = _Slot(
                    kept.target,
                    union([kept.path, slot.path]),
                    starred=starred or slot.starred,
                )
        if len(merged) == 1:
            only = merged[0]
            content: ContentModel = (
                Star(Name(only.target)) if only.starred else Name(only.target)
            )
        else:
            atoms = [
                Star(Name(slot.target)) if slot.starred else Name(slot.target)
                for slot in merged
            ]
            content = combinator(atoms)
        self.view.add_node(ViewNode(key, key, content, is_dummy=is_dummy))
        for slot in merged:
            self.view.set_sigma(key, slot.target, slot.path)


def derive(
    spec: AccessSpec, preserve_choice_branches: bool = True
) -> SecurityView:
    """Derive a sound and complete security view from an access
    specification (Algorithm ``derive``, Fig. 5).

    ``preserve_choice_branches`` controls the handling of fully
    inaccessible choice alternatives; see the module docstring.
    """
    return _Deriver(spec, preserve_choice_branches).run()


#: Facade alias: the public name makes the artifact explicit
#: (``derive_view(spec)`` returns a :class:`SecurityView`).
derive_view = derive
