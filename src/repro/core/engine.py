"""End-to-end secure query engine (the framework of Fig. 3).

``SecureQueryEngine`` ties the pieces together the way the paper's
architecture diagram does:

1. a security administrator registers access specifications (one per
   user class) against the document DTD;
2. each specification is compiled into a security view by Algorithm
   ``derive``; the *exposed* view DTD is available to the user class,
   while sigma and the document DTD stay hidden;
3. a user query over the view is rewritten (Algorithm ``rewrite``,
   after unfolding if the view is recursive) and optionally optimized
   (Algorithm ``optimize``) into a query over the document;
4. the rewritten query is evaluated on the document; results are
   *projected through the view* (dummy relabeling, hidden descendants
   removed) before being returned.

The security view is never materialized; projection only copies the
actual result subtrees.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union as TypingUnion

from repro.errors import QueryRejectedError, SecurityError
from repro.dtd.dtd import DTD
from repro.core.derive import derive
from repro.core.materialize import materialize_subtree
from repro.core.optimize import Optimizer
from repro.core.rewrite import Rewriter
from repro.core.spec import AccessSpec
from repro.core.unfold import unfold_view
from repro.core.view import SecurityView
from repro.xpath.ast import Absolute, Label, Path
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.parser import parse_xpath


class QueryReport:
    """What happened to one query: the rewritten and optimized forms
    plus evaluation statistics (for benchmarking and ``explain``)."""

    __slots__ = (
        "policy",
        "original",
        "rewritten",
        "optimized",
        "result_count",
        "visits",
    )

    def __init__(self, policy, original, rewritten, optimized, result_count, visits):
        self.policy = policy
        self.original = original
        self.rewritten = rewritten
        self.optimized = optimized
        self.result_count = result_count
        self.visits = visits

    def __repr__(self):
        return (
            "QueryReport(policy=%r, original=%s, rewritten=%s, "
            "optimized=%s, results=%d, visits=%d)"
            % (
                self.policy,
                self.original,
                self.rewritten,
                self.optimized,
                self.result_count,
                self.visits,
            )
        )


class _Policy:
    __slots__ = ("name", "spec", "view", "rewriters", "materialized")

    def __init__(self, name: str, spec: AccessSpec, view: SecurityView):
        self.name = name
        self.spec = spec
        self.view = view
        self.rewriters: Dict[Optional[int], Rewriter] = {}
        # id(document) -> (document, materialized view tree); the
        # strong document reference keeps the id stable
        self.materialized: Dict[int, tuple] = {}


class SecureQueryEngine:
    """Multi-policy secure query answering over one document DTD."""

    def __init__(self, dtd: DTD, strict: bool = False):
        self.dtd = dtd
        self.strict = strict
        self._policies: Dict[str, _Policy] = {}
        self._optimizer = Optimizer(dtd)
        # id(document) -> (document, DocumentIndex); shared by policies
        self._indexes: Dict[int, tuple] = {}

    # -- administration (security-officer side) ---------------------------

    def register_policy(
        self,
        name: str,
        spec: AccessSpec,
        preserve_choice_branches: bool = True,
        **parameters: str,
    ) -> SecurityView:
        """Register a user class: derive (and cache) its security view.
        ``parameters`` bind the spec's ``$parameters`` (Example 3.1's
        ``$wardNo``)."""
        if name in self._policies:
            raise SecurityError("policy %r is already registered" % name)
        if spec.dtd is not self.dtd and spec.dtd != self.dtd:
            raise SecurityError(
                "policy %r is specified against a different DTD" % name
            )
        concrete = spec.bind(**parameters) if parameters else spec
        if concrete.parameters():
            raise SecurityError(
                "policy %r has unbound parameters: %s"
                % (name, ", ".join(sorted(concrete.parameters())))
            )
        view = derive(
            concrete, preserve_choice_branches=preserve_choice_branches
        )
        self._policies[name] = _Policy(name, concrete, view)
        return view

    def drop_policy(self, name: str) -> None:
        self._policies.pop(name, None)

    def policies(self) -> List[str]:
        return sorted(self._policies)

    # -- user-visible surface ----------------------------------------------------

    def view_dtd(self, policy: str) -> DTD:
        """The exposed view DTD — everything a user of this policy may
        know about the document structure."""
        return self._policy(policy).view.exposed_dtd()

    def view_dtd_text(self, policy: str) -> str:
        return self.view_dtd(policy).to_dtd_text()

    # -- querying -------------------------------------------------------------------

    def rewrite_query(
        self,
        policy: str,
        query: TypingUnion[str, Path],
        document=None,
    ) -> Path:
        """Rewrite a view query into a document query (no evaluation).
        A document (or height bound) is only needed for recursive
        views (Section 4.2)."""
        entry = self._policy(policy)
        parsed = self._parse(entry, query)
        return self._rewriter(entry, document).rewrite(parsed)

    def query(
        self,
        policy: str,
        query: TypingUnion[str, Path],
        document,
        optimize: bool = True,
        project: bool = True,
        strategy: str = "rewrite",
        use_index: bool = False,
    ) -> List:
        """Answer a view query on ``document``.

        With ``project=True`` (default) the results are view-projected
        copies — exactly the elements a materialized view would hold.
        With ``project=False`` the raw document nodes are returned
        (useful for benchmarking; callers must not expose raw dummy
        origins to users, since their labels and hidden children are
        confidential).

        ``strategy`` selects the enforcement mechanism:

        * ``"rewrite"`` (default, the paper's approach) — the view
          stays virtual; the query is rewritten over the document;
        * ``"materialized"`` — the view tree is materialized (cached
          per document until :meth:`invalidate`) and the query runs
          directly on it.  Useful for hot, read-only documents; the
          benchmark suite quantifies the trade-off.

        ``use_index=True`` builds (and caches until :meth:`invalidate`)
        a :class:`~repro.xmlmodel.index.DocumentIndex` so rewritten
        queries with residual ``//`` steps evaluate via binary search.
        """
        if strategy == "materialized":
            return self._query_materialized(policy, query, document)
        if strategy != "rewrite":
            raise SecurityError(
                "unknown strategy %r (use 'rewrite' or 'materialized')"
                % strategy
            )
        report_nodes, _ = self._execute(
            policy, query, document, optimize, project, use_index
        )
        return report_nodes

    def invalidate(self, policy: Optional[str] = None) -> None:
        """Drop cached materialized views and document indexes (call
        after document updates).  Without ``policy``, caches of all
        policies clear."""
        names = [policy] if policy is not None else list(self._policies)
        for name in names:
            self._policy(name).materialized.clear()
        self._indexes.clear()

    def _index_for(self, document):
        from repro.xmlmodel.index import DocumentIndex

        cached = self._indexes.get(id(document))
        if cached is not None and cached[0] is document:
            return cached[1]
        index = DocumentIndex(document)
        self._indexes[id(document)] = (document, index)
        return index

    def _query_materialized(self, policy, query, document) -> List:
        from repro.core.materialize import materialize

        entry = self._policy(policy)
        parsed = self._parse(entry, query)
        cached = entry.materialized.get(id(document))
        if cached is None or cached[0] is not document:
            view_tree = materialize(document, entry.view, entry.spec)
            entry.materialized[id(document)] = (document, view_tree)
        else:
            view_tree = cached[1]
        evaluator = XPathEvaluator()
        results = []
        for node in evaluator.evaluate(parsed, view_tree, ordered=True):
            results.append(node.value if node.is_text else node)
        return results

    def explain(
        self,
        policy: str,
        query: TypingUnion[str, Path],
        document,
        optimize: bool = True,
    ) -> QueryReport:
        """Like :meth:`query` but returns the rewriting pipeline's
        stages and evaluation statistics."""
        _, report = self._execute(policy, query, document, optimize, True)
        return report

    # -- internals -----------------------------------------------------------------------

    def _policy(self, name: str) -> _Policy:
        try:
            return self._policies[name]
        except KeyError:
            raise SecurityError("unknown policy %r" % name) from None

    def _parse(self, entry: _Policy, query: TypingUnion[str, Path]) -> Path:
        parsed = parse_xpath(query) if isinstance(query, str) else query
        if self.strict:
            self._check_labels(entry, parsed)
        return parsed

    def _check_labels(self, entry: _Policy, query: Path) -> None:
        labels = entry.view.labels()
        for node in query.iter_nodes():
            if isinstance(node, Label) and node.name not in labels:
                raise QueryRejectedError(
                    "label %r is not part of the %r view DTD"
                    % (node.name, entry.name)
                )

    def _rewriter(self, entry: _Policy, document) -> Rewriter:
        if not entry.view.is_recursive():
            rewriter = entry.rewriters.get(None)
            if rewriter is None:
                rewriter = Rewriter(entry.view)
                entry.rewriters[None] = rewriter
            return rewriter
        if document is None:
            raise SecurityError(
                "policy %r has a recursive view DTD; rewriting needs the "
                "document (its height bounds the unfolding, Section 4.2)"
                % entry.name
            )
        height = document if isinstance(document, int) else document.height()
        rewriter = entry.rewriters.get(height)
        if rewriter is None:
            rewriter = Rewriter(unfold_view(entry.view, height))
            entry.rewriters[height] = rewriter
        return rewriter

    def _execute(self, policy, query, document, optimize, project, use_index=False):
        entry = self._policy(policy)
        parsed = self._parse(entry, query)
        rewriter = self._rewriter(entry, document)
        rewritten = rewriter.rewrite(parsed)
        optimized = (
            self._optimizer.optimize(rewritten) if optimize else rewritten
        )
        evaluator = XPathEvaluator(
            index=self._index_for(document) if use_index else None
        )
        if project:
            results = self._evaluate_projected(
                entry, rewriter, parsed, optimized, document, evaluator
            )
        else:
            results = evaluator.evaluate(optimized, document, ordered=True)
        report = QueryReport(
            policy,
            parsed,
            rewritten,
            optimized,
            len(results),
            evaluator.visits,
        )
        return results, report

    def _evaluate_projected(
        self, entry, rewriter, parsed, optimized, document, evaluator
    ):
        """Evaluate per target view node so each raw result can be
        projected through the view (dummies relabeled, hidden
        descendants removed)."""
        if isinstance(parsed, Absolute):
            per_target = rewriter._rw(parsed.inner, "#document")
            wrap_absolute = True
        else:
            per_target = rewriter._rw(parsed, rewriter.view.root_key)
            wrap_absolute = False
        projected = []
        seen = set()
        for target, path in sorted(per_target.items()):
            if target.startswith("#text"):
                raw = evaluator.evaluate(
                    Absolute(path) if wrap_absolute else path, document
                )
                for node in raw:
                    if id(node) not in seen:
                        seen.add(id(node))
                        projected.append(node.value)
                continue
            document_path = Absolute(path) if wrap_absolute else path
            optimized_path = self._optimizer.optimize(document_path)
            raw = evaluator.evaluate(optimized_path, document, ordered=True)
            for node in raw:
                if id(node) in seen:
                    continue
                seen.add(id(node))
                projected.append(
                    materialize_subtree(
                        document, rewriter.view, entry.spec, target, node
                    )
                )
        del optimized
        return projected
