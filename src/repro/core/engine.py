"""End-to-end secure query engine (the framework of Fig. 3).

``SecureQueryEngine`` ties the pieces together the way the paper's
architecture diagram does:

1. a security administrator registers access specifications (one per
   user class) against the document DTD;
2. each specification is compiled into a security view by Algorithm
   ``derive``; the *exposed* view DTD is available to the user class,
   while sigma and the document DTD stay hidden;
3. a user query over the view is rewritten (Algorithm ``rewrite``,
   after unfolding if the view is recursive) and optionally optimized
   (Algorithm ``optimize``) into a query over the document;
4. the rewritten query is evaluated on the document; results are
   *projected through the view* (dummy relabeling, hidden descendants
   removed) before being returned.

The security view is never materialized; projection only copies the
actual result subtrees.

Serving-path amortization: because steps 3's outputs depend only on
``(policy, query text, optimize flag)`` — not on the document — the
engine keeps a bounded LRU :class:`~repro.core.plancache.PlanCache`
of compiled queries (parsed/rewritten/optimized ASTs plus executable
:mod:`~repro.xpath.plan` operator trees), so repeated queries skip
straight to evaluation.  Execution knobs are grouped in
:class:`~repro.core.options.ExecutionOptions` (the 1.x per-call
boolean keywords were removed in 2.0; see ``docs/api.md``).

Thread safety: one engine may serve queries from many threads
concurrently (see ``docs/serving.md``).  Every expensive per-key
artifact — compiled plans, NodeTables, DocumentIndexes, materialized
view trees, unfolded rewriters — is *immutable after build* and built
under a single per-key lock, so concurrent first requests for the
same artifact serialize on its build while requests for other keys
proceed; once built, readers share the structure without locking.
Administrative mutation (``register_policy``, ``drop_policy``,
``invalidate``) takes the engine's admin lock; queries in flight keep
the (still-consistent) structures they already hold.
"""

from __future__ import annotations

from threading import Lock, RLock
from typing import Dict, List, Optional, Sequence, Union as TypingUnion

from repro.errors import (
    QueryRejectedError,
    ReproError,
    SecurityError,
    error_code,
)
from repro.obs.canary import SecurityCanary
from repro.obs.events import (
    DegradationEvent,
    DenialEvent,
    ErrorEvent,
    EventPipeline,
    EventSink,
    PolicyEvent,
    QueryEvent,
)
from repro.obs.export import prometheus_text
from repro.obs.metrics import metrics_enabled, metrics_registry, record
from repro.obs.profile import ExplainProfile, ProfileCollector, ProfileNode
from repro.obs.trace import Tracer
from repro.dtd.dtd import DTD
from repro.core.derive import derive
from repro.core.materialize import materialize, materialize_subtree
from repro.core.optimize import Optimizer
from repro.core.options import (
    DEFAULT_OPTIONS,
    STRATEGY_COLUMNAR,
    STRATEGY_MATERIALIZED,
    STRATEGY_VIRTUAL,
    ExecutionOptions,
)
from repro.core.plancache import CompiledQuery, PlanCache, PlanCacheStats
from repro.core.rewrite import Rewriter
from repro.core.spec import AccessSpec
from repro.robustness.degrade import DegradationPolicy
from repro.robustness.faults import trip as fault_trip
from repro.core.unfold import unfold_view
from repro.core.view import SecurityView
from repro.xpath.ast import Absolute, Label, Path
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.fingerprint import query_fingerprint
from repro.xpath.parser import parse_xpath
from repro.xpath.plan import PlanRuntime, compile_path


class _KeyedLocks:
    """One build lock per cache key.  Concurrent first requests for
    the same expensive artifact (a NodeTable, a DocumentIndex, a
    materialized view tree, an unfolded rewriter) serialize on their
    key's lock and build once; requests for different keys build in
    parallel.  Lock objects are tiny and keys are bounded by the
    engine's own caches, so entries are only pruned on
    :meth:`SecureQueryEngine.invalidate`."""

    __slots__ = ("_locks", "_guard")

    def __init__(self):
        self._locks: Dict[tuple, Lock] = {}
        self._guard = Lock()

    def __call__(self, key: tuple) -> Lock:
        lock = self._locks.get(key)
        if lock is None:
            with self._guard:
                lock = self._locks.setdefault(key, Lock())
        return lock

    def clear(self) -> None:
        with self._guard:
            self._locks.clear()


class QueryReport:
    """What happened to one query: the rewriting pipeline's stages,
    evaluation statistics, cache status, per-stage timings (derived
    from the engine's trace spans), the end-to-end wall time of the
    enclosing query span, and — when the query ran with
    ``ExecutionOptions(trace=True)`` — the per-operator
    :class:`~repro.obs.profile.ExplainProfile`."""

    __slots__ = (
        "policy",
        "original",
        "rewritten",
        "optimized",
        "result_count",
        "visits",
        "strategy",
        "cache_hit",
        "timings",
        "total_seconds",
        "profile",
        "fingerprint",
    )

    def __init__(
        self,
        policy,
        original,
        rewritten,
        optimized,
        result_count,
        visits,
        strategy: str = STRATEGY_VIRTUAL,
        cache_hit: bool = False,
        timings: Optional[Dict[str, float]] = None,
        total_seconds: Optional[float] = None,
        profile: Optional[ExplainProfile] = None,
        fingerprint=None,
    ):
        self.policy = policy
        self.original = original
        self.rewritten = rewritten
        self.optimized = optimized
        self.result_count = result_count
        self.visits = visits
        self.strategy = strategy
        self.cache_hit = cache_hit
        self.timings = dict(timings) if timings else {}
        self.total_seconds = total_seconds
        self.profile = profile
        self.fingerprint = fingerprint

    def total_time(self) -> float:
        """End-to-end wall seconds of the query (the enclosing query
        span).  Stage entries may overlap — e.g. a warm cache hit
        carries the entry's build-time parse/rewrite/optimize stages
        alongside this request's evaluate — so the sum of
        ``timings`` is only a fallback for reports built without a
        span (``total_seconds is None``)."""
        if self.total_seconds is not None:
            return self.total_seconds
        return sum(self.timings.values())

    def _timings_text(self) -> str:
        if not self.timings:
            return "-"
        return " | ".join(
            "%s %.3fms" % (stage, seconds * 1e3)
            for stage, seconds in self.timings.items()
        )

    def summary(self) -> str:
        """Self-contained multi-line rendering (the ``--explain``
        output of the CLI)."""
        lines = [
            "policy   : %s" % self.policy,
            "query    : %s" % self.original,
            "rewritten: %s" % self.rewritten,
            "optimized: %s" % self.optimized,
            "strategy : %s (plan cache %s)"
            % (self.strategy, "hit" if self.cache_hit else "miss"),
            "results  : %d  (node visits: %d)"
            % (self.result_count, self.visits),
            "timings  : %s" % self._timings_text(),
        ]
        if self.total_seconds is not None:
            lines.append("total    : %.3fms" % (self.total_seconds * 1e3))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-safe export (the CLI's ``--json`` payload; the profile
        tree is included when the query was traced)."""
        out: dict = {
            "policy": self.policy,
            "query": str(self.original),
            "rewritten": str(self.rewritten),
            "optimized": str(self.optimized),
            "result_count": self.result_count,
            "visits": self.visits,
            "strategy": self.strategy,
            "cache_hit": self.cache_hit,
            "fingerprint": str(self.fingerprint) if self.fingerprint else "",
            "timings": dict(self.timings),
            "total_seconds": (
                self.total_seconds
                if self.total_seconds is not None
                else self.total_time()
            ),
        }
        if self.profile is not None:
            out["profile"] = self.profile.to_dict()
        return out

    def __repr__(self):
        return (
            "QueryReport(policy=%r, original=%s, rewritten=%s, "
            "optimized=%s, results=%d, visits=%d, strategy=%r, "
            "cache_hit=%r, timings={%s})"
            % (
                self.policy,
                self.original,
                self.rewritten,
                self.optimized,
                self.result_count,
                self.visits,
                self.strategy,
                self.cache_hit,
                self._timings_text(),
            )
        )


class QueryResult(List):
    """The answer to one query: a list of result nodes (or strings for
    ``text()`` results) plus the :class:`QueryReport` describing how
    they were produced.

    ``QueryResult`` subclasses :class:`list`, so every pre-1.1 call
    site (iteration, indexing, ``== []`` comparisons) keeps working;
    new code reads ``result.report`` for cache status and timings."""

    __slots__ = ("report",)

    def __init__(self, results, report: QueryReport):
        super().__init__(results)
        self.report = report

    @property
    def results(self) -> List:
        """The result nodes as a plain list."""
        return list(self)


class _Policy:
    __slots__ = ("name", "spec", "view", "rewriters", "materialized")

    def __init__(self, name: str, spec: AccessSpec, view: SecurityView):
        self.name = name
        self.spec = spec
        self.view = view
        self.rewriters: Dict[Optional[int], Rewriter] = {}
        # id(document) -> (document, materialized view tree); the
        # strong document reference keeps the id stable
        self.materialized: Dict[int, tuple] = {}


class SecureQueryEngine:
    """Multi-policy secure query answering over one document DTD."""

    def __init__(
        self,
        dtd: DTD,
        strict: bool = False,
        plan_cache_size: int = 256,
        events: Optional[EventPipeline] = None,
        degradation: Optional[DegradationPolicy] = None,
        breakers=None,
    ):
        self.dtd = dtd
        self.strict = strict
        # which accelerator seams may fail soft (see docs/robustness.md);
        # the default serves degraded rather than failing the query
        self._degradation = (
            degradation if degradation is not None else DegradationPolicy()
        )
        # circuit breakers over the degradation seams: a seam that
        # fails repeatedly is short-circuited straight to its fallback
        # (no per-request re-probe) until a seeded-jitter exponential
        # backoff elapses, then one half-open probe re-closes or
        # re-opens it.  Pass breakers=False to disable.
        if breakers is None:
            from repro.serving.resilience import BreakerBoard

            breakers = BreakerBoard()
        self.breakers = breakers or None
        self._policies: Dict[str, _Policy] = {}
        self._optimizer = Optimizer(dtd)
        self._plan_cache = PlanCache(plan_cache_size)
        # id(document) -> (document, DocumentIndex); shared by policies
        self._indexes: Dict[int, tuple] = {}
        # id(document) -> (document, NodeTable); the columnar twin of
        # _indexes — registered side by side so both invalidate together
        self._stores: Dict[int, tuple] = {}
        # audit-event fan-out; inert (one attribute check per emit
        # site) until a sink is attached
        self._events = events if events is not None else EventPipeline()
        self._canary: Optional[SecurityCanary] = None
        # workload heavy-hitter profiler; None (one attribute check on
        # the hot path) until enable_workload_profiler attaches one
        self._workload = None
        # concurrency: administrative mutation holds _admin_lock;
        # per-key artifact builds hold their _build_locks entry (see
        # the module docstring and docs/serving.md)
        self._admin_lock = RLock()
        self._build_locks = _KeyedLocks()

    # -- administration (security-officer side) ---------------------------

    def register_policy(
        self,
        name: str,
        spec: AccessSpec,
        preserve_choice_branches: bool = True,
        **parameters: str,
    ) -> SecurityView:
        """Register a user class: derive (and cache) its security view.
        ``parameters`` bind the spec's ``$parameters`` (Example 3.1's
        ``$wardNo``)."""
        if name in self._policies:
            raise SecurityError("policy %r is already registered" % name)
        if spec.dtd is not self.dtd and spec.dtd != self.dtd:
            raise SecurityError(
                "policy %r is specified against a different DTD" % name
            )
        concrete = spec.bind(**parameters) if parameters else spec
        if concrete.parameters():
            raise SecurityError(
                "policy %r has unbound parameters: %s"
                % (name, ", ".join(sorted(concrete.parameters())))
            )
        view = derive(
            concrete, preserve_choice_branches=preserve_choice_branches
        )
        with self._admin_lock:
            if name in self._policies:  # raced with another register
                raise SecurityError(
                    "policy %r is already registered" % name
                )
            self._policies[name] = _Policy(name, concrete, view)
            # a re-registered name (after drop_policy) must not serve
            # plans compiled against the old specification
            self._plan_cache.invalidate(name)
        self._emit(PolicyEvent, "register", name)
        return view

    def drop_policy(self, name: str) -> None:
        with self._admin_lock:
            existed = self._policies.pop(name, None) is not None
            self._plan_cache.invalidate(name)
        if existed:
            self._emit(PolicyEvent, "drop", name)

    def policies(self) -> List[str]:
        return sorted(self._policies)

    # -- user-visible surface ----------------------------------------------------

    def view_dtd(self, policy: str) -> DTD:
        """The exposed view DTD — everything a user of this policy may
        know about the document structure."""
        return self._policy(policy).view.exposed_dtd()

    def view_dtd_text(self, policy: str) -> str:
        return self.view_dtd(policy).to_dtd_text()

    # -- querying -------------------------------------------------------------------

    def rewrite_query(
        self,
        policy: str,
        query: TypingUnion[str, Path],
        document=None,
        use_cache: bool = True,
    ) -> Path:
        """Rewrite a view query into a document query (no evaluation).
        A document (or height bound) is only needed for recursive
        views (Section 4.2).  With ``use_cache`` (default) the result
        is served from — and primes — the engine's plan cache."""
        entry = self._policy(policy)
        if use_cache:
            compiled, _ = self._compiled(
                entry, query, document, optimize=False
            )
            return compiled.rewritten
        parsed = self._parse(entry, query)
        return self._rewriter(entry, document).rewrite(parsed)

    def query(
        self,
        policy: str,
        query: TypingUnion[str, Path],
        document,
        options: Optional[ExecutionOptions] = None,
    ) -> QueryResult:
        """Answer a view query on ``document``.

        Execution knobs (strategy, optimizer, projection, index, plan
        cache) are grouped in ``options``, an
        :class:`~repro.core.options.ExecutionOptions`:

        * ``strategy="virtual"`` (default, the paper's approach) — the
          view stays virtual; the query is rewritten over the document;
        * ``strategy="columnar"`` — same rewriting pipeline, but plans
          execute set-at-a-time over a cached columnar
          :class:`~repro.xmlmodel.store.NodeTable` (built per document,
          dropped by :meth:`invalidate`); fastest on descendant-heavy
          queries, identical answers to ``"virtual"``;
        * ``strategy="materialized"`` — the view tree is materialized
          (cached per document until :meth:`invalidate`) and the query
          runs directly on it.

        Returns a :class:`QueryResult` — a list of results (view
        projected copies by default; see ``options.project``) whose
        ``report`` attribute carries the rewriting stages, cache
        status, and per-stage timings.

        The 1.x per-call boolean keywords (``optimize=``, ``project=``,
        ``strategy=``, ...) were removed in 2.0; pass
        ``options=ExecutionOptions(...)`` (see ``docs/api.md``).
        """
        options = self._resolve_options(options)
        return self._query_one(policy, query, document, options, None)

    def query_batch(
        self,
        policy: str,
        queries: Sequence[TypingUnion[str, Path]],
        document,
        options: Optional[ExecutionOptions] = None,
    ) -> List[QueryResult]:
        """Answer several view queries on *one* document, sharing work
        across the batch.

        Answers (and reports, and raised errors) are identical to
        ``[engine.query(policy, q, document, options) for q in
        queries]`` — the batch is an optimization, not a semantic
        change.  Under ``strategy="columnar"`` the batch shares one
        postings scan cache: plans that reach the same label with the
        same row frontier (the common ``//a`` prefix case) reuse the
        first plan's scan instead of re-slicing the posting lists (see
        :class:`~repro.xpath.plan.PlanRuntime`).  The serving layer
        uses this to coalesce same-document requests
        (:class:`~repro.serving.server.QueryServer`)."""
        options = self._resolve_options(options)
        scan_cache = (
            {} if options.strategy == STRATEGY_COLUMNAR else None
        )
        record("batch.calls")
        record("batch.queries", len(queries))
        return [
            self._query_one(policy, query, document, options, scan_cache)
            for query in queries
        ]

    def execute_request(
        self,
        request,
        document,
        scan_cache: Optional[dict] = None,
        tracer: Optional[Tracer] = None,
    ):
        """Answer one frozen :class:`~repro.serving.protocol.QueryRequest`
        against the (caller-resolved) ``document``, returning a
        :class:`~repro.serving.protocol.QueryResponse`.

        Unlike :meth:`query`, library errors do not propagate: any
        :class:`~repro.errors.ReproError` becomes an error response
        carrying the stable code — the wire contract of the serving
        layer.  ``scan_cache`` lets a caller thread one batch scan
        cache through several calls (see :meth:`execute_batch`); a
        caller-supplied ``tracer`` (the serving layer's per-request
        one) collects the engine's stage spans under the caller's
        open span instead of a private tracer."""
        from repro.serving.protocol import QueryResponse

        options = self._resolve_options(request.options)
        try:
            result = self._query_one(
                request.policy,
                request.query,
                document,
                options,
                scan_cache,
                tracer=tracer,
                trace_id=request.trace_id or "",
                tenant=request.tenant_id,
            )
        except ReproError as error:
            return QueryResponse.from_error(request, error)
        return QueryResponse.from_result(request, result)

    def execute_batch(self, requests: Sequence, document) -> List:
        """Answer several :class:`~repro.serving.protocol.QueryRequest`
        values against one document — :meth:`execute_request` for each,
        sharing a single batch scan cache (requests of *different*
        policies still share scans: a postings slice depends only on
        the store, the label, and the frontier)."""
        shared: dict = {}
        return [
            self.execute_request(request, document, scan_cache=shared)
            for request in requests
        ]

    def _query_one(
        self,
        policy: str,
        query: TypingUnion[str, Path],
        document,
        options: ExecutionOptions,
        scan_cache: Optional[dict],
        tracer: Optional[Tracer] = None,
        trace_id: str = "",
        tenant: Optional[str] = None,
    ) -> QueryResult:
        """The shared core of :meth:`query` / :meth:`query_batch` /
        :meth:`execute_request`: execute, audit, post-process.
        ``trace_id`` (the serving layer's, empty for direct calls)
        stamps the audit events this query emits; ``tenant`` attributes
        the query in the workload profiler (defaults to the policy
        name, matching the serving layer's tenant fallback)."""
        try:
            if options.strategy == STRATEGY_MATERIALIZED:
                results, report = self._query_materialized(
                    policy, query, document, options, tracer=tracer,
                    trace_id=trace_id,
                )
            else:
                results, report = self._execute(
                    policy,
                    query,
                    document,
                    options,
                    scan_cache=scan_cache,
                    tracer=tracer,
                    trace_id=trace_id,
                )
        except ReproError as error:
            # denials already produced a DenialEvent in _check_labels;
            # everything else gets an ErrorEvent with its stable code
            if not isinstance(error, QueryRejectedError):
                self._emit(
                    ErrorEvent,
                    policy,
                    query if isinstance(query, str) else str(query),
                    error.code,
                    str(error),
                    trace_id,
                )
            profiler = self._workload
            if profiler is not None:
                try:
                    profiler.record_error(
                        tenant or policy,
                        policy,
                        query_fingerprint(query),
                        denied=isinstance(error, QueryRejectedError),
                    )
                except Exception:
                    record("workload.failures")
            raise
        profiler = self._workload
        if profiler is not None:
            try:
                profiler.record_query(
                    tenant or policy,
                    policy,
                    report.fingerprint or query_fingerprint(query),
                    report.total_time(),
                    visits=report.visits,
                    result_count=report.result_count,
                    cache_hit=report.cache_hit,
                )
            except Exception:
                record("workload.failures")
        if (
            tracer is not None
            and tracer.roots
            and report.fingerprint is not None
        ):
            # stamp the request's root span so flight-recorder traces
            # carry the query shape (see TraceRecord.from_span)
            tracer.roots[0].set(fingerprint=str(report.fingerprint))
        self._post_query(
            policy, document, results, report, options, tracer, trace_id
        )
        return QueryResult(results, report)

    def explain(
        self,
        policy: str,
        query: TypingUnion[str, Path],
        document,
        options: Optional[ExecutionOptions] = None,
    ) -> QueryReport:
        """Like :meth:`query` but returns only the
        :class:`QueryReport`: the rewriting pipeline's stages, cache
        status, per-stage timings, and evaluation statistics."""
        options = self._resolve_options(options)
        if options.strategy == STRATEGY_MATERIALIZED:
            _, report = self._query_materialized(
                policy, query, document, options
            )
            return report
        _, report = self._execute(policy, query, document, options)
        return report

    def invalidate(self, policy: Optional[str] = None) -> None:
        """Drop cached materialized views, document indexes, and
        compiled query plans (call after document or policy updates).
        Without ``policy``, caches of all policies clear.

        Safe to call with queries in flight: in-flight executions keep
        the (internally consistent) structures they already hold and
        answer from them; only *new* lookups rebuild."""
        with self._admin_lock:
            names = [policy] if policy is not None else list(self._policies)
            for name in names:
                self._policy(name).materialized.clear()
            self._indexes.clear()
            self._stores.clear()
            self._plan_cache.invalidate(policy)
            self._build_locks.clear()
        self._emit(PolicyEvent, "invalidate", policy if policy else "*")

    # -- observability -----------------------------------------------------------

    @property
    def plan_cache(self) -> PlanCache:
        """The engine's compiled-query cache (inspection/tuning)."""
        return self._plan_cache

    def plan_cache_stats(self) -> PlanCacheStats:
        """Hit/miss/eviction/invalidation counters of the plan cache."""
        return self._plan_cache.stats()

    def metrics(self) -> dict:
        """A snapshot of the process-wide metrics registry (plan-cache
        traffic, NodeTable/index builds, stage latencies, result
        cardinalities).  Recording is off by default — call
        :func:`repro.obs.enable_metrics` first; see
        ``docs/observability.md``."""
        return metrics_registry().snapshot()

    def export_prometheus(self) -> str:
        """The process-wide metrics registry in Prometheus text
        exposition format (serve it from a ``/metrics`` HTTP handler;
        see ``docs/audit.md`` for a scrape example)."""
        return prometheus_text(metrics_registry())

    # -- workload intelligence / cache introspection -----------------------------

    @property
    def workload(self):
        """The attached
        :class:`~repro.obs.workload.WorkloadProfiler` (``None`` when
        profiling is off — the hot-path cost of "off" is one attribute
        check per query)."""
        return self._workload

    def enable_workload_profiler(
        self, capacity: int = 64, profiler=None
    ):
        """Attach a workload profiler (per-tenant query-shape heavy
        hitters; see ``docs/observability.md``).  Pass an existing
        ``profiler`` to share one sketch across several engines — the
        serving layer does this so a catalog of engines aggregates
        into one report."""
        if profiler is None:
            from repro.obs.workload import WorkloadProfiler

            profiler = WorkloadProfiler(capacity=capacity)
        self._workload = profiler
        return profiler

    def disable_workload_profiler(self) -> None:
        """Detach the profiler (its accumulated data stays readable by
        whoever still holds a reference)."""
        self._workload = None

    def workload_report(
        self, tenant: Optional[str] = None, n: Optional[int] = None
    ) -> dict:
        """The profiler's JSON-safe heavy-hitter report (top-``n``
        query shapes per tenant).  Empty when profiling is off."""
        if self._workload is None:
            return {"capacity": 0, "tenants": {}}
        return self._workload.report(tenant=tenant, n=n)

    def introspect(self) -> dict:
        """One JSON-safe report of what this engine's caches hold and
        cost: plan cache (entries, bytes, hit/eviction counters),
        columnar NodeTables, DocumentIndexes, and materialized view
        trees, each with entry counts and byte estimates (see
        :mod:`repro.obs.introspect`)."""
        from repro.obs.introspect import engine_report

        return engine_report(self)

    # -- audit events / canary ---------------------------------------------------

    @property
    def events(self) -> EventPipeline:
        """The engine's audit-event pipeline.  Inert until a sink is
        attached; see :mod:`repro.obs.events` and ``docs/audit.md``."""
        return self._events

    def add_sink(self, sink: EventSink) -> EventSink:
        """Attach an audit-event sink (returns it, for one-liners)."""
        return self._events.add_sink(sink)

    def remove_sink(self, sink: EventSink) -> None:
        self._events.remove_sink(sink)

    @property
    def canary(self) -> Optional[SecurityCanary]:
        """The active security canary, if any."""
        return self._canary

    def enable_canary(
        self, sample_rate: float = 1.0, seed: Optional[int] = None
    ) -> SecurityCanary:
        """Re-check a ``sample_rate`` fraction of answered queries
        against the materialized-view oracle, emitting a
        :class:`~repro.obs.events.CanaryEvent` per check (see
        :mod:`repro.obs.canary`).  The oracle costs O(document) per
        sampled query — keep the rate small in production."""
        self._canary = SecurityCanary(sample_rate, seed=seed)
        return self._canary

    def disable_canary(self) -> None:
        self._canary = None

    def _emit(self, factory, *arguments) -> None:
        """Build and emit an audit event — but only when a sink is
        listening, so the inactive cost is one attribute check."""
        if self._events.active:
            self._events.emit(factory(*arguments))

    def _post_query(
        self,
        policy,
        document,
        results,
        report,
        options: ExecutionOptions,
        tracer: Optional[Tracer] = None,
        trace_id: str = "",
    ) -> None:
        """Serving-path epilogue: sampled canary check, then the audit
        QueryEvent.  Both are guarded so they can never fail a query
        that has already been answered correctly."""
        canary = self._canary
        if (
            canary is not None
            and options.project
            and document is not None
            and canary.should_sample()
        ):
            self._run_canary(policy, document, results, report, tracer)
        if not self._events.active:
            return
        latency = report.total_time()
        slow = (
            options.slow_query_threshold is not None
            and latency >= options.slow_query_threshold
        )
        profile_text = None
        if slow:
            profile_text = (
                report.profile.render()
                if report.profile is not None
                else report.summary()
            )
        self._events.emit(
            QueryEvent(
                policy=policy,
                query=str(report.original),
                rewritten=str(report.optimized),
                strategy=report.strategy,
                cache_hit=report.cache_hit,
                result_count=report.result_count,
                visits=report.visits,
                latency_seconds=latency,
                slow=slow,
                profile=profile_text,
                fingerprint=(
                    str(report.fingerprint) if report.fingerprint else ""
                ),
                trace_id=trace_id,
            )
        )

    def _run_canary(
        self, policy, document, results, report, tracer=None
    ) -> None:
        """One sampled oracle comparison (see
        :class:`~repro.obs.canary.SecurityCanary`).  Guarded: a canary
        failure is recorded, never raised — the user already has their
        answer."""
        try:
            entry = self._policy(policy)
            event = self._canary.check(
                policy,
                report.original,
                results,
                view_tree=self._materialized_view(entry, document),
            )
            record("canary.checks")
            if event.violations:
                record("canary.violations", event.violations)
                if tracer is not None and tracer.roots:
                    # flag the request's root span so the flight
                    # recorder tail-retains this trace
                    tracer.roots[0].set(canary_violations=event.violations)
            if self._events.active:
                self._events.emit(event)
        except Exception:
            record("canary.failures")

    def _materialized_view(self, entry: _Policy, document):
        """The (cached) materialized view of ``document`` under
        ``entry`` — the oracle the canary and the materialized
        strategy share."""
        cached = entry.materialized.get(id(document))
        if cached is not None and cached[0] is document:
            return cached[1]
        with self._build_locks(("mat", entry.name, id(document))):
            cached = entry.materialized.get(id(document))
            if cached is not None and cached[0] is document:
                return cached[1]
            view_tree = materialize(document, entry.view, entry.spec)
            entry.materialized[id(document)] = (document, view_tree)
        return view_tree

    def _record_query_metrics(self, report: QueryReport) -> None:
        """Fold one report into the process-wide registry (guarded:
        free unless metrics are enabled).  Compile-pipeline stages are
        recorded only on cache misses — a warm report carries the
        entry's build-time stage entries, which did not run for this
        request."""
        if not metrics_enabled():
            return
        registry = metrics_registry()
        registry.increment("query.count")
        registry.increment("query.count.%s" % report.strategy)
        registry.observe("query.total_seconds", report.total_time())
        registry.observe("query.result_count", report.result_count)
        registry.observe("query.visits", report.visits)
        for stage, seconds in report.timings.items():
            if report.cache_hit and stage != "evaluate":
                continue
            registry.observe("stage.%s_seconds" % stage, seconds)

    # -- internals -----------------------------------------------------------------------

    @staticmethod
    def _resolve_options(
        options: Optional[ExecutionOptions],
    ) -> ExecutionOptions:
        if options is None:
            return DEFAULT_OPTIONS
        if not isinstance(options, ExecutionOptions):
            raise TypeError(
                "options must be an ExecutionOptions (the 1.x per-call "
                "boolean keywords were removed in 2.0 — see the "
                "migration note in docs/api.md), got %r" % (options,)
            )
        return options

    def _policy(self, name: str) -> _Policy:
        try:
            return self._policies[name]
        except KeyError:
            raise SecurityError("unknown policy %r" % name) from None

    def _parse(
        self,
        entry: _Policy,
        query: TypingUnion[str, Path],
        trace_id: str = "",
    ) -> Path:
        parsed = parse_xpath(query) if isinstance(query, str) else query
        if self.strict:
            self._check_labels(entry, parsed, trace_id)
        return parsed

    def _check_labels(
        self, entry: _Policy, query: Path, trace_id: str = ""
    ) -> None:
        labels = entry.view.labels()
        for node in query.iter_nodes():
            if isinstance(node, Label) and node.name not in labels:
                error = QueryRejectedError(
                    "label %r is not part of the %r view DTD"
                    % (node.name, entry.name)
                )
                self._emit(
                    DenialEvent,
                    entry.name,
                    str(query),
                    node.name,
                    error.code,
                    str(error),
                    trace_id,
                )
                record("query.denials")
                raise error

    def _rewriter(self, entry: _Policy, document) -> Rewriter:
        if not entry.view.is_recursive():
            height = None
        else:
            height = self._unfold_height(entry, document)
        rewriter = entry.rewriters.get(height)
        if rewriter is None:
            # double-checked: concurrent first rewrites of one policy
            # (expensive for recursive views — a full unfolding) build
            # once and share the immutable Rewriter
            with self._build_locks(("rewriter", entry.name, height)):
                rewriter = entry.rewriters.get(height)
                if rewriter is None:
                    rewriter = Rewriter(
                        entry.view
                        if height is None
                        else unfold_view(entry.view, height)
                    )
                    entry.rewriters[height] = rewriter
        return rewriter

    def _unfold_height(self, entry: _Policy, document) -> int:
        if document is None:
            raise SecurityError(
                "policy %r has a recursive view DTD; rewriting needs the "
                "document (its height bounds the unfolding, Section 4.2)"
                % entry.name
            )
        return document if isinstance(document, int) else document.height()

    def _index_for(self, document, policy: str = ""):
        """The (cached) :class:`DocumentIndex` of ``document`` — or
        ``None`` when the build fails and the degradation policy allows
        the ``index.build`` seam to fall back to subtree scans."""
        from repro.xmlmodel.index import DocumentIndex

        cached = self._indexes.get(id(document))
        if cached is not None and cached[0] is document:
            return cached[1]
        with self._build_locks(("index", id(document))):
            cached = self._indexes.get(id(document))
            if cached is not None and cached[0] is document:
                return cached[1]
            if self._seam_open("index.build"):
                return None
            try:
                fault_trip("index.build")
                index = DocumentIndex(document)
            except Exception as error:
                self._seam_failed("index.build")
                if self._degrade("index.build", policy, error):
                    return None
                raise
            self._seam_ok("index.build")
            self._indexes[id(document)] = (document, index)
        return index

    def _store_for(self, document, policy: str = ""):
        """The (cached) columnar :class:`NodeTable` of ``document`` —
        or ``None`` when the build fails and the degradation policy
        allows the ``store.build`` seam to fall back to the object
        backend (``PlanRuntime(store=None)`` runs tree walks)."""
        from repro.xmlmodel.store import NodeTable

        cached = self._stores.get(id(document))
        if cached is not None and cached[0] is document:
            return cached[1]
        with self._build_locks(("store", id(document))):
            cached = self._stores.get(id(document))
            if cached is not None and cached[0] is document:
                return cached[1]
            if self._seam_open("store.build"):
                return None
            try:
                fault_trip("store.build")
                store = NodeTable(document)
            except Exception as error:
                self._seam_failed("store.build")
                if self._degrade("store.build", policy, error):
                    return None
                raise
            self._seam_ok("store.build")
            self._stores[id(document)] = (document, store)
        return store

    # -- graceful degradation / resource governance --------------------------

    def _seam_open(self, seam: str) -> bool:
        """Whether ``seam``'s circuit breaker says to skip the attempt
        and take the fallback straight away — only ever ``True`` when
        the degradation policy allows the seam to fail soft (a strict
        engine must see the raise, not a silent fallback).  A ``True``
        here is the breaker refusing a probe; ``False`` either means
        the breaker is closed or that this call *is* the half-open
        probe."""
        breakers = self.breakers
        if breakers is None or not self._degradation.allows(seam):
            return False
        if breakers.allow(seam):
            return False
        record("resilience.breaker.shorted", labels={"seam": seam})
        return True

    def _seam_failed(self, seam: str) -> None:
        if self.breakers is not None:
            self.breakers.failure(seam)

    def _seam_ok(self, seam: str) -> None:
        if self.breakers is not None:
            self.breakers.success(seam)

    def _degrade(self, seam: str, policy: str, error: Exception) -> bool:
        """Whether a failure at ``seam`` may be absorbed: when the
        engine's :class:`~repro.robustness.DegradationPolicy` allows
        it, account for it (metrics + a
        :class:`~repro.obs.events.DegradationEvent`) and return True so
        the caller answers on the fallback path; otherwise return False
        and the caller re-raises."""
        if not self._degradation.allows(seam):
            return False
        record("governor.degradations")
        record("degradation.%s" % seam)
        self._emit(
            DegradationEvent,
            policy,
            seam,
            self._degradation.fallback(seam),
            error_code(error),
            str(error),
        )
        return True

    @staticmethod
    def _budget_for(options: ExecutionOptions):
        """A fresh per-query budget from ``options.limits`` (``None``
        when the query runs ungoverned — the common case, costing one
        attribute check per enforcement site)."""
        limits = options.limits
        if limits is None or limits.unlimited:
            return None
        return limits.budget()

    # -- plan compilation --------------------------------------------------------

    def _compiled(
        self,
        entry: _Policy,
        query,
        document,
        optimize: bool,
        strategy: str = STRATEGY_VIRTUAL,
        use_index: bool = False,
        use_cache: bool = True,
        tracer: Optional[Tracer] = None,
        trace_id: str = "",
    ):
        """The cached compilation of ``query`` under ``entry``'s
        policy: ``(CompiledQuery, cache_hit)``.  The key carries the
        execution shape (``strategy``, ``use_index``) so a warm cache
        never serves a plan entry primed for a different backend.
        With ``use_cache=False`` the cache is neither consulted nor
        primed (compilation still runs, once per call).  Stage spans
        open on ``tracer`` (a private one if the caller has none); the
        measured durations feed the entry's ``timings``."""
        query_text = query if isinstance(query, str) else str(query)
        height = (
            self._unfold_height(entry, document)
            if entry.view.is_recursive()
            else None
        )
        key = (entry.name, query_text, optimize, height, strategy, use_index)
        if use_cache:
            if self._seam_open("plan_cache.get"):
                cached = None  # breaker open: skip the lookup outright
            else:
                try:
                    fault_trip("plan_cache.get")
                    cached = self._plan_cache.get(key)
                except Exception as error:
                    self._seam_failed("plan_cache.get")
                    if not self._degrade("plan_cache.get", entry.name, error):
                        raise
                    cached = None  # degraded: treat as a miss, compile fresh
                else:
                    self._seam_ok("plan_cache.get")
            if cached is not None:
                return cached, True
        if tracer is None:
            tracer = Tracer()
        timings: Dict[str, float] = {}
        with tracer.span("parse") as span:
            parsed = self._parse(entry, query, trace_id)
        timings["parse"] = span.duration
        rewriter = self._rewriter(entry, document)
        with tracer.span("rewrite") as span:
            rewritten = rewriter.rewrite(parsed)
        timings["rewrite"] = span.duration
        if optimize:
            with tracer.span("optimize") as span:
                optimized = self._optimizer.optimize(rewritten)
            timings["optimize"] = span.duration
        else:
            optimized = rewritten
        compiled = CompiledQuery(
            entry.name,
            query_text,
            optimize,
            height,
            parsed,
            rewritten,
            optimized,
            rewriter.view,
            timings,
            strategy=strategy,
            use_index=use_index,
        )
        # computed once per compilation (from the already-parsed AST)
        # and carried by the cache entry, so warm requests pay a field
        # read, never a re-parse or re-mask
        compiled.fingerprint = query_fingerprint(parsed)
        if use_cache and not self._seam_open("plan_cache.put"):
            try:
                fault_trip("plan_cache.put")
                self._plan_cache.put(key, compiled)
            except Exception as error:
                self._seam_failed("plan_cache.put")
                if not self._degrade("plan_cache.put", entry.name, error):
                    raise
                # degraded: this compilation just goes uncached
            else:
                self._seam_ok("plan_cache.put")
        return compiled, False

    def _whole_query_plan(
        self, compiled: CompiledQuery, tracer: Optional[Tracer] = None
    ):
        if compiled.plan is None:
            # double-checked on the entry's build lock: concurrent
            # first executions of a shared cache entry compile once,
            # then every reader shares the immutable plan
            with compiled.build_lock:
                if compiled.plan is None:
                    if tracer is None:
                        tracer = Tracer()
                    with tracer.span("compile") as span:
                        plan = compile_path(compiled.optimized)
                    compiled.timings["compile"] = (
                        compiled.timings.get("compile", 0.0) + span.duration
                    )
                    compiled.plan = plan
        return compiled.plan

    def _projected_plans(
        self,
        entry: _Policy,
        compiled: CompiledQuery,
        tracer: Optional[Tracer] = None,
    ):
        """Per-view-target plans for projected evaluation, mirroring
        the uncached :meth:`_evaluate_projected` exactly: text targets
        run the raw rewritten path; element targets run the optimized
        one."""
        if compiled.projected is not None:
            return compiled.projected
        with compiled.build_lock:
            if compiled.projected is not None:
                return compiled.projected
            if tracer is None:
                tracer = Tracer()
            with tracer.span("compile") as span:
                rewriter = entry.rewriters.get(compiled.height)
                if rewriter is None:  # entry resurrected after drop
                    rewriter = self._rewriter(entry, compiled.height)
                parsed = compiled.parsed
                if isinstance(parsed, Absolute):
                    per_target = rewriter._rw(parsed.inner, "#document")
                    wrap_absolute = True
                else:
                    per_target = rewriter._rw(parsed, rewriter.view.root_key)
                    wrap_absolute = False
                plans = []
                for target, path in sorted(per_target.items()):
                    document_path = Absolute(path) if wrap_absolute else path
                    if target.startswith("#text"):
                        plans.append(
                            (target, True, compile_path(document_path))
                        )
                    else:
                        optimized_path = self._optimizer.optimize(
                            document_path
                        )
                        plans.append(
                            (target, False, compile_path(optimized_path))
                        )
            compiled.timings["compile"] = (
                compiled.timings.get("compile", 0.0) + span.duration
            )
            compiled.projected = tuple(plans)
        return compiled.projected

    # -- execution ---------------------------------------------------------------

    def _execute(
        self,
        policy,
        query,
        document,
        options: ExecutionOptions,
        scan_cache: Optional[dict] = None,
        tracer: Optional[Tracer] = None,
        trace_id: str = "",
    ):
        if not options.use_cache and options.strategy == STRATEGY_VIRTUAL:
            # the pre-plan-cache interpreter pipeline, kept verbatim as
            # the benchmarking baseline; columnar runs have no
            # interpreter equivalent, so they stay on the plan path
            # below (with the cache bypassed).
            return self._execute_uncached(
                policy, query, document, options, tracer=tracer,
                trace_id=trace_id,
            )
        entry = self._policy(policy)
        if tracer is None:
            tracer = Tracer()
        budget = self._budget_for(options)
        # a slow-query threshold implies collection: the whole point is
        # that an outlier's event arrives with its profile attached
        collect = options.trace or options.slow_query_threshold is not None
        collector = ProfileCollector() if collect else None
        with tracer.span(
            "query", policy=policy, strategy=options.strategy
        ) as query_span:
            compiled, cache_hit = self._compiled(
                entry,
                query,
                document,
                options.optimize,
                strategy=options.strategy,
                use_index=options.use_index,
                use_cache=options.use_cache,
                tracer=tracer,
                trace_id=trace_id,
            )
            if budget is not None:
                # the deadline covers compilation too
                budget.checkpoint()
            runtime = PlanRuntime(
                (
                    self._index_for(document, policy)
                    if options.use_index
                    else None
                ),
                store=(
                    self._store_for(document, policy)
                    if options.strategy == STRATEGY_COLUMNAR
                    else None
                ),
                profile=collector,
                budget=budget,
                scan_cache=scan_cache,
            )
            with tracer.span("evaluate") as evaluate_span:
                if options.project:
                    results = self._execute_projected(
                        entry, compiled, document, runtime, tracer,
                        budget=budget,
                    )
                else:
                    plan = self._whole_query_plan(compiled, tracer)
                    results = plan.execute(
                        document, runtime=runtime, ordered=True
                    )
                    if budget is not None:
                        budget.charge_results(len(results))
            evaluate_span.set(results=len(results), visits=runtime.visits)
        timings = dict(compiled.timings)
        timings["evaluate"] = evaluate_span.duration
        report = QueryReport(
            policy,
            compiled.parsed,
            compiled.rewritten,
            compiled.optimized,
            len(results),
            runtime.visits,
            strategy=options.strategy,
            cache_hit=cache_hit,
            timings=timings,
            total_seconds=query_span.duration,
            profile=self._build_profile(compiled, collector, options),
            fingerprint=compiled.fingerprint,
        )
        self._record_query_metrics(report)
        return results, report

    def _build_profile(
        self,
        compiled: CompiledQuery,
        collector: Optional[ProfileCollector],
        options: ExecutionOptions,
    ) -> Optional[ExplainProfile]:
        """Assemble the EXPLAIN ANALYZE tree for a traced execution:
        one root per view-target plan (projected runs) or the single
        whole-query plan, annotated with the collector's stats."""
        if collector is None:
            return None
        roots: List[ProfileNode] = []
        if options.project and compiled.projected is not None:
            for target, _, plan in compiled.projected:
                roots.append(
                    ProfileNode(
                        "target", target, None, [plan.profile(collector)]
                    )
                )
        elif compiled.plan is not None:
            roots.append(compiled.plan.profile(collector))
        return ExplainProfile(
            str(compiled.optimized),
            strategy=options.strategy,
            roots=roots,
            events=collector.events,
        )

    def _execute_projected(
        self,
        entry: _Policy,
        compiled: CompiledQuery,
        document,
        runtime,
        tracer: Optional[Tracer] = None,
        budget=None,
    ):
        """Evaluate per target view node so each raw result can be
        projected through the view (dummies relabeled, hidden
        descendants removed).  Result charging is incremental so a
        ``max_results`` breach stops before projecting further
        subtrees."""
        projected = []
        seen = set()
        plans = self._projected_plans(entry, compiled, tracer)
        for target, is_text, plan in plans:
            if is_text:
                for node in plan.execute(document, runtime=runtime):
                    if id(node) not in seen:
                        seen.add(id(node))
                        projected.append(node.value)
                if budget is not None:
                    budget.charge_results(len(projected))
                continue
            raw = plan.execute(document, runtime=runtime, ordered=True)
            for node in raw:
                if id(node) in seen:
                    continue
                seen.add(id(node))
                projected.append(
                    materialize_subtree(
                        document,
                        compiled.view,
                        entry.spec,
                        target,
                        node,
                        budget=budget,
                    )
                )
                if budget is not None:
                    budget.charge_results(len(projected))
        return projected

    def _execute_uncached(
        self,
        policy,
        query,
        document,
        options: ExecutionOptions,
        tracer: Optional[Tracer] = None,
        trace_id: str = "",
    ):
        """The pre-plan-cache interpreter pipeline (kept verbatim as
        the ``use_cache=False`` baseline the benchmarks compare
        against)."""
        entry = self._policy(policy)
        if tracer is None:
            tracer = Tracer()
        budget = self._budget_for(options)
        timings: Dict[str, float] = {}
        with tracer.span(
            "query", policy=policy, strategy=STRATEGY_VIRTUAL
        ) as query_span:
            with tracer.span("parse") as span:
                parsed = self._parse(entry, query, trace_id)
            timings["parse"] = span.duration
            rewriter = self._rewriter(entry, document)
            with tracer.span("rewrite") as span:
                rewritten = rewriter.rewrite(parsed)
            timings["rewrite"] = span.duration
            if options.optimize:
                with tracer.span("optimize") as span:
                    optimized = self._optimizer.optimize(rewritten)
                timings["optimize"] = span.duration
            else:
                optimized = rewritten
            if budget is not None:
                budget.checkpoint()
            evaluator = XPathEvaluator(
                index=(
                    self._index_for(document, policy)
                    if options.use_index
                    else None
                ),
                budget=budget,
            )
            with tracer.span("evaluate") as span:
                if options.project:
                    results = self._evaluate_projected(
                        entry, rewriter, parsed, document, evaluator,
                        budget=budget,
                    )
                else:
                    results = evaluator.evaluate(
                        optimized, document, ordered=True
                    )
                    if budget is not None:
                        budget.charge_results(len(results))
            timings["evaluate"] = span.duration
        report = QueryReport(
            policy,
            parsed,
            rewritten,
            optimized,
            len(results),
            evaluator.visits,
            strategy=STRATEGY_VIRTUAL,
            cache_hit=False,
            timings=timings,
            total_seconds=query_span.duration,
            fingerprint=query_fingerprint(parsed),
        )
        self._record_query_metrics(report)
        return results, report

    def _evaluate_projected(
        self, entry, rewriter, parsed, document, evaluator, budget=None
    ):
        """Uncached projected evaluation (see :meth:`_execute_projected`
        for the plan-based equivalent)."""
        if isinstance(parsed, Absolute):
            per_target = rewriter._rw(parsed.inner, "#document")
            wrap_absolute = True
        else:
            per_target = rewriter._rw(parsed, rewriter.view.root_key)
            wrap_absolute = False
        projected = []
        seen = set()
        for target, path in sorted(per_target.items()):
            if target.startswith("#text"):
                raw = evaluator.evaluate(
                    Absolute(path) if wrap_absolute else path, document
                )
                for node in raw:
                    if id(node) not in seen:
                        seen.add(id(node))
                        projected.append(node.value)
                if budget is not None:
                    budget.charge_results(len(projected))
                continue
            document_path = Absolute(path) if wrap_absolute else path
            optimized_path = self._optimizer.optimize(document_path)
            raw = evaluator.evaluate(optimized_path, document, ordered=True)
            for node in raw:
                if id(node) in seen:
                    continue
                seen.add(id(node))
                projected.append(
                    materialize_subtree(
                        document,
                        rewriter.view,
                        entry.spec,
                        target,
                        node,
                        budget=budget,
                    )
                )
                if budget is not None:
                    budget.charge_results(len(projected))
        return projected

    def _query_materialized(
        self,
        policy,
        query,
        document,
        options: ExecutionOptions,
        tracer: Optional[Tracer] = None,
        trace_id: str = "",
    ):
        entry = self._policy(policy)
        if tracer is None:
            tracer = Tracer()
        budget = self._budget_for(options)
        timings: Dict[str, float] = {}
        with tracer.span(
            "query", policy=policy, strategy=STRATEGY_MATERIALIZED
        ) as query_span:
            with tracer.span("parse") as span:
                parsed = self._parse(entry, query, trace_id)
            timings["parse"] = span.duration
            cached = entry.materialized.get(id(document))
            view_cache_hit = cached is not None and cached[0] is document
            if not view_cache_hit:
                with self._build_locks(("mat", entry.name, id(document))):
                    cached = entry.materialized.get(id(document))
                    if cached is not None and cached[0] is document:
                        view_cache_hit = True  # built while we waited
                        view_tree = cached[1]
                    else:
                        with tracer.span("materialize") as span:
                            view_tree = materialize(
                                document,
                                entry.view,
                                entry.spec,
                                budget=budget,
                            )
                        timings["materialize"] = span.duration
                        entry.materialized[id(document)] = (
                            document,
                            view_tree,
                        )
            else:
                view_tree = cached[1]
            evaluator = XPathEvaluator(budget=budget)
            with tracer.span("evaluate") as span:
                results = []
                for node in evaluator.evaluate(
                    parsed, view_tree, ordered=True
                ):
                    results.append(node.value if node.is_text else node)
                if budget is not None:
                    budget.charge_results(len(results))
            timings["evaluate"] = span.duration
        report = QueryReport(
            policy,
            parsed,
            parsed,
            parsed,
            len(results),
            evaluator.visits,
            strategy=STRATEGY_MATERIALIZED,
            cache_hit=view_cache_hit,
            timings=timings,
            total_seconds=query_span.duration,
            fingerprint=query_fingerprint(parsed),
        )
        self._record_query_metrics(report)
        return results, report
