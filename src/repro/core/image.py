"""Image graphs (Section 5.1).

``image(p, A)`` is a graph rooted at DTD node ``A`` consisting of all
the nodes reached from ``A`` via ``p`` in the DTD graph, along with the
paths leading to them.  Qualifiers hang off path nodes as sub-graphs
whose roots carry the special label ``[]`` (or ``[]=c`` for equality
tests, so that different constants never test as equivalent).

Two implementation choices, both conservative (they can only make the
approximate containment test *less* willing to claim containment,
never more):

* nodes are keyed by *position along the query* rather than globally
  by DTD type (the paper merges by type).  Type-merging repeated
  labels along one path can create spurious paths in the image,
  which would make the simulation test unsound; position-keying never
  adds paths.  The ``//`` case still merges by type — there the merged
  subgraph is exact, because every path in the reachable DTD subgraph
  *is* a real descendant path.
* graphs that contain constructs outside the paper's conjunctive
  fragment (negation, disjunctive qualifiers, attribute tests) are
  marked ``imprecise``; the containment test refuses to draw
  conclusions from them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.dtd.content import Str
from repro.dtd.dtd import DTD
from repro.xpath.ast import (
    Absolute,
    Descendant,
    Empty,
    EpsilonPath,
    Label,
    Parent,
    Path,
    QAnd,
    QAttr,
    QAttrEquals,
    QBool,
    QEquals,
    QNot,
    QOr,
    QPath,
    Qualified,
    Qualifier,
    Slash,
    TextStep,
    Union,
    Wildcard,
)

#: Label of qualifier roots.
QUAL_LABEL = "[]"

#: Marker attached below result leaves so that the simulation test
#: distinguishes the *result* nodes of a query from mere path nodes
#: (without it, ``dept`` would appear contained in ``dept/patientInfo``
#: because the shorter path's graph is a subgraph of the longer one's).
RESULT_LABEL = "#result"


class INode:
    """A node of an image graph."""

    __slots__ = ("label", "children", "quals")

    def __init__(self, label: str):
        self.label = label
        self.children: List[INode] = []
        self.quals: List[INode] = []

    def add_child(self, node: "INode") -> "INode":
        if node not in self.children:
            self.children.append(node)
        return node

    def __repr__(self):
        return "INode(%r, %d children, %d quals)" % (
            self.label,
            len(self.children),
            len(self.quals),
        )


class ImageGraph:
    """``image(p, A)``: root node, current leaves (the reach targets),
    and an imprecision flag."""

    __slots__ = ("root", "leaves", "imprecise")

    def __init__(self, root: INode, leaves: List[INode], imprecise: bool = False):
        self.root = root
        self.leaves = leaves
        self.imprecise = imprecise

    def all_nodes(self) -> List[INode]:
        seen: Set[int] = set()
        ordered: List[INode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            ordered.append(node)
            stack.extend(node.children)
            stack.extend(node.quals)
        return ordered

    def size(self) -> int:
        return len(self.all_nodes())


def reach_types(dtd: DTD, path: Path, start: str) -> Set[str]:
    """DTD element types reachable from ``start`` via ``path``
    (``"#text"`` marks text results)."""
    return _reach(dtd, path, frozenset((start,)))


def _reach(dtd: DTD, path: Path, starts: frozenset) -> Set[str]:
    if isinstance(path, Empty):
        return set()
    if isinstance(path, EpsilonPath):
        return set(starts)
    if isinstance(path, Label):
        return {
            path.name
            for origin in starts
            if origin != "#text"
            and dtd.has_type(origin)
            and dtd.is_child(origin, path.name)
        }
    if isinstance(path, Wildcard):
        found: Set[str] = set()
        for origin in starts:
            if origin != "#text" and dtd.has_type(origin):
                found.update(dtd.children_of(origin))
        return found
    if isinstance(path, TextStep):
        return {
            "#text"
            for origin in starts
            if origin != "#text"
            and dtd.has_type(origin)
            and isinstance(dtd.production(origin), Str)
        }
    if isinstance(path, Parent):
        found: Set[str] = set()
        for origin in starts:
            if origin != "#text" and dtd.has_type(origin):
                found.update(dtd.parents_of(origin))
        return found
    if isinstance(path, Slash):
        middle = _reach(dtd, path.left, starts)
        return _reach(dtd, path.right, frozenset(middle))
    if isinstance(path, Descendant):
        expanded: Set[str] = set()
        for origin in starts:
            if origin != "#text" and dtd.has_type(origin):
                expanded.update(dtd.reachable(origin))
        return _reach(dtd, path.inner, frozenset(expanded))
    if isinstance(path, Union):
        found = set()
        for branch in path.branches:
            found.update(_reach(dtd, branch, starts))
        return found
    if isinstance(path, Qualified):
        return _reach(dtd, path.path, starts)
    if isinstance(path, Absolute):
        return _reach(dtd, path.inner, frozenset(("#document",))) | (
            _reach(dtd, path.inner, frozenset((dtd.root,)))
            if isinstance(path.inner, Descendant)
            else _absolute_reach(dtd, path.inner)
        )
    raise TypeError("unknown path node %r" % path)


def _absolute_reach(dtd: DTD, inner: Path) -> Set[str]:
    """Reach of an absolute path: the first step must select the root."""
    if isinstance(inner, Slash):
        first = _absolute_reach(dtd, inner.left)
        return _reach(dtd, inner.right, frozenset(first))
    if isinstance(inner, Label):
        return {dtd.root} if inner.name == dtd.root else set()
    if isinstance(inner, Wildcard):
        return {dtd.root}
    if isinstance(inner, Qualified):
        return _absolute_reach(dtd, inner.path)
    if isinstance(inner, Union):
        found: Set[str] = set()
        for branch in inner.branches:
            found.update(_absolute_reach(dtd, branch))
        return found
    if isinstance(inner, Descendant):
        expanded = dtd.reachable(dtd.root) | {dtd.root}
        return _reach(dtd, inner.inner, frozenset(expanded))
    return set()


def build_image(dtd: DTD, path: Path, start: str) -> Optional[ImageGraph]:
    """Construct ``image(path, start)``; None when the image is empty
    (the query selects nothing at ``start`` under this DTD).  Result
    leaves are marked so containment compares result sets, not just
    path structure."""
    graph = _image(dtd, path, start)
    if graph is None:
        return None
    for leaf in graph.leaves:
        if not any(child.label == RESULT_LABEL for child in leaf.children):
            leaf.children.append(INode(RESULT_LABEL))
    return graph


def _image(dtd: DTD, path: Path, start: str) -> Optional[ImageGraph]:
    if isinstance(path, Empty):
        return None
    if isinstance(path, EpsilonPath):
        root = INode(start)
        return ImageGraph(root, [root])
    if isinstance(path, Label):
        # case (1)
        if start == "#text" or not dtd.has_type(start):
            return None
        if not dtd.is_child(start, path.name):
            return None
        root = INode(start)
        leaf = root.add_child(INode(path.name))
        return ImageGraph(root, [leaf])
    if isinstance(path, Wildcard):
        # case (2)
        if start == "#text" or not dtd.has_type(start):
            return None
        children = dtd.children_of(start)
        if not children:
            return None
        root = INode(start)
        leaves = [root.add_child(INode(child)) for child in children]
        return ImageGraph(root, leaves)
    if isinstance(path, TextStep):
        if start == "#text" or not dtd.has_type(start):
            return None
        if not isinstance(dtd.production(start), Str):
            return None
        root = INode(start)
        leaf = root.add_child(INode("#text"))
        return ImageGraph(root, [leaf])
    if isinstance(path, Parent):
        # upward step: no sound downward-edge representation exists;
        # provide leaves for composition but refuse containment
        if start == "#text" or not dtd.has_type(start):
            return None
        parents = dtd.parents_of(start)
        if not parents:
            return None
        root = INode(start)
        leaves = [INode(parent) for parent in sorted(parents)]
        return ImageGraph(root, leaves, imprecise=True)
    if isinstance(path, Slash):
        # case (3): attach image(p2, B) at every leaf B
        left = _image(dtd, path.left, start)
        if left is None:
            return None
        leaves: List[INode] = []
        imprecise = left.imprecise
        attached = False
        for leaf in left.leaves:
            sub = _image(dtd, path.right, leaf.label)
            if sub is None:
                continue
            attached = True
            imprecise = imprecise or sub.imprecise
            for child in sub.root.children:
                leaf.add_child(child)
            leaf.quals.extend(sub.root.quals)
            leaves.extend(
                leaf if node is sub.root else node for node in sub.leaves
            )
        if not attached:
            return None
        return ImageGraph(left.root, leaves, imprecise)
    if isinstance(path, Descendant):
        # case (4): "all the nodes reached from A via p, along with the
        # paths leading to them" — the DTD subgraph restricted to nodes
        # on a path from A to a type where the inner image is nonempty,
        # merged by type (exact for descendant-or-self), with the inner
        # image attached at each such anchor
        if start == "#text" or not dtd.has_type(start):
            return None
        reachable = sorted(dtd.reachable(start))
        inner_images = {}
        for name in reachable:
            sub = _image(dtd, path.inner, name)
            if sub is not None:
                inner_images[name] = sub
        if not inner_images:
            return None
        keep = _co_reachable(dtd, reachable, set(inner_images)) | {start}
        per_type: Dict[str, INode] = {name: INode(name) for name in keep}
        for name in keep:
            for child in dtd.children_of(name):
                if child in keep:
                    per_type[name].add_child(per_type[child])
        leaves = []
        imprecise = False
        for name, sub in inner_images.items():
            imprecise = imprecise or sub.imprecise
            anchor = per_type[name]
            for child in sub.root.children:
                anchor.add_child(child)
            anchor.quals.extend(sub.root.quals)
            leaves.extend(
                anchor if node is sub.root else node for node in sub.leaves
            )
        return ImageGraph(per_type[start], leaves, imprecise)
    if isinstance(path, Union):
        # case (5): merge branch roots
        root = INode(start)
        leaves = []
        imprecise = False
        any_branch = False
        for branch in path.branches:
            sub = _image(dtd, branch, start)
            if sub is None:
                continue
            any_branch = True
            imprecise = imprecise or sub.imprecise
            if sub.root.quals:
                # qualifiers on a union-branch root cannot be merged
                # into a shared root soundly; refuse conclusions
                imprecise = True
            for child in sub.root.children:
                root.add_child(child)
            leaves.extend(
                root if node is sub.root else node for node in sub.leaves
            )
        if not any_branch:
            return None
        return ImageGraph(root, leaves, imprecise)
    if isinstance(path, Qualified):
        # case (6): attach the qualifier graph at every selected node
        base = _image(dtd, path.path, start)
        if base is None:
            return None
        return _attach_qualifier(dtd, base, path.qualifier)
    if isinstance(path, Absolute):
        # anchor at a virtual #document node above the root
        doc = INode("#document")
        inner = _absolute_image(dtd, path.inner, doc)
        if inner is None:
            return None
        return inner
    raise TypeError("unknown path node %r" % path)


def _absolute_image(dtd: DTD, inner: Path, doc: INode) -> Optional[ImageGraph]:
    if isinstance(inner, Descendant):
        sub = _image(dtd, Descendant(inner.inner), dtd.root)
        if sub is None:
            return None
        doc.add_child(sub.root)
        return ImageGraph(doc, sub.leaves, sub.imprecise)
    if isinstance(inner, Slash):
        first = _absolute_image(dtd, inner.left, doc)
        if first is None:
            return None
        leaves = []
        imprecise = first.imprecise
        attached = False
        for leaf in first.leaves:
            sub = _image(dtd, inner.right, leaf.label)
            if sub is None:
                continue
            attached = True
            imprecise = imprecise or sub.imprecise
            for child in sub.root.children:
                leaf.add_child(child)
            leaf.quals.extend(sub.root.quals)
            leaves.extend(
                leaf if node is sub.root else node for node in sub.leaves
            )
        if not attached:
            return None
        return ImageGraph(doc, leaves, imprecise)
    if isinstance(inner, Label):
        if inner.name != dtd.root:
            return None
        leaf = doc.add_child(INode(dtd.root))
        return ImageGraph(doc, [leaf])
    if isinstance(inner, Wildcard):
        leaf = doc.add_child(INode(dtd.root))
        return ImageGraph(doc, [leaf])
    if isinstance(inner, Qualified):
        base = _absolute_image(dtd, inner.path, doc)
        if base is None:
            return None
        return _attach_qualifier(dtd, base, inner.qualifier)
    if isinstance(inner, Union):
        leaves = []
        imprecise = False
        any_branch = False
        for branch in inner.branches:
            sub = _absolute_image(dtd, branch, doc)
            if sub is None:
                continue
            any_branch = True
            imprecise = imprecise or sub.imprecise
            leaves.extend(sub.leaves)
        if not any_branch:
            return None
        return ImageGraph(doc, leaves, imprecise)
    return None


def _co_reachable(dtd: DTD, universe, anchors) -> set:
    """Nodes of ``universe`` from which some anchor can be reached
    (anchors included), via reverse-edge search."""
    universe = set(universe)
    parents: Dict[str, Set[str]] = {name: set() for name in universe}
    for name in universe:
        for child in dtd.children_of(name):
            if child in universe:
                parents[child].add(name)
    found = set(anchors) & universe
    frontier = list(found)
    while frontier:
        current = frontier.pop()
        for parent in parents[current]:
            if parent not in found:
                found.add(parent)
                frontier.append(parent)
    return found


def _attach_qualifier(
    dtd: DTD, base: ImageGraph, qualifier: Qualifier
) -> Optional[ImageGraph]:
    """Attach ``[q]`` at every leaf, first trying ``bool([q], A)``:
    "the graph is constructed only when bool([q], A) is not fixed"
    (Section 5.1).  A surely-true qualifier is dropped (Example 5.2);
    a surely-false qualifier invalidates the leaf."""
    from repro.core.constraints import evaluate_qualifier_bool

    kept: List[INode] = []
    imprecise = base.imprecise
    for leaf in base.leaves:
        decided = evaluate_qualifier_bool(dtd, qualifier, leaf.label)
        if decided is True:
            kept.append(leaf)
            continue
        if decided is False:
            # the branch into this leaf stays in the graph but selects
            # nothing; containment conclusions become unreliable
            imprecise = True
            continue
        qual_graph, qual_imprecise = build_qualifier_image(
            dtd, qualifier, leaf.label
        )
        imprecise = imprecise or qual_imprecise
        if qual_graph is not None:
            leaf.quals.append(qual_graph)
        kept.append(leaf)
    if not kept:
        return None
    return ImageGraph(base.root, kept, imprecise)


def build_qualifier_image(dtd: DTD, qualifier: Qualifier, start: str):
    """``image([q], start)``: a graph rooted at a ``[]``-labeled node,
    or None when the qualifier contributes no structural constraints.
    Returns ``(graph_root_or_None, imprecise)``."""
    if isinstance(qualifier, QBool):
        return None, False
    if isinstance(qualifier, QPath):
        sub = _image(dtd, qualifier.path, start)
        if sub is None:
            # structurally unsatisfiable here; callers should have
            # folded this via the constraint analysis already
            return None, True
        root = INode(QUAL_LABEL)
        root.children.extend(sub.root.children)
        root.quals.extend(sub.root.quals)
        return root, sub.imprecise
    if isinstance(qualifier, QEquals):
        sub = _image(dtd, qualifier.path, start)
        if sub is None:
            return None, True
        root = INode("%s=%s" % (QUAL_LABEL, qualifier.value))
        root.children.extend(sub.root.children)
        root.quals.extend(sub.root.quals)
        return root, sub.imprecise
    if isinstance(qualifier, QAnd):
        # case (8) last bullet: combine the two images at the root
        left, left_imprecise = build_qualifier_image(
            dtd, qualifier.left, start
        )
        right, right_imprecise = build_qualifier_image(
            dtd, qualifier.right, start
        )
        imprecise = left_imprecise or right_imprecise
        if left is None:
            return right, imprecise
        if right is None:
            return left, imprecise
        if left.label != right.label:
            # an equality and an existence test cannot share a root
            return left, True
        for child in right.children:
            left.add_child(child)
        left.quals.extend(right.quals)
        return left, imprecise
    # disjunction, negation, attribute tests: outside the conjunctive
    # fragment C^-; mark imprecise so no containment is concluded
    if isinstance(qualifier, (QOr, QNot, QAttr, QAttrEquals)):
        return None, True
    raise TypeError("unknown qualifier node %r" % qualifier)
