"""Materialization semantics of security views (Section 3.3).

Security views are *virtual* in the paper's framework — this module
exists because the paper defines the semantics of a view through a
materialization procedure, and because a reference materializer is the
perfect oracle for testing query rewriting:

    for all queries p:   p(Tv)  ==  rewrite(p)(T)

The computation is top-down: the root of ``Tv`` is the root of ``T``;
each view element carries an *origin* (the document node it was
extracted from), and children are produced by evaluating the sigma
annotations at the origin, keeping only accessible nodes (for real
labels; dummy elements are structural and may be anchored at hidden
document nodes).  The per-shape rules (1)-(5) of Section 3.3 apply;
rule violations raise :class:`MaterializationAborted`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import MaterializationAborted
from repro.dtd.content import (
    Choice,
    ContentModel,
    Epsilon,
    Name,
    Seq,
    Star,
    Str,
)
from repro.core.accessibility import compute_accessibility
from repro.core.spec import AccessSpec
from repro.core.view import SecurityView
from repro.robustness.faults import trip as fault_trip
from repro.xmlmodel.nodes import XMLElement, XMLText
from repro.xpath.evaluator import XPathEvaluator


class _Materializer:
    def __init__(
        self, document_root, view: SecurityView, spec: AccessSpec, budget=None
    ):
        self.document_root = document_root
        self.view = view
        self.spec = spec
        self.budget = budget
        self.evaluator = XPathEvaluator(budget=budget)
        self.accessible = compute_accessibility(document_root, spec)
        self.doc_order: Dict[int, int] = {
            id(node): index
            for index, node in enumerate(document_root.iter())
        }

    def run(self) -> XMLElement:
        root_node = self.view.root
        if root_node.label != self.document_root.label:
            raise MaterializationAborted(
                "document root %r does not match view root %r"
                % (self.document_root.label, root_node.label)
            )
        view_root = XMLElement(root_node.label)
        self._copy_attributes(view_root, root_node.key, self.document_root)
        self._expand(view_root, root_node.key, self.document_root)
        return view_root

    def _copy_attributes(self, view_element, key: str, origin) -> None:
        hidden = self.view.hidden_attributes_of(key)
        for name, value in origin.attributes.items():
            if name not in hidden:
                view_element.set(name, value)

    # -- expansion --------------------------------------------------------

    def _expand(self, view_element: XMLElement, key: str, origin) -> None:
        if self.budget is not None:
            self.budget.tick()
        content = self.view.node(key).content
        if isinstance(content, Epsilon):
            return
        if isinstance(content, Str):
            self._expand_text(view_element, key, origin)
            return
        if isinstance(content, Name):
            child = self._extract_one(key, content.name, origin)
            self._attach(view_element, content.name, child)
            return
        if isinstance(content, Seq):
            for item in content.items:
                if isinstance(item, Name):
                    child = self._extract_one(key, item.name, origin)
                    self._attach(view_element, item.name, child)
                elif isinstance(item, Star) and isinstance(item.item, Name):
                    for node in self._extract_all(key, item.item.name, origin):
                        self._attach(view_element, item.item.name, node)
                else:
                    raise MaterializationAborted(
                        "unexpected view production item %r" % (item,)
                    )
            return
        if isinstance(content, Choice):
            self._expand_choice(view_element, key, content, origin)
            return
        if isinstance(content, Star) and isinstance(content.item, Name):
            for node in self._extract_all(key, content.item.name, origin):
                self._attach(view_element, content.item.name, node)
            return
        raise MaterializationAborted(
            "unsupported view production %r" % (content,)
        )

    def _expand_text(self, view_element: XMLElement, key: str, origin):
        path = self.view.sigma_text.get(key)
        if path is None:
            raise MaterializationAborted(
                "str production of %r has no sigma(str) annotation" % key
            )
        texts = [
            node
            for node in self.evaluator.evaluate(path, origin)
            if node.is_text
        ]
        if texts:
            view_element.append(
                XMLText("".join(node.value for node in texts))
            )

    def _expand_choice(
        self, view_element: XMLElement, key: str, content: Choice, origin
    ) -> None:
        # rule (4): exactly one alternative must produce a single node
        matches: List[tuple] = []
        for item in content.items:
            if not isinstance(item, Name):
                raise MaterializationAborted(
                    "unexpected choice item %r in view production" % (item,)
                )
            nodes = self._extract_all(key, item.name, origin)
            if nodes:
                matches.append((item.name, nodes))
        if len(matches) != 1 or len(matches[0][1]) != 1:
            raise MaterializationAborted(
                "choice production of %r matched %d alternatives at %r "
                "(exactly one single node required)"
                % (key, len(matches), origin.label)
            )
        child_key, nodes = matches[0]
        self._attach(view_element, child_key, nodes[0])

    # -- extraction ------------------------------------------------------------

    def _extract_all(self, parent_key: str, child_key: str, origin) -> List:
        """rule (5): all accessible nodes, in document order."""
        path = self.view.sigma_of(parent_key, child_key)
        child_node = self.view.node(child_key)
        nodes = self.evaluator.evaluate(path, origin)
        if not child_node.is_dummy:
            nodes = [
                node
                for node in nodes
                if node.is_element and self.accessible.get(id(node), False)
            ]
        else:
            nodes = [node for node in nodes if node.is_element]
        nodes.sort(key=lambda node: self.doc_order.get(id(node), -1))
        return nodes

    def _extract_one(self, parent_key: str, child_key: str, origin):
        """rules (2)/(3): the annotation must produce exactly one
        (accessible, for real labels) node."""
        nodes = self._extract_all(parent_key, child_key, origin)
        if len(nodes) != 1:
            raise MaterializationAborted(
                "sigma(%s, %s) produced %d nodes at a %r element "
                "(exactly one required)"
                % (parent_key, child_key, len(nodes), origin.label)
            )
        return nodes[0]

    def _attach(self, view_element: XMLElement, child_key: str, origin) -> None:
        child_node = self.view.node(child_key)
        child_element = view_element.add_element(child_node.label)
        if not child_node.is_dummy:
            self._copy_attributes(child_element, child_key, origin)
        self._expand(child_element, child_key, origin)


def materialize(document_root, view: SecurityView, spec: AccessSpec, budget=None):
    """Materialize ``Tv`` from a document, a view, and the (concrete,
    parameter-free) specification the view was derived from.

    Raises :class:`MaterializationAborted` when the Section 3.3 rules
    are violated (the situations Theorem 3.2 excludes)."""
    fault_trip("materialize")
    return _Materializer(document_root, view, spec, budget=budget).run()


def materialize_subtree(
    document_root,
    view: SecurityView,
    spec: AccessSpec,
    key: str,
    origin,
    budget=None,
) -> XMLElement:
    """Materialize only the view subtree anchored at view node ``key``
    with document origin ``origin``.

    This is how query results are *projected through the view* without
    materializing the whole view: a result element's copy carries the
    view label (dummies stay renamed) and only view-visible
    descendants."""
    fault_trip("materialize")
    materializer = _Materializer(document_root, view, spec, budget=budget)
    node = view.node(key)
    element = XMLElement(node.label)
    if not node.is_dummy:
        materializer._copy_attributes(element, key, origin)
    materializer._expand(element, key, origin)
    return element
