"""The naive baseline of Section 6.

The comparison baseline annotates every element of the document with an
``accessibility`` attribute (``"1"`` / ``"0"``) and rewrites a view
query with two rules:

1. append the qualifier ``[@accessibility = "1"]`` to the last step of
   the query, so only authorized elements are returned;
2. replace every *child* axis with the *descendant* axis, because one
   edge of the view DTD may correspond to a multi-step path in the
   document (sound as long as the DTD has unique element names —
   footnote 3 of the paper).

Rule 2 is what makes the baseline slow: every step degenerates into a
full-subtree scan.  Table 1 measures exactly this gap.
"""

from __future__ import annotations

from repro.errors import RewriteError
from repro.core.accessibility import ACCESSIBILITY_ATTRIBUTE, annotate_accessibility
from repro.core.spec import AccessSpec
from repro.xpath.ast import (
    Absolute,
    Descendant,
    Empty,
    EpsilonPath,
    Label,
    Parent,
    Path,
    QAttr,
    QAttrEquals,
    Qualified,
    Slash,
    TextStep,
    Union,
    Wildcard,
    descendant,
    qualified,
    slash,
    union,
)

#: The qualifier appended by rule 1.
ACCESSIBLE_QUALIFIER = QAttrEquals(ACCESSIBILITY_ATTRIBUTE, "1")


def annotate_document(document_root, spec: AccessSpec) -> int:
    """Prepare a document for the naive baseline: store per-element
    accessibility in attributes.  Returns the accessible-element
    count.  (Re-exported from :mod:`repro.core.accessibility`.)"""
    return annotate_accessibility(document_root, spec)


def naive_rewrite(query: Path) -> Path:
    """Apply the two naive rewrite rules to a view query."""
    relaxed = _relax_axes(query)
    return _append_accessibility(relaxed)


def _relax_axes(query: Path) -> Path:
    """Rule 2: child steps become descendant steps.  Upward steps
    have no sound relaxation and are kept as-is."""
    if isinstance(query, (Empty, EpsilonPath, TextStep, Parent)):
        return query
    if isinstance(query, (Label, Wildcard)):
        return Descendant(query)
    if isinstance(query, Slash):
        return slash(_relax_axes(query.left), _relax_axes(query.right))
    if isinstance(query, Descendant):
        return descendant(_relax_axes_inner(query.inner))
    if isinstance(query, Union):
        return union(_relax_axes(branch) for branch in query.branches)
    if isinstance(query, Qualified):
        # qualifiers are relative paths over the view too: relax them
        return qualified(
            _relax_axes(query.path), _relax_qualifier(query.qualifier)
        )
    if isinstance(query, Absolute):
        return Absolute(_relax_axes_inner(query.inner))
    raise RewriteError("cannot relax query node %r" % query)


def _relax_qualifier(condition):
    from repro.xpath.ast import (
        QAnd,
        QAttr,
        QAttrEquals,
        QBool,
        QEquals,
        QNot,
        QOr,
        QPath,
        qand,
        qnot,
        qor,
        qpath,
    )

    if isinstance(condition, QBool):
        return condition
    if isinstance(condition, QAttr):
        return QAttr(condition.name, _relax_axes(condition.path))
    if isinstance(condition, QAttrEquals):
        return QAttrEquals(
            condition.name, condition.value, _relax_axes(condition.path)
        )
    if isinstance(condition, QPath):
        return qpath(_relax_axes(condition.path))
    if isinstance(condition, QEquals):
        return QEquals(_relax_axes(condition.path), condition.value)
    if isinstance(condition, QAnd):
        return qand(
            _relax_qualifier(condition.left), _relax_qualifier(condition.right)
        )
    if isinstance(condition, QOr):
        return qor(
            _relax_qualifier(condition.left), _relax_qualifier(condition.right)
        )
    if isinstance(condition, QNot):
        return qnot(_relax_qualifier(condition.inner))
    raise RewriteError("cannot relax qualifier %r" % condition)


def _relax_axes_inner(query: Path) -> Path:
    """Relaxation below an existing ``//``: the step itself stays a
    child step of the descendant-or-self context, but nested structure
    is still relaxed."""
    if isinstance(query, (Empty, EpsilonPath, TextStep, Label, Wildcard, Parent)):
        return query
    if isinstance(query, Slash):
        return slash(_relax_axes_inner(query.left), _relax_axes(query.right))
    if isinstance(query, Qualified):
        return qualified(
            _relax_axes_inner(query.path), _relax_qualifier(query.qualifier)
        )
    if isinstance(query, Union):
        return union(_relax_axes_inner(branch) for branch in query.branches)
    return _relax_axes(query)


def _append_accessibility(query: Path) -> Path:
    """Rule 1: add ``[@accessibility = "1"]`` to the last step."""
    if isinstance(query, Empty):
        return query
    if isinstance(query, Union):
        return union(
            _append_accessibility(branch) for branch in query.branches
        )
    if isinstance(query, Slash):
        return Slash(query.left, _append_accessibility(query.right))
    if isinstance(query, Descendant):
        return Descendant(_append_accessibility(query.inner))
    if isinstance(query, Absolute):
        return Absolute(_append_accessibility(query.inner))
    return qualified(query, ACCESSIBLE_QUALIFIER)
