"""Algorithm ``optimize`` (Fig. 10): DTD-aware XPath optimization.

Rewrites a (document-level) query into an equivalent but cheaper one by
"evaluating" it over the DTD graph:

* wildcard steps expand into the labels that can actually occur;
* steps into types that cannot exist are pruned to the empty query
  (non-existence constraints);
* qualifiers decided by co-existence / exclusive constraints fold to
  true/false (Example 5.1, queries Q3/Q4 of Section 6);
* ``//`` steps are expanded into the precise union of label paths
  (``recrw`` over the DTD) when the reachable subgraph is a DAG;
* redundant union branches are pruned through the approximate,
  simulation-based containment test (Proposition 5.1).

Like :mod:`repro.core.rewrite`, the dynamic program tracks results *per
target element type* — the printed case (4) concatenates ``opt(p2, B)``
(only valid at ``B`` elements) onto prefixes that may land on other
types; per-target tracking restores soundness (see DESIGN.md).  Within
recursive DTD regions, where ``//`` cannot be expanded, results fall
back to a single "unknown type" bucket on which no type-specific
simplification is performed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dtd.content import Str
from repro.dtd.dtd import DTD
from repro.core.constraints import (
    evaluate_qualifier_bool,
    exclusive_conflict,
)
from repro.core.image import build_image, build_qualifier_image
from repro.core.simulation import node_simulated, simulates
from repro.xpath.ast import (
    Absolute,
    Descendant,
    EPSILON,
    Empty,
    EpsilonPath,
    Label,
    Parent,
    Path,
    QAnd,
    QAttr,
    QAttrEquals,
    QBool,
    QEquals,
    QNot,
    QOr,
    QPath,
    Qualified,
    Qualifier,
    Slash,
    TextStep,
    Union,
    Wildcard,
    qand,
    qnot,
    qor,
    qpath,
    qualified,
    slash,
    union,
)

#: Pseudo targets.
_DOC = "#document"
_TEXT = "#text"
_ANY = "#any"

OptMap = Dict[str, Path]


class Optimizer:
    """Optimizes queries against one document DTD.  Reuse an instance
    across queries: ``recrw`` precomputations and DP cells are cached.
    """

    def __init__(self, dtd: DTD):
        self.dtd = dtd
        self._memo: Dict[Tuple[Path, str], OptMap] = {}
        self._qmemo: Dict[Tuple[Qualifier, str], Qualifier] = {}
        self._desc_cache: Dict[str, Optional[Dict[str, Path]]] = {}

    # -- public API --------------------------------------------------------

    def optimize(self, query: Path, context: Optional[str] = None) -> Path:
        """Optimize ``query``.  Relative queries are optimized at the
        document root type (override with ``context``); absolute
        queries at the virtual document node."""
        if isinstance(query, Absolute):
            inner = self._opt(query.inner, _DOC)
            combined = self._pruned_union(inner, _DOC)
            if combined.is_empty:
                return combined
            return Absolute(combined)
        start = self.dtd.root if context is None else context
        return self._pruned_union(self._opt(query, start), start)

    def optimize_qualifier(self, condition: Qualifier, context: str) -> Qualifier:
        return self._opt_qualifier(condition, context)

    # -- graph access with pseudo nodes ----------------------------------------

    def _children(self, node: str) -> Tuple[str, ...]:
        if node == _DOC:
            return (self.dtd.root,)
        if node in (_TEXT, _ANY) or not self.dtd.has_type(node):
            return ()
        return self.dtd.children_of(node)

    # -- the dynamic program -------------------------------------------------------

    def _opt(self, query: Path, node: str) -> OptMap:
        memo_key = (query, node)
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        result = self._compute(query, node)
        self._memo[memo_key] = result
        return result

    def _compute(self, query: Path, node: str) -> OptMap:
        if isinstance(query, Empty):
            return {}
        if node == _ANY:
            # unknown context type (recursive region): no type-specific
            # reasoning; pass the query through unchanged
            return {_ANY: query}
        if isinstance(query, EpsilonPath):
            return {node: EPSILON}
        if isinstance(query, Label):
            # case (2)
            if query.name in self._children(node):
                return {query.name: query}
            return {}
        if isinstance(query, Wildcard):
            # case (3): expand into the possible labels
            return {child: Label(child) for child in self._children(node)}
        if isinstance(query, TextStep):
            if self.dtd.has_type(node) and isinstance(
                self.dtd.production(node), Str
            ):
                return {_TEXT: query}
            return {}
        if isinstance(query, Parent):
            # upward step: target types are the DTD parents, but the
            # continuation cannot be specialized per type soundly (one
            # '..' lands on whichever parent exists), so fall back to
            # the unknown-type bucket
            if node == _DOC:
                return {}
            if self.dtd.has_type(node) and not self.dtd.parents_of(node):
                return {}  # the root type has no element parent
            return {_ANY: query}
        if isinstance(query, Slash):
            # case (4), per-target composition
            left = self._opt(query.left, node)
            result: OptMap = {}
            for mid, prefix in left.items():
                if mid == _TEXT:
                    continue
                for target, continuation in self._opt(
                    query.right, mid
                ).items():
                    _merge(result, target, slash(prefix, continuation))
            return result
        if isinstance(query, Descendant):
            return self._opt_descendant(query, node)
        if isinstance(query, Union):
            result = {}
            for branch in query.branches:
                for target, path in self._opt(branch, node).items():
                    _merge(result, target, path)
            return result
        if isinstance(query, Qualified):
            base = self._opt(query.path, node)
            result = {}
            for target, path in base.items():
                if target == _TEXT:
                    continue
                if target == _ANY:
                    rewritten = qualified(path, query.qualifier)
                else:
                    rewritten = qualified(
                        path, self._opt_qualifier(query.qualifier, target)
                    )
                if not rewritten.is_empty:
                    result[target] = rewritten
            return result
        if isinstance(query, Absolute):
            inner = self._opt(query.inner, _DOC)
            combined = self._pruned_union(inner, _DOC)
            if combined.is_empty:
                return {}
            return {target: Absolute(path) for target, path in inner.items()}
        raise TypeError("cannot optimize query node %r" % query)

    def _opt_descendant(self, query: Descendant, node: str) -> OptMap:
        # case (5): expand // into precise paths via recrw when the
        # reachable DTD subgraph is acyclic
        paths = self._descendant_paths(node)
        if paths is None:
            # recursive region: keep // and optimize only per reachable
            # type, collapsing into the unknown bucket
            inner = union(
                self._pruned_union(self._opt(query.inner, reached), reached)
                for reached in self._reachable_or_self(node)
            )
            if inner.is_empty:
                return {}
            return {_ANY: Descendant(inner)}
        result: OptMap = {}
        for descendant_node, prefix in paths.items():
            for target, continuation in self._opt(
                query.inner, descendant_node
            ).items():
                _merge(result, target, slash(prefix, continuation))
        return result

    # -- qualifier optimization (case 7 + Section 5.1) ---------------------------------

    def _opt_qualifier(self, condition: Qualifier, node: str) -> Qualifier:
        memo_key = (condition, node)
        cached = self._qmemo.get(memo_key)
        if cached is not None:
            return cached
        result = self._compute_qualifier(condition, node)
        self._qmemo[memo_key] = result
        return result

    def _compute_qualifier(self, condition: Qualifier, node: str) -> Qualifier:
        decided = evaluate_qualifier_bool(self.dtd, condition, node)
        if decided is not None:
            return QBool(decided)
        if isinstance(condition, QPath):
            optimized = self._pruned_union(
                self._opt(condition.path, node), node
            )
            return qpath(optimized)
        if isinstance(condition, QEquals):
            optimized = self._pruned_union(
                self._opt(condition.path, node), node
            )
            if optimized.is_empty:
                return QBool(False)
            return QEquals(optimized, condition.value)
        if isinstance(condition, QBool):
            return condition
        if isinstance(condition, QAttr):
            optimized = self._pruned_union(
                self._opt(condition.path, node), node
            )
            if optimized.is_empty:
                return QBool(False)
            return QAttr(condition.name, optimized)
        if isinstance(condition, QAttrEquals):
            optimized = self._pruned_union(
                self._opt(condition.path, node), node
            )
            if optimized.is_empty:
                return QBool(False)
            return QAttrEquals(condition.name, condition.value, optimized)
        if isinstance(condition, QAnd):
            left = self._opt_qualifier(condition.left, node)
            right = self._opt_qualifier(condition.right, node)
            if isinstance(left, QBool) or isinstance(right, QBool):
                return qand(left, right)
            if exclusive_conflict(self.dtd, left, right, node):
                return QBool(False)
            # containment: a conjunct implied by the other is dropped
            if self._qualifier_contained(left, right, node):
                return left
            if self._qualifier_contained(right, left, node):
                return right
            return qand(left, right)
        if isinstance(condition, QOr):
            left = self._opt_qualifier(condition.left, node)
            right = self._opt_qualifier(condition.right, node)
            if self._qualifier_contained(left, right, node):
                return right
            if self._qualifier_contained(right, left, node):
                return left
            return qor(left, right)
        if isinstance(condition, QNot):
            return qnot(self._opt_qualifier(condition.inner, node))
        raise TypeError("cannot optimize qualifier node %r" % condition)

    def _qualifier_contained(
        self, tighter: Qualifier, looser: Qualifier, node: str
    ) -> bool:
        """True when ``tighter`` implies ``looser`` at ``node`` (so the
        looser qualifier is redundant in a conjunction)."""
        tighter_graph, tighter_imprecise = build_qualifier_image(
            self.dtd, tighter, node
        )
        looser_graph, looser_imprecise = build_qualifier_image(
            self.dtd, looser, node
        )
        if tighter_imprecise or looser_imprecise:
            return False
        if tighter_graph is None or looser_graph is None:
            return False
        return node_simulated(tighter_graph, looser_graph)

    # -- union pruning (case 6) -------------------------------------------------------

    def _pruned_union(self, targets: OptMap, node: str) -> Path:
        branches: List[Path] = []
        for _, path in sorted(targets.items()):
            combined = path.branches if isinstance(path, Union) else (path,)
            branches.extend(combined)
        branches = _dedup(branches)
        if len(branches) > 1:
            branches = self._prune_contained(branches, node)
        return union(branches)

    def _prune_contained(self, branches: List[Path], node: str) -> List[Path]:
        images = [
            build_image(self.dtd, branch, node)
            if node != _DOC and self.dtd.has_type(node)
            else build_image(self.dtd, branch, self.dtd.root)
            if node == _DOC
            else None
            for branch in branches
        ]
        keep = [True] * len(branches)
        for i, smaller in enumerate(images):
            if smaller is None:
                continue
            for j, larger in enumerate(images):
                if i == j or not keep[j] or not keep[i] or larger is None:
                    continue
                if simulates(smaller, larger):
                    keep[i] = False
                    break
        return [branch for i, branch in enumerate(branches) if keep[i]]

    # -- recrw over the DTD -------------------------------------------------------------

    def _reachable_or_self(self, node: str) -> List[str]:
        if node == _DOC:
            return [_DOC] + sorted(self.dtd.reachable(self.dtd.root))
        if not self.dtd.has_type(node):
            return []
        return sorted(self.dtd.reachable(node))

    def _descendant_paths(self, node: str) -> Optional[Dict[str, Path]]:
        """``recrw(node, B)`` for every reachable ``B`` (epsilon for
        ``node`` itself), or None when the reachable subgraph is
        cyclic."""
        if node in self._desc_cache:
            return self._desc_cache[node]
        reachable = set(self._reachable_or_self(node))
        order = self._topological(node, reachable)
        if order is None:
            self._desc_cache[node] = None
            return None
        recrw: Dict[str, Path] = {node: EPSILON}
        for current in order:
            prefix = recrw.get(current)
            if prefix is None:
                continue
            for child in self._children(current):
                step = slash(prefix, Label(child))
                existing = recrw.get(child)
                recrw[child] = (
                    step if existing is None else union([existing, step])
                )
        self._desc_cache[node] = recrw
        return recrw

    def _topological(self, start: str, reachable: set) -> Optional[List[str]]:
        indegree = {key: 0 for key in reachable}
        for key in reachable:
            for child in self._children(key):
                if child in reachable:
                    indegree[child] += 1
        queue = [key for key, degree in indegree.items() if degree == 0]
        if start not in queue and indegree.get(start, 0) == 0:
            queue.append(start)
        order: List[str] = []
        while queue:
            current = queue.pop()
            order.append(current)
            for child in self._children(current):
                if child in indegree:
                    indegree[child] -= 1
                    if indegree[child] == 0:
                        queue.append(child)
        if len(order) != len(reachable):
            return None  # cycle
        return order


def _merge(result: OptMap, target: str, path: Path) -> None:
    if path.is_empty:
        return
    existing = result.get(target)
    result[target] = path if existing is None else union([existing, path])


def _dedup(branches: List[Path]) -> List[Path]:
    seen = set()
    kept = []
    for branch in branches:
        if branch.is_empty or branch in seen:
            continue
        seen.add(branch)
        kept.append(branch)
    return kept


def optimize(dtd: DTD, query: Path, context: Optional[str] = None) -> Path:
    """One-shot convenience wrapper around :class:`Optimizer`."""
    return Optimizer(dtd).optimize(query, context)
