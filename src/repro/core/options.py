"""Execution options for :meth:`repro.core.engine.SecureQueryEngine.query`.

Historically ``query()`` grew a flag per feature (``optimize``,
``project``, ``strategy``, ``use_index``); :class:`ExecutionOptions`
collapses them into one immutable value object so call sites read as
intent (``ExecutionOptions(strategy="materialized")``) and new knobs
do not widen the method signature.  The 1.x per-call boolean keywords
were removed in 2.0 — ``options=ExecutionOptions(...)`` is the only
spelling (see the migration note in ``docs/api.md``).

``to_dict``/``from_dict`` give the options a versioned wire shape so
a serialized :class:`~repro.serving.protocol.QueryRequest` can carry
its execution knobs across process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

#: The paper's approach: the view stays virtual, queries are rewritten.
STRATEGY_VIRTUAL = "virtual"
#: Materialize the view tree per document and query it directly.
STRATEGY_MATERIALIZED = "materialized"
#: Virtual views with set-at-a-time execution over the columnar
#: :class:`~repro.xmlmodel.store.NodeTable` (same answers as
#: ``"virtual"``, interval-join axis kernels instead of tree walks).
STRATEGY_COLUMNAR = "columnar"

_STRATEGIES = (STRATEGY_VIRTUAL, STRATEGY_MATERIALIZED, STRATEGY_COLUMNAR)

#: Legacy spelling of :data:`STRATEGY_VIRTUAL` (the seed API's name).
_LEGACY_STRATEGY_ALIASES = {"rewrite": STRATEGY_VIRTUAL}


@dataclass(frozen=True)
class ExecutionOptions:
    """How one query should be executed.

    ``strategy``
        ``"virtual"`` (default; the paper's rewriting approach — the
        legacy spelling ``"rewrite"`` is accepted),
        ``"columnar"`` (the same rewriting pipeline, but plans execute
        set-at-a-time over a cached columnar
        :class:`~repro.xmlmodel.store.NodeTable` — fastest on
        descendant-heavy queries; see ``docs/performance.md``), or
        ``"materialized"`` (query a cached materialized view tree).
    ``optimize``
        Run the DTD-aware optimizer on the rewritten query.
    ``project``
        Return view-projected copies (dummies relabeled, hidden
        descendants removed).  With ``False``, raw document nodes are
        returned — callers must not expose them to users.
    ``use_index``
        Build (and cache) a
        :class:`~repro.xmlmodel.index.DocumentIndex` so residual
        ``//label`` steps evaluate via binary search.
    ``use_cache``
        Serve parse/rewrite/optimize/compile results from the engine's
        plan cache.  With ``False`` the engine runs the uncached
        interpreter pipeline (the pre-plan-cache behaviour, kept for
        benchmarking baselines).
    ``trace``
        Collect per-operator execution stats (rows in/out, chosen
        kernels, qualifier short-circuits) into an EXPLAIN ANALYZE
        profile exposed as ``QueryResult.report.profile`` (see
        ``docs/observability.md``).  Off by default; tracing adds
        bookkeeping proportional to operator invocations, so leave it
        off on the serving hot path.
    ``slow_query_threshold``
        End-to-end latency (seconds) above which a query counts as
        *slow*: its audit :class:`~repro.obs.events.QueryEvent` is
        flagged ``slow`` and carries the rendered EXPLAIN ANALYZE
        profile, so outliers arrive pre-diagnosed (see
        ``docs/audit.md``).  Setting a threshold attaches a profile
        collector to every plan-path execution (the same bookkeeping
        cost as ``trace=True``), so the report's ``profile`` is
        populated too.  ``None`` (default) disables the slow-query
        log.
    ``limits``
        A :class:`~repro.robustness.governor.QueryLimits` value: a
        wall-clock deadline and/or work budgets (result rows, node
        visits, frontier rows) enforced cooperatively through every
        execution layer, raising typed ``E_DEADLINE`` / ``E_BUDGET``
        errors (see ``docs/robustness.md``).  ``None`` (default) runs
        ungoverned at zero overhead.  Limits are execution-time state
        — they are deliberately *not* part of the plan-cache key, so
        governed and ungoverned runs share compiled plans.
    """

    strategy: str = STRATEGY_VIRTUAL
    optimize: bool = True
    project: bool = True
    use_index: bool = False
    use_cache: bool = True
    trace: bool = False
    slow_query_threshold: Optional[float] = None
    limits: Optional["QueryLimits"] = None

    def __post_init__(self):
        normalized = _LEGACY_STRATEGY_ALIASES.get(self.strategy, self.strategy)
        if normalized not in _STRATEGIES:
            from repro.errors import SecurityError

            raise SecurityError(
                "unknown strategy %r (use 'virtual', 'columnar', or "
                "'materialized')" % (self.strategy,)
            )
        object.__setattr__(self, "strategy", normalized)
        threshold = self.slow_query_threshold
        if threshold is not None and (
            not isinstance(threshold, (int, float)) or threshold < 0
        ):
            from repro.errors import SecurityError

            raise SecurityError(
                "slow_query_threshold must be a non-negative number of "
                "seconds (or None), got %r" % (threshold,)
            )
        if self.limits is not None:
            from repro.robustness.governor import QueryLimits

            if not isinstance(self.limits, QueryLimits):
                from repro.errors import SecurityError

                raise SecurityError(
                    "limits must be a QueryLimits (or None), got %r"
                    % (self.limits,)
                )

    def with_(self, **changes) -> "ExecutionOptions":
        """A copy with some fields replaced."""
        return replace(self, **changes)

    # -- wire shape (see repro.serving.protocol) -----------------------

    def to_dict(self) -> dict:
        """JSON-safe export: plain scalars plus the nested ``limits``
        dict (``None`` when ungoverned)."""
        return {
            "strategy": self.strategy,
            "optimize": self.optimize,
            "project": self.project,
            "use_index": self.use_index,
            "use_cache": self.use_cache,
            "trace": self.trace,
            "slow_query_threshold": self.slow_query_threshold,
            "limits": self.limits.to_dict() if self.limits else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExecutionOptions":
        """Inverse of :meth:`to_dict`; missing keys take the engine
        defaults, unknown keys are ignored (forward compatibility)."""
        from repro.robustness.governor import QueryLimits

        limits = payload.get("limits")
        return cls(
            strategy=payload.get("strategy", STRATEGY_VIRTUAL),
            optimize=payload.get("optimize", True),
            project=payload.get("project", True),
            use_index=payload.get("use_index", False),
            use_cache=payload.get("use_cache", True),
            trace=payload.get("trace", False),
            slow_query_threshold=payload.get("slow_query_threshold"),
            limits=QueryLimits.from_dict(limits) if limits else None,
        )


#: The engine's defaults, shared so callers can derive from them.
DEFAULT_OPTIONS = ExecutionOptions()
