"""Saving and loading derived security views.

Deriving a view is cheap, but production deployments separate duties:
a security administrator derives and audits views offline, and the
query tier loads the approved definitions.  Views serialize to plain
JSON-able dictionaries; XPath annotations are stored in their surface
syntax and reparsed on load (all annotation constructs round-trip, as
the XPath property suite verifies).
"""

from __future__ import annotations

import json
from typing import Dict

from repro.errors import ViewDerivationError
from repro.dtd.parser import parse_content_model, parse_dtd
from repro.core.view import SecurityView, ViewNode
from repro.xpath.parser import parse_xpath

#: Format marker for forward compatibility.
FORMAT = "repro-security-view/1"


def view_to_dict(view: SecurityView) -> Dict:
    """A JSON-able representation of the view (including the document
    DTD it is bound to — sigma paths only make sense against it)."""
    return {
        "format": FORMAT,
        "document_dtd": view.doc_dtd.to_dtd_text(),
        "root": view.root_key,
        "nodes": [
            {
                "key": node.key,
                "label": node.label,
                "content": node.content.to_dtd_syntax(),
                "dummy": node.is_dummy,
            }
            for node in view.nodes.values()
        ],
        "sigma": [
            {"parent": parent, "child": child, "path": str(path)}
            for (parent, child), path in view.sigma.items()
        ],
        "sigma_text": {
            key: str(path) for key, path in view.sigma_text.items()
        },
        "hidden_attributes": {
            key: sorted(names)
            for key, names in view.hidden_attributes.items()
        },
        "warnings": list(view.warnings),
    }


def view_from_dict(payload: Dict) -> SecurityView:
    """Reconstruct a view saved by :func:`view_to_dict`."""
    if payload.get("format") != FORMAT:
        raise ViewDerivationError(
            "unsupported security-view format %r" % payload.get("format")
        )
    doc_dtd = parse_dtd(payload["document_dtd"])
    view = SecurityView(doc_dtd, root_key=payload["root"])
    for entry in payload["nodes"]:
        view.add_node(
            ViewNode(
                entry["key"],
                entry["label"],
                parse_content_model(entry["content"]),
                is_dummy=entry["dummy"],
            )
        )
    for entry in payload["sigma"]:
        view.set_sigma(
            entry["parent"], entry["child"], parse_xpath(entry["path"])
        )
    for key, text in payload["sigma_text"].items():
        view.sigma_text[key] = parse_xpath(text)
    for key, names in payload.get("hidden_attributes", {}).items():
        view.hidden_attributes[key] = frozenset(names)
    view.warnings.extend(payload.get("warnings", ()))
    if view.root_key not in view.nodes:
        raise ViewDerivationError(
            "saved view references missing root %r" % view.root_key
        )
    return view


def save_view(view: SecurityView, path: str) -> None:
    """Write the view to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(view_to_dict(view), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_view(path: str) -> SecurityView:
    """Load a view written by :func:`save_view`."""
    with open(path, "r", encoding="utf-8") as handle:
        return view_from_dict(json.load(handle))
