"""Engine-level query-plan cache.

The paper's views are *virtual*: every request over a security view
pays parse → rewrite → optimize before a single document node is
touched.  Those three stages depend only on ``(policy, query text,
optimize flag)`` — not on the document — so a serving engine should
pay them once per distinct query, not once per request (Mahfoud &
Imine make the same argument for recursive-view rewriting).

:class:`PlanCache` is a bounded LRU over :class:`CompiledQuery`
entries.  Each entry carries the full compilation pipeline for one
query — parsed, rewritten, and optimized ASTs plus the lazily built
executable plans (:mod:`repro.xpath.plan`) — together with per-stage
compile timings.  The cache keeps hit/miss/eviction/invalidation
counters for observability; the engine wires invalidation into
``register_policy``, ``drop_policy``, and ``invalidate``.

For recursive views the rewritten query additionally depends on the
unfolding depth (the document height, Section 4.2), so the engine
appends that depth to the key; it is ``None`` for the common
non-recursive case.  The key further carries the *execution shape* —
the chosen strategy (``virtual`` vs ``columnar``) and whether a
document index is attached — so flipping ``--strategy`` or
``--use-index`` on a warm cache can never serve a plan entry primed
for the other backend.

The cache is thread-safe: an LRU lookup *mutates* the recency order
(``move_to_end``), so even read-mostly serving traffic hits the
underlying ``OrderedDict`` with writes.  One lock guards every
entry-map operation; entries themselves are immutable after build
except for the lazily compiled plans, which the engine builds under
its own per-entry lock (see
:meth:`repro.core.engine.SecureQueryEngine._whole_query_plan`).
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock
from typing import Dict, Optional, Tuple

from repro.obs.metrics import record as _metric_record


class CompiledQuery:
    """One cached compilation: the pipeline stages for a single
    ``(policy, query, optimize, strategy, use_index)`` combination.

    ``plan`` (whole-query execution) and ``projected`` (per-view-target
    plans for projected results) are built lazily by the engine on the
    first execution that needs them, so a cache entry never compiles
    plans a workload does not use.  ``timings`` maps stage names
    (``parse``, ``rewrite``, ``optimize``, ``compile``) to seconds
    spent building this entry.  ``strategy`` and ``use_index`` record
    the execution shape the entry was compiled for; both are part of
    the cache key.  ``build_lock`` serializes the lazy plan builds so
    concurrent first executions of a shared entry compile once and
    then share the immutable plan."""

    __slots__ = (
        "policy",
        "query_text",
        "optimize",
        "height",
        "strategy",
        "use_index",
        "parsed",
        "rewritten",
        "optimized",
        "view",
        "plan",
        "projected",
        "fingerprint",
        "timings",
        "hits",
        "build_lock",
    )

    def __init__(
        self,
        policy: str,
        query_text: str,
        optimize: bool,
        height: Optional[int],
        parsed,
        rewritten,
        optimized,
        view,
        timings: Dict[str, float],
        strategy: str = "virtual",
        use_index: bool = False,
    ):
        self.policy = policy
        self.query_text = query_text
        self.optimize = optimize
        self.height = height
        self.strategy = strategy
        self.use_index = use_index
        self.parsed = parsed
        self.rewritten = rewritten
        self.optimized = optimized
        self.view = view
        self.plan = None
        self.projected = None
        self.fingerprint = None
        self.timings = timings
        self.hits = 0
        self.build_lock = Lock()

    @property
    def key(self) -> Tuple:
        return (
            self.policy,
            self.query_text,
            self.optimize,
            self.height,
            self.strategy,
            self.use_index,
        )

    def __repr__(self):
        return "CompiledQuery(policy=%r, query=%r, optimize=%r, hits=%d)" % (
            self.policy,
            self.query_text,
            self.optimize,
            self.hits,
        )


class PlanCacheStats:
    """A point-in-time snapshot of cache counters."""

    __slots__ = (
        "hits",
        "misses",
        "evictions",
        "invalidations",
        "size",
        "capacity",
    )

    def __init__(self, hits, misses, evictions, invalidations, size, capacity):
        self.hits = hits
        self.misses = misses
        self.evictions = evictions
        self.invalidations = invalidations
        self.size = size
        self.capacity = capacity

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self):
        return (
            "PlanCacheStats(hits=%d, misses=%d, evictions=%d, "
            "invalidations=%d, size=%d, capacity=%d, hit_rate=%.3f)"
            % (
                self.hits,
                self.misses,
                self.evictions,
                self.invalidations,
                self.size,
                self.capacity,
                self.hit_rate,
            )
        )


class PlanCache:
    """Bounded LRU cache of :class:`CompiledQuery` entries.

    Keys are ``(policy, query_text, optimize_flag, height, strategy,
    use_index)`` tuples (the cache itself is key-agnostic — only the
    leading policy component matters, for invalidation).  A
    ``capacity`` of 0 disables caching (every lookup misses, stores
    are dropped) without the engine needing a special case."""

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ValueError("plan cache capacity must be >= 0")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, CompiledQuery]" = OrderedDict()
        self._lock = Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # -- lookup / store --------------------------------------------------

    def get(self, key: Tuple) -> Optional[CompiledQuery]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                _metric_record("plan_cache.misses")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            entry.hits += 1
        _metric_record("plan_cache.hits")
        return entry

    def put(self, key: Tuple, entry: CompiledQuery) -> None:
        if self.capacity == 0:
            return
        evicted = 0
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted:
            _metric_record("plan_cache.evictions", evicted)

    # -- invalidation ----------------------------------------------------

    def invalidate(self, policy: Optional[str] = None) -> int:
        """Drop all entries of ``policy`` (all policies when ``None``).
        Returns the number of entries removed."""
        with self._lock:
            if policy is None:
                removed = len(self._entries)
                self._entries.clear()
            else:
                stale = [
                    key for key in self._entries if key[0] == policy
                ]
                for key in stale:
                    del self._entries[key]
                removed = len(stale)
            self.invalidations += removed
        if removed:
            _metric_record("plan_cache.invalidations", removed)
        return removed

    def clear(self) -> None:
        """Drop every entry and reset all counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.invalidations = 0

    # -- introspection ---------------------------------------------------

    def stats(self) -> PlanCacheStats:
        with self._lock:
            return PlanCacheStats(
                self.hits,
                self.misses,
                self.evictions,
                self.invalidations,
                len(self._entries),
                self.capacity,
            )

    def keys(self):
        """Cache keys in LRU order (least recently used first)."""
        with self._lock:
            return list(self._entries)

    def entries(self):
        """A snapshot of cached entries in LRU order, for byte
        accounting and workload introspection.  Entries are shared
        (not copied): callers must treat them as read-only."""
        with self._lock:
            return list(self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries
