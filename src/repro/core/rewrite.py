"""Algorithm ``rewrite`` (Fig. 6): XPath query rewriting over views.

Transforms a query ``p`` posed against a security view into an
equivalent query ``p_t`` over the original document, by dynamic
programming over pairs ``(sub-query of p, view-DTD node)``:
``rw(p', A)`` is the local translation of ``p'`` at view node ``A`` and
``reach(p', A)`` the view nodes reachable from ``A`` via ``p'``.

Implementation notes (see DESIGN.md):

* ``rw(p', A)`` is kept *per target node*: a mapping
  ``target view node -> document path`` whose union is the paper's
  ``rw`` value, while ``reach`` is its key set.  This strengthens the
  figure's case (4): the printed combination
  ``rw(p1, A)/(U_B rw(p2, B))`` may concatenate a continuation
  ``rw(p2, B)`` — only valid at ``B`` elements — onto prefixes landing
  on *other* element types, which over-selects when accessibility is
  context-dependent.  Tracking targets individually composes each
  continuation only with the prefixes that actually land on its type.
* ``reach(//, A)`` includes ``A`` itself (descendant-*or-self*), as
  Example 4.1's ``(treatment U epsilon)`` output requires.
* The ``recProc`` precomputation builds ``recrw(A, B)`` — one XPath
  query capturing *all* view paths from ``A`` to ``B`` translated
  through sigma — by processing nodes in topological order and reusing
  the already-built prefix expression of each intermediate node
  (the figure's symbolic ``Z_x`` variables correspond to shared
  sub-expression objects here), so construction stays polynomial.
* Rewriting requires a DAG view; recursive views must first be
  unfolded (Section 4.2, :mod:`repro.core.unfold`).

The algorithm runs in ``O(|p| * |Dv|^2)`` (Theorem 4.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import RewriteError
from repro.dtd.content import Str
from repro.core.view import SecurityView
from repro.xpath.ast import (
    Absolute,
    Descendant,
    EPSILON,
    Empty,
    EpsilonPath,
    Label,
    Parent,
    Path,
    QAnd,
    QAttr,
    QAttrEquals,
    QBool,
    QEquals,
    QNot,
    QOr,
    QPath,
    Qualified,
    Qualifier,
    Slash,
    TextStep,
    Union,
    Wildcard,
    qand,
    qnot,
    qor,
    qpath,
    qualified,
    slash,
    union,
)

#: Pseudo view-node key representing the virtual document node above
#: the view root (context of absolute queries).
DOCUMENT_KEY = "#document"

#: Pseudo target prefix for text results (they admit no further steps).
_TEXT_TARGET = "#text"

#: ``rw`` values: target view-node key -> document path landing there.
RwMap = Dict[str, Path]


class Rewriter:
    """Rewrites queries over one security view.  Precomputations
    (``recProc``) are cached, so reuse one instance per view when
    rewriting many queries."""

    def __init__(self, view: SecurityView):
        if view.is_recursive():
            raise RewriteError(
                "rewrite requires a DAG view DTD; unfold the recursive "
                "view first (repro.core.unfold.unfold_view)"
            )
        self.view = view
        self._memo: Dict[Tuple[Path, str], RwMap] = {}
        self._qmemo: Dict[Tuple[Qualifier, str], Qualifier] = {}
        self._desc_cache: Dict[str, Dict[str, Path]] = {}

    # -- public API ------------------------------------------------------

    def rewrite(self, query: Path, context_key: Optional[str] = None) -> Path:
        """Rewrite ``query`` (over the view DTD) into an equivalent
        query over the document.  Relative queries are rewritten at the
        view root (pass ``context_key`` to override); absolute queries
        are anchored at the virtual document node."""
        if isinstance(query, Absolute):
            inner = self._rw(query.inner, DOCUMENT_KEY)
            combined = union(inner.values())
            if combined.is_empty:
                return combined
            return Absolute(combined)
        context = self.view.root_key if context_key is None else context_key
        return union(self._rw(query, context).values())

    def reach(self, query: Path, context_key: Optional[str] = None) -> List[str]:
        """View nodes reachable from the context via ``query``."""
        if isinstance(query, Absolute):
            return sorted(self._rw(query.inner, DOCUMENT_KEY))
        context = self.view.root_key if context_key is None else context_key
        return sorted(self._rw(query, context))

    # -- view-graph access with the virtual document node -------------------

    def _children(self, key: str) -> Tuple[str, ...]:
        if key == DOCUMENT_KEY:
            return (self.view.root_key,)
        if key.startswith(_TEXT_TARGET):
            return ()
        return self.view.children_of(key)

    def _sigma(self, parent: str, child: str) -> Path:
        if parent == DOCUMENT_KEY:
            return Label(self.view.doc_dtd.root)
        return self.view.sigma_of(parent, child)

    def _label(self, key: str) -> str:
        if key == DOCUMENT_KEY:
            return DOCUMENT_KEY
        return self.view.node(key).label

    def _is_text_key(self, key: str) -> bool:
        return key.startswith(_TEXT_TARGET)

    # -- the dynamic program -----------------------------------------------------

    def _rw(self, query: Path, key: str) -> RwMap:
        memo_key = (query, key)
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        result = self._compute_rw(query, key)
        self._memo[memo_key] = result
        return result

    def _compute_rw(self, query: Path, key: str) -> RwMap:
        if isinstance(query, Empty):
            return {}
        if isinstance(query, EpsilonPath):
            return {key: EPSILON}
        if isinstance(query, Label):
            # case (2): sigma annotations of the matching child edges
            result: RwMap = {}
            for child in self._children(key):
                if self._label(child) == query.name:
                    _merge(result, child, self._sigma(key, child))
            return result
        if isinstance(query, Wildcard):
            # case (3): union of all child annotations
            result = {}
            for child in self._children(key):
                _merge(result, child, self._sigma(key, child))
            return result
        if isinstance(query, TextStep):
            if key == DOCUMENT_KEY or self._is_text_key(key):
                return {}
            node = self.view.node(key)
            if isinstance(node.content, Str):
                text_path = self.view.sigma_text.get(key)
                if text_path is not None:
                    return {_TEXT_TARGET + ":" + key: text_path}
            return {}
        if isinstance(query, Slash):
            # case (4), per-target composition
            left = self._rw(query.left, key)
            result = {}
            for mid_key, prefix in left.items():
                if self._is_text_key(mid_key):
                    continue
                for target, continuation in self._rw(
                    query.right, mid_key
                ).items():
                    _merge(result, target, slash(prefix, continuation))
            return result
        if isinstance(query, Descendant):
            # case (5): precomputed recrw over the view DAG
            result = {}
            for descendant_key, prefix in self._descendant_paths(key).items():
                for target, continuation in self._rw(
                    query.inner, descendant_key
                ).items():
                    _merge(result, target, slash(prefix, continuation))
            return result
        if isinstance(query, Union):
            result = {}
            for branch in query.branches:
                for target, path in self._rw(branch, key).items():
                    _merge(result, target, path)
            return result
        if isinstance(query, Qualified):
            base = self._rw(query.path, key)
            result = {}
            for target, path in base.items():
                if self._is_text_key(target):
                    continue  # qualifiers apply to element nodes
                condition = self._rw_qualifier(query.qualifier, target)
                rewritten = qualified(path, condition)
                if not rewritten.is_empty:
                    result[target] = rewritten
            return result
        if isinstance(query, Absolute):
            inner = self._rw(query.inner, DOCUMENT_KEY)
            combined = union(inner.values())
            if combined.is_empty:
                return {}
            return {
                target: Absolute(path) for target, path in inner.items()
            }
        if isinstance(query, Parent):
            raise RewriteError(
                "upward axes ('..') cannot be rewritten over security "
                "views: one view edge may correspond to a multi-step "
                "document path, so the parent of a view node has no "
                "fixed document-level counterpart (Section 7 lists "
                "larger fragments as future work)"
            )
        raise RewriteError("cannot rewrite query node %r" % query)

    # -- qualifiers (cases 7-12) ----------------------------------------------------

    def _rw_qualifier(self, condition: Qualifier, key: str) -> Qualifier:
        memo_key = (condition, key)
        cached = self._qmemo.get(memo_key)
        if cached is not None:
            return cached
        result = self._compute_rw_qualifier(condition, key)
        self._qmemo[memo_key] = result
        return result

    def _compute_rw_qualifier(self, condition: Qualifier, key: str) -> Qualifier:
        if isinstance(condition, QBool):
            return condition
        if isinstance(condition, QPath):
            return qpath(union(self._rw(condition.path, key).values()))
        if isinstance(condition, QEquals):
            path = union(self._rw(condition.path, key).values())
            if path.is_empty:
                return QBool(False)
            return QEquals(path, condition.value)
        if isinstance(condition, (QAttr, QAttrEquals)):
            # attributes of view elements are those of the underlying
            # accessible document elements — unless hidden by an
            # attribute-level annotation, in which case the view simply
            # has no such attribute.  The path prefix is rewritten
            # per-target; targets whose attribute is hidden drop out.
            name = condition.name
            branches = []
            for target, rewritten_path in self._rw(
                condition.path, key
            ).items():
                if self._is_text_key(target):
                    continue
                if target != DOCUMENT_KEY and name in (
                    self.view.hidden_attributes_of(target)
                ):
                    continue
                branches.append(rewritten_path)
            combined = union(branches)
            if combined.is_empty:
                return QBool(False)
            if isinstance(condition, QAttr):
                return QAttr(name, combined)
            return QAttrEquals(name, condition.value, combined)
        if isinstance(condition, QAnd):
            return qand(
                self._rw_qualifier(condition.left, key),
                self._rw_qualifier(condition.right, key),
            )
        if isinstance(condition, QOr):
            return qor(
                self._rw_qualifier(condition.left, key),
                self._rw_qualifier(condition.right, key),
            )
        if isinstance(condition, QNot):
            return qnot(self._rw_qualifier(condition.inner, key))
        raise RewriteError("cannot rewrite qualifier node %r" % condition)

    # -- recProc (Fig. 6, bottom) ----------------------------------------------------

    def _descendant_paths(self, start: str) -> Dict[str, Path]:
        """``recrw(start, B)`` for every view node ``B`` reachable from
        ``start`` (including ``start`` itself, with path epsilon)."""
        cached = self._desc_cache.get(start)
        if cached is not None:
            return cached
        reachable = self._reachable_from(start)
        order = self._topological(start, reachable)
        recrw: Dict[str, Path] = {start: EPSILON}
        for node_key in order:
            prefix = recrw.get(node_key)
            if prefix is None:
                continue
            for child in self._children(node_key):
                step = slash(prefix, self._sigma(node_key, child))
                existing = recrw.get(child)
                recrw[child] = (
                    step if existing is None else union([existing, step])
                )
        self._desc_cache[start] = recrw
        return recrw

    def _reachable_from(self, start: str) -> set:
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for child in self._children(current):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        return seen

    def _topological(self, start: str, reachable: set) -> List[str]:
        indegree = {key: 0 for key in reachable}
        for key in reachable:
            for child in self._children(key):
                if child in reachable:
                    indegree[child] += 1
        queue = [key for key, degree in indegree.items() if degree == 0]
        order: List[str] = []
        while queue:
            current = queue.pop()
            order.append(current)
            for child in self._children(current):
                indegree[child] -= 1
                if indegree[child] == 0:
                    queue.append(child)
        if len(order) != len(reachable):
            raise RewriteError("view DTD has a cycle; unfold it first")
        return order


def _merge(result: RwMap, target: str, path: Path) -> None:
    if path.is_empty:
        return
    existing = result.get(target)
    result[target] = path if existing is None else union([existing, path])


def rewrite(
    view: SecurityView, query: Path, context_key: Optional[str] = None
) -> Path:
    """One-shot convenience wrapper around :class:`Rewriter`."""
    return Rewriter(view).rewrite(query, context_key)
