"""Graph simulation with qualifier direction flip (Section 5.1).

``simu(v1, v2)`` holds iff

1. ``v1`` and ``v2`` carry the same label;
2. every non-qualifier child ``x`` of ``v1`` is simulated by some
   child ``y`` of ``v2``;
3. every qualifier child ``y`` of ``v2`` is matched by a qualifier
   child ``x`` of ``v1`` with ``simu(y, x)`` — note the *reversed*
   direction: a qualifier on ``v2`` is an extra requirement of the
   containing query, so the contained query must impose it too.

``image(p1, A)`` simulated by ``image(p2, A)`` implies ``p1`` is
contained in ``p2`` at ``A`` (Proposition 5.1); the converse may fail,
making the test approximate but sound.  The fixpoint is the standard
quadratic refinement, extended to run over pairs drawn from *both*
graphs (the direction flip mixes them).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.image import ImageGraph, INode


def _collect(node: INode, seen: Dict[int, INode]) -> None:
    if id(node) in seen:
        return
    seen[id(node)] = node
    for child in node.children:
        _collect(child, seen)
    for qual in node.quals:
        _collect(qual, seen)


def simulates(smaller: ImageGraph, larger: ImageGraph) -> bool:
    """True iff ``smaller`` is simulated by ``larger`` (and neither
    graph is marked imprecise), i.e. the query of ``smaller`` is
    (approximately) contained in the query of ``larger``."""
    if smaller.imprecise or larger.imprecise:
        return False
    return node_simulated(smaller.root, larger.root)


def node_simulated(small_root: INode, large_root: INode) -> bool:
    """The raw fixpoint on roots (no imprecision guard)."""
    nodes: Dict[int, INode] = {}
    _collect(small_root, nodes)
    _collect(large_root, nodes)
    ordered: List[INode] = list(nodes.values())

    sim: Dict[Tuple[int, int], bool] = {}
    for a in ordered:
        for b in ordered:
            sim[(id(a), id(b))] = a.label == b.label

    changed = True
    while changed:
        changed = False
        for a in ordered:
            for b in ordered:
                key = (id(a), id(b))
                if not sim[key]:
                    continue
                if not _check(a, b, sim):
                    sim[key] = False
                    changed = True
    return sim[(id(small_root), id(large_root))]


def _check(a: INode, b: INode, sim: Dict[Tuple[int, int], bool]) -> bool:
    # rule 2: children of a covered by children of b
    for x in a.children:
        if not any(sim[(id(x), id(y))] for y in b.children):
            return False
    # rule 3 (flipped): qualifiers of b implied by qualifiers of a
    for y in b.quals:
        if not any(sim[(id(y), id(x))] for x in a.quals):
            return False
    return True
