"""Access specifications ``S = (D, ann)`` (Section 3.2).

An access specification extends a document DTD with a partial mapping
``ann`` that annotates *edges* of the DTD graph: for a production
``A -> alpha`` and a child type ``B`` in ``alpha``, ``ann(A, B)`` is

* ``Y``  — ``B`` children of ``A`` elements are accessible,
* ``N``  — they are inaccessible,
* ``[q]`` — they are conditionally accessible (``q`` is an XPath
  qualifier of the fragment ``C``, evaluated at the ``B`` child).

Unannotated edges inherit the accessibility of the parent; explicit
annotations override.  The root is annotated ``Y`` by default.

Qualifiers may mention ``$parameters`` (the paper's ``$wardNo``);
:meth:`AccessSpec.bind` produces a concrete specification.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple, Union

from repro.errors import SpecificationError
from repro.dtd.content import TEXT_SYMBOL
from repro.dtd.dtd import DTD
from repro.xpath.ast import Qualifier, substitute_qualifier
from repro.xpath.parser import parse_qualifier


class _Atom:
    """Y / N annotation markers (singletons with readable repr)."""

    __slots__ = ("symbol",)

    def __init__(self, symbol: str):
        self.symbol = symbol

    def __repr__(self):
        return self.symbol


#: The unconditional "accessible" annotation.
ANN_Y = _Atom("Y")
#: The unconditional "inaccessible" annotation.
ANN_N = _Atom("N")


class CondAnnotation:
    """A conditional annotation ``[q]``."""

    __slots__ = ("qualifier",)

    def __init__(self, qualifier: Qualifier):
        self.qualifier = qualifier

    def __eq__(self, other):
        return (
            isinstance(other, CondAnnotation)
            and self.qualifier == other.qualifier
        )

    def __hash__(self):
        return hash(("CondAnnotation", self.qualifier))

    def __repr__(self):
        return "[%s]" % self.qualifier


Annotation = Union[_Atom, CondAnnotation]

#: The pseudo child type used to annotate text content of a ``str``
#: production, as in the paper's case (4) "ann(A, str) = N".
STR_CHILD = TEXT_SYMBOL


class AccessSpec:
    """An access specification ``S = (D, ann)``.

    ``annotations`` maps ``(parent type, child type)`` edges to
    annotations; the child type may be :data:`STR_CHILD` to annotate
    text content.  String shorthand is accepted: ``"Y"``, ``"N"``, or a
    qualifier string such as ``"[*/patient/wardNo = $wardNo]"``.
    """

    def __init__(
        self,
        dtd: DTD,
        annotations: Optional[Dict[Tuple[str, str], object]] = None,
        name: str = "spec",
    ):
        self.dtd = dtd
        self.name = name
        self._ann: Dict[Tuple[str, str], Annotation] = {}
        self._attr_ann: Dict[Tuple[str, str], Annotation] = {}
        if annotations:
            for (parent, child), value in annotations.items():
                self.annotate(parent, child, value)

    # -- construction ------------------------------------------------------

    def annotate(self, parent: str, child: str, value) -> "AccessSpec":
        """Set ``ann(parent, child)``; returns self for chaining."""
        annotation = _coerce_annotation(value)
        if not self.dtd.has_type(parent):
            raise SpecificationError(
                "annotation on unknown element type %r" % parent
            )
        if child == STR_CHILD:
            if not self.dtd.production(parent).mentions_text():
                raise SpecificationError(
                    "ann(%s, str): production of %r has no text content"
                    % (parent, parent)
                )
        elif not self.dtd.is_child(parent, child):
            raise SpecificationError(
                "annotation on edge (%s, %s) absent from the DTD graph"
                % (parent, child)
            )
        if parent == self.dtd.root and child == self.dtd.root:
            raise SpecificationError("the root is always annotated Y")
        self._ann[(parent, child)] = annotation
        return self

    def remove(self, parent: str, child: str) -> "AccessSpec":
        """Remove an explicit annotation (the edge reverts to
        inheritance); returns self for chaining."""
        self._ann.pop((parent, child), None)
        return self

    def annotate_attribute(
        self, element: str, attribute: str, value
    ) -> "AccessSpec":
        """Attribute-level access control (the paper's "attributes can
        be easily incorporated" extension): ``Y`` or ``N`` on one
        attribute of an element type.  ``N``-annotated attributes are
        stripped from security views; unannotated attributes inherit
        the element's accessibility."""
        annotation = _coerce_annotation(value)
        if isinstance(annotation, CondAnnotation):
            raise SpecificationError(
                "attribute annotations must be Y or N (conditions are "
                "only supported on element edges)"
            )
        if not self.dtd.has_type(element):
            raise SpecificationError(
                "attribute annotation on unknown element type %r" % element
            )
        declarations = self.dtd.attribute_decls(element)
        if declarations and attribute not in declarations:
            raise SpecificationError(
                "attribute %r is not declared on %r" % (attribute, element)
            )
        self._attr_ann[(element, attribute)] = annotation
        return self

    def hidden_attributes(self, element: str) -> frozenset:
        """Names of attributes hidden on an element type."""
        return frozenset(
            attribute
            for (owner, attribute), annotation in self._attr_ann.items()
            if owner == element and annotation is ANN_N
        )

    def attribute_annotations(self) -> Dict[Tuple[str, str], Annotation]:
        return dict(self._attr_ann)

    # -- lookup ------------------------------------------------------------

    def ann(self, parent: str, child: str) -> Optional[Annotation]:
        """The explicit annotation of the edge, or None (inherit)."""
        return self._ann.get((parent, child))

    def annotations(self) -> Dict[Tuple[str, str], Annotation]:
        return dict(self._ann)

    def is_explicit(self, parent: str, child: str) -> bool:
        return (parent, child) in self._ann

    # -- parameters -----------------------------------------------------------

    def parameters(self) -> set:
        """Names of all ``$parameters`` used by qualifiers."""
        names = set()
        for annotation in self._ann.values():
            if isinstance(annotation, CondAnnotation):
                # piggyback on the Path parameter scan via a wrapper
                from repro.xpath.ast import EPSILON, qualified

                names |= qualified(EPSILON, annotation.qualifier).parameters()
        return names

    def bind(self, **bindings: str) -> "AccessSpec":
        """Substitute parameters; returns a new concrete specification.

        Raises :class:`SpecificationError` if any parameter remains
        unbound afterwards.
        """
        bound = AccessSpec(self.dtd, name=self.name)
        for edge, annotation in self._ann.items():
            if isinstance(annotation, CondAnnotation):
                try:
                    qualifier = substitute_qualifier(
                        annotation.qualifier, bindings
                    )
                except KeyError as missing:
                    raise SpecificationError(
                        "unbound parameter $%s in ann%r" % (missing.args[0], edge)
                    ) from None
                bound._ann[edge] = CondAnnotation(qualifier)
            else:
                bound._ann[edge] = annotation
        bound._attr_ann = dict(self._attr_ann)
        remaining = bound.parameters()
        if remaining:
            raise SpecificationError(
                "parameters left unbound: %s"
                % ", ".join("$" + name for name in sorted(remaining))
            )
        return bound

    # -- static semantics ------------------------------------------------------

    def type_accessibility(self) -> Dict[Tuple[str, str], str]:
        """Resolve inheritance *statically over the DTD graph*: for
        every edge ``(A, B)`` reachable from the root, classify it as
        ``"Y"``, ``"N"``, or ``"cond"``.

        Because inheritance follows document paths, an edge's effective
        annotation is path-dependent only through its *explicit*
        annotations; an unannotated edge inherits from the parent
        context.  This resolver computes, for every element type, the
        set of accessibility states it can be reached in; it is the
        basis of the derivation algorithm's accessible/inaccessible
        processing split (Section 3.4).
        """
        states: Dict[str, set] = {self.dtd.root: {"acc"}}
        frontier = [self.dtd.root]
        edge_class: Dict[Tuple[str, str], str] = {}
        while frontier:
            parent = frontier.pop()
            for child in self.dtd.children_of(parent):
                annotation = self.ann(parent, child)
                for parent_state in tuple(states.get(parent, ())):
                    if annotation is ANN_Y:
                        child_state = "acc"
                        edge_class[(parent, child)] = "Y"
                    elif annotation is ANN_N:
                        child_state = "inacc"
                        edge_class[(parent, child)] = "N"
                    elif isinstance(annotation, CondAnnotation):
                        child_state = "acc"
                        edge_class[(parent, child)] = "cond"
                    else:
                        child_state = (
                            "acc" if parent_state == "acc" else "inacc"
                        )
                        edge_class.setdefault(
                            (parent, child),
                            "Y" if child_state == "acc" else "N",
                        )
                    known = states.setdefault(child, set())
                    if child_state not in known:
                        known.add(child_state)
                        frontier.append(child)
        return edge_class

    def __repr__(self):
        return "AccessSpec(%r, %d annotations)" % (self.name, len(self._ann))


def _coerce_annotation(value) -> Annotation:
    if value is ANN_Y or value is ANN_N or isinstance(value, CondAnnotation):
        return value
    if isinstance(value, Qualifier):
        return CondAnnotation(value)
    if isinstance(value, str):
        text = value.strip()
        if text == "Y":
            return ANN_Y
        if text == "N":
            return ANN_N
        return CondAnnotation(parse_qualifier(text))
    raise SpecificationError("cannot interpret annotation %r" % (value,))


def spec_from_edges(
    dtd: DTD,
    edges: Iterable[Tuple[str, str, object]],
    name: str = "spec",
) -> AccessSpec:
    """Build a spec from ``(parent, child, annotation)`` triples."""
    spec = AccessSpec(dtd, name=name)
    for parent, child, value in edges:
        spec.annotate(parent, child, value)
    return spec


def parse_spec_text(dtd: DTD, text: str, name: str = "spec") -> AccessSpec:
    """Parse the simple line-oriented specification format used by the
    command-line tool::

        # nurse policy (Example 3.1)
        hospital dept [*/patient/wardNo = $wardNo]
        dept clinicalTrial N
        clinicalTrial patientInfo Y

    Each non-comment line is ``parent child annotation`` where the
    annotation is ``Y``, ``N``, or a bracketed qualifier (which may
    contain spaces).
    """
    spec = AccessSpec(dtd, name=name)
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 2)
        if len(parts) != 3:
            raise SpecificationError(
                "spec line %d: expected 'parent child annotation', got %r"
                % (line_number, raw)
            )
        parent, child, annotation = parts
        try:
            spec.annotate(parent, child, annotation)
        except SpecificationError as error:
            raise SpecificationError(
                "spec line %d: %s" % (line_number, error)
            ) from None
    return spec
