"""Unfolding of recursive security views (Section 4.2).

A query like ``//b`` over a recursive view DTD cannot always be
rewritten into an XPath query over the document: the paths from the
root to ``b`` form a regular language such as ``(a/c)*/b``, which plain
XPath cannot express.  The paper's solution: since a security view is
always queried against a *concrete* document ``T`` whose height is
known, recursive view nodes can be *unfolded* level by level down to
that height, producing a DAG view DTD that ``T`` is guaranteed to
conform to; Algorithm ``rewrite`` then applies as before.

Unfolding replicates each view node per depth level (key ``A@k``;
label preserved), applying the DTD's *non-recursive rules* near the
bottom: a child whose minimum instance height does not fit in the
remaining budget is dropped from star/choice positions (documents of
the given height cannot contain it there anyway), and a node whose
required children cannot fit is infeasible and removed from its
parents' alternatives.

The unfolded view is internal machinery: its ``exposed_dtd`` is never
shown to users (the user-facing DTD is the original recursive one).
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.errors import ViewDerivationError
from repro.dtd.content import (
    Choice,
    ContentModel,
    Epsilon,
    EPSILON as EPSILON_CONTENT,
    Name,
    Seq,
    Star,
    Str,
)
from repro.core.view import SecurityView, ViewNode


def view_min_heights(view: SecurityView) -> Dict[str, float]:
    """Minimum instance-subtree height per view node (leaf = 1);
    ``inf`` for nodes with no finite instance."""
    heights: Dict[str, float] = {key: math.inf for key in view.nodes}

    def content_height(content: ContentModel) -> float:
        if isinstance(content, (Str, Epsilon)):
            return 0.0
        if isinstance(content, Name):
            return heights[content.name]
        if isinstance(content, Seq):
            return max(content_height(item) for item in content.items)
        if isinstance(content, Choice):
            return min(content_height(item) for item in content.items)
        if isinstance(content, Star):
            return 0.0
        raise ViewDerivationError("unexpected content %r" % content)

    changed = True
    while changed:
        changed = False
        for key, node in view.nodes.items():
            candidate = 1.0 + content_height(node.content)
            if candidate < heights[key]:
                heights[key] = candidate
                changed = True
    return heights


def unfold_view(view: SecurityView, height: int) -> SecurityView:
    """Unfold ``view`` into a DAG sufficient for documents whose view
    image has element height at most ``height``.

    For non-recursive views the input is returned unchanged.  Raises
    :class:`ViewDerivationError` if the view is inconsistent (no
    finite instances) or ``height`` is below the minimum instance
    height of the root.
    """
    if not view.is_recursive():
        return view
    heights = view_min_heights(view)
    root_height = heights[view.root_key]
    if root_height == math.inf:
        raise ViewDerivationError(
            "cannot unfold: the view DTD admits no finite instances"
        )
    if height < root_height:
        raise ViewDerivationError(
            "cannot unfold to height %d: minimum view instance height is %d"
            % (height, int(root_height))
        )

    unfolded = SecurityView(view.doc_dtd, root_key=_key_at(view.root_key, 1))
    unfolded.warnings.extend(view.warnings)
    pending = [(view.root_key, 1)]
    created = set()
    while pending:
        original_key, level = pending.pop()
        new_key = _key_at(original_key, level)
        if new_key in created:
            continue
        created.add(new_key)
        node = view.node(original_key)
        remaining = height - level  # height budget for children subtrees
        content = _prune_content(node.content, heights, remaining)
        renamed = _shift_content(content, level + 1)
        unfolded.add_node(
            ViewNode(new_key, node.label, renamed, is_dummy=node.is_dummy)
        )
        if original_key in view.sigma_text:
            unfolded.sigma_text[new_key] = view.sigma_text[original_key]
        hidden = view.hidden_attributes_of(original_key)
        if hidden:
            unfolded.hidden_attributes[new_key] = hidden
        for child in _content_names(content):
            child_key = _key_at(child, level + 1)
            unfolded.set_sigma(
                new_key, child_key, view.sigma_of(original_key, child)
            )
            pending.append((child, level + 1))
    return unfolded


def _key_at(key: str, level: int) -> str:
    return "%s@%d" % (key, level)


def _content_names(content: ContentModel) -> Tuple[str, ...]:
    seen = set()
    ordered = []
    for name in content.child_names():
        if name not in seen:
            seen.add(name)
            ordered.append(name)
    return tuple(ordered)


def _prune_content(
    content: ContentModel, heights: Dict[str, float], remaining: int
) -> ContentModel:
    """Apply the non-recursive rules: drop alternatives/repetitions
    that cannot fit in the remaining height budget."""
    if isinstance(content, (Str, Epsilon)):
        return content
    if isinstance(content, Name):
        if heights[content.name] > remaining:
            raise ViewDerivationError(
                "unfolding failed: required child %r does not fit in the "
                "height budget" % content.name
            )
        return content
    if isinstance(content, Seq):
        items = [
            _prune_content(item, heights, remaining) for item in content.items
        ]
        items = [item for item in items if not isinstance(item, Epsilon)]
        if not items:
            return EPSILON_CONTENT
        if len(items) == 1:
            return items[0]
        return Seq(items)
    if isinstance(content, Choice):
        feasible = []
        for item in content.items:
            try:
                feasible.append(_prune_content(item, heights, remaining))
            except ViewDerivationError:
                continue
        if not feasible:
            raise ViewDerivationError(
                "unfolding failed: no alternative of a choice production "
                "fits in the height budget"
            )
        if len(feasible) == 1:
            return feasible[0]
        return Choice(feasible)
    if isinstance(content, Star):
        inner = content.item
        if isinstance(inner, Name) and heights[inner.name] > remaining:
            # the non-recursive rule: a -> b, a*  becomes  a -> b
            return EPSILON_CONTENT
        return Star(inner)
    raise ViewDerivationError("unexpected content %r" % content)


def _shift_content(content: ContentModel, level: int) -> ContentModel:
    """Rename every name atom to its level-``level`` copy."""
    if isinstance(content, (Str, Epsilon)):
        return content
    if isinstance(content, Name):
        return Name(_key_at(content.name, level))
    if isinstance(content, Seq):
        return Seq([_shift_content(item, level) for item in content.items])
    if isinstance(content, Choice):
        return Choice([_shift_content(item, level) for item in content.items])
    if isinstance(content, Star):
        return Star(_shift_content(content.item, level))
    raise ViewDerivationError("unexpected content %r" % content)
