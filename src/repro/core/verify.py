"""Empirical soundness/completeness checking for derived views.

Theorem 3.2 guarantees that Algorithm ``derive`` produces a sound and
complete view *when one exists*; specifications with conditional
annotations under concatenation or disjunction productions may admit no
such view (materialization aborts on some instances), and the deriver
records warnings for those patterns.  This module gives security
administrators an empirical check before deploying a policy: fuzz
random conforming documents, materialize the view on each, and compare
the view's contents against the ground-truth accessibility labeling of
Section 3.2.

This is a library extension (the paper leaves policy validation to the
administrator); it reuses only published machinery — the generator,
the materializer, and the accessibility semantics.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional

from repro.errors import MaterializationAborted
from repro.core.accessibility import compute_accessibility
from repro.core.derive import derive
from repro.core.spec import AccessSpec
from repro.core.view import SecurityView
from repro.dtd.generator import DocumentGenerator


class VerificationReport:
    """Outcome of :func:`verify_policy`."""

    __slots__ = ("trials", "aborts", "mismatches", "warnings")

    def __init__(self, trials: int, aborts: List[str], mismatches: List[str], warnings: List[str]):
        self.trials = trials
        self.aborts = aborts
        self.mismatches = mismatches
        self.warnings = warnings

    @property
    def ok(self) -> bool:
        return not self.aborts and not self.mismatches

    def summary(self) -> str:
        if self.ok:
            extra = (
                " (%d static warnings)" % len(self.warnings)
                if self.warnings
                else ""
            )
            return "OK: %d/%d trials sound and complete%s" % (
                self.trials,
                self.trials,
                extra,
            )
        lines = [
            "UNSOUND policy: %d aborts, %d mismatches over %d trials"
            % (len(self.aborts), len(self.mismatches), self.trials)
        ]
        lines.extend("  abort: %s" % message for message in self.aborts[:5])
        lines.extend(
            "  mismatch: %s" % message for message in self.mismatches[:5]
        )
        return "\n".join(lines)

    def __repr__(self):
        return "VerificationReport(%s)" % self.summary().splitlines()[0]


def verify_policy(
    spec: AccessSpec,
    trials: int = 25,
    seed: int = 0,
    max_branch: int = 3,
    view: Optional[SecurityView] = None,
) -> VerificationReport:
    """Fuzz-check that the view derived from ``spec`` is sound and
    complete: on every generated instance, materialization succeeds and
    the view holds exactly the accessible elements (per label counts;
    dummies excluded).

    The specification must be concrete (no unbound ``$parameters``).
    """
    view = derive(spec) if view is None else view
    dummy_labels = {
        node.label for node in view.nodes.values() if node.is_dummy
    }
    from repro.core.materialize import materialize

    aborts: List[str] = []
    mismatches: List[str] = []
    for trial in range(trials):
        generator = DocumentGenerator(
            spec.dtd, seed=seed + trial, max_branch=max_branch
        )
        document = generator.generate()
        try:
            view_tree = materialize(document, view, spec)
        except MaterializationAborted as abort:
            aborts.append("trial %d: %s" % (trial, abort))
            continue
        flags = compute_accessibility(document, spec)
        expected = Counter(
            node.label
            for node in document.iter_elements()
            if flags[id(node)]
        )
        actual = Counter(
            node.label
            for node in view_tree.iter_elements()
            if node.label not in dummy_labels
        )
        if expected != actual:
            missing = expected - actual
            extra = actual - expected
            mismatches.append(
                "trial %d: missing=%s extra=%s"
                % (trial, dict(missing), dict(extra))
            )
    return VerificationReport(
        trials, aborts, mismatches, list(view.warnings)
    )
