"""Security views ``V = (Dv, sigma)`` (Section 3.3).

A security view packages

* a *view DTD* ``Dv`` — the only schema information exposed to users
  authorized by the specification, and
* ``sigma`` — hidden XPath annotations: for each edge ``(A, B)`` of the
  view DTD, ``sigma(A, B)`` is a query over *document* instances that
  extracts the ``B`` children of an ``A`` view element.

The view DTD is represented as a graph of :class:`ViewNode` objects
rather than as a plain :class:`~repro.dtd.dtd.DTD`, for one reason:
the unfolding of recursive views (Section 4.2) produces several nodes
sharing one *label*.  Each node has a unique ``key``; before unfolding,
``key == label``.  Productions are content models whose atoms are
child *keys*.

Note on normal form: view productions may contain starred atoms inside
a concatenation (e.g. ``dept -> patientInfo*, staffInfo`` of Example
3.2/3.4, where short-cutting an inaccessible node produced duplicate
adjacent labels that are compacted into a star).  This mirrors the
paper's own output and keeps the view DTD 1-unambiguous.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import ViewDerivationError
from repro.dtd.content import (
    Choice,
    ContentModel,
    Epsilon,
    Name,
    Seq,
    Star,
    Str,
)
from repro.dtd.dtd import DTD
from repro.xpath.ast import Path


class ViewNode:
    """One node of the view DTD graph."""

    __slots__ = ("key", "label", "content", "is_dummy")

    def __init__(
        self,
        key: str,
        label: str,
        content: ContentModel,
        is_dummy: bool = False,
    ):
        self.key = key
        self.label = label
        self.content = content
        self.is_dummy = is_dummy

    def child_keys(self) -> Tuple[str, ...]:
        seen = set()
        ordered = []
        for name in self.content.child_names():
            if name not in seen:
                seen.add(name)
                ordered.append(name)
        return tuple(ordered)

    def __repr__(self):
        return "ViewNode(%r -> %s)" % (self.key, self.content.to_dtd_syntax())


class SecurityView:
    """The pair ``(Dv, sigma)`` plus a pointer to the document DTD.

    ``sigma`` maps view-DTD edges ``(parent key, child key)`` to XPath
    paths over the document.  ``sigma_text`` maps keys of ``str``-typed
    view nodes to the path extracting their text.
    """

    def __init__(self, doc_dtd: DTD, root_key: str):
        self.doc_dtd = doc_dtd
        self.root_key = root_key
        self.nodes: Dict[str, ViewNode] = {}
        self.sigma: Dict[Tuple[str, str], Path] = {}
        self.sigma_text: Dict[str, Path] = {}
        #: attribute names hidden per view node key (attribute-level
        #: access control; empty for unrestricted nodes and dummies)
        self.hidden_attributes: Dict[str, frozenset] = {}
        self.warnings: List[str] = []

    # -- construction --------------------------------------------------------

    def add_node(self, node: ViewNode) -> ViewNode:
        if node.key in self.nodes:
            raise ViewDerivationError("duplicate view node key %r" % node.key)
        self.nodes[node.key] = node
        return node

    def set_sigma(self, parent_key: str, child_key: str, path: Path) -> None:
        self.sigma[(parent_key, child_key)] = path

    # -- lookup ----------------------------------------------------------------

    @property
    def root(self) -> ViewNode:
        return self.nodes[self.root_key]

    def node(self, key: str) -> ViewNode:
        try:
            return self.nodes[key]
        except KeyError:
            raise ViewDerivationError("unknown view node %r" % key) from None

    def has_node(self, key: str) -> bool:
        return key in self.nodes

    def children_of(self, key: str) -> Tuple[str, ...]:
        return self.node(key).child_keys()

    def children_with_label(self, key: str, label: str) -> List[str]:
        return [
            child
            for child in self.children_of(key)
            if self.nodes[child].label == label
        ]

    def sigma_of(self, parent_key: str, child_key: str) -> Path:
        try:
            return self.sigma[(parent_key, child_key)]
        except KeyError:
            raise ViewDerivationError(
                "sigma undefined for view edge (%s, %s)"
                % (parent_key, child_key)
            ) from None

    def labels(self) -> Set[str]:
        return {node.label for node in self.nodes.values()}

    def hidden_attributes_of(self, key: str) -> frozenset:
        return self.hidden_attributes.get(key, frozenset())

    def visible_attribute_decls(self, key: str) -> Dict[str, object]:
        """Attribute declarations a user of the view may know about:
        the document DTD's declarations for the node's label, minus
        hidden ones.  Dummies expose nothing."""
        node = self.node(key)
        if node.is_dummy:
            return {}
        hidden = self.hidden_attributes_of(key)
        return {
            name: declaration
            for name, declaration in self.doc_dtd.attribute_decls(
                node.label
            ).items()
            if name not in hidden
        }

    # -- structure ----------------------------------------------------------------

    def reachable(self, start: Optional[str] = None) -> Set[str]:
        start = self.root_key if start is None else start
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for child in self.children_of(current):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        return seen

    def is_recursive(self) -> bool:
        # Kahn-style check for a cycle among reachable nodes.
        reachable = self.reachable()
        indegree = {key: 0 for key in reachable}
        for key in reachable:
            for child in self.children_of(key):
                if child in reachable:
                    indegree[child] += 1
        queue = [key for key, degree in indegree.items() if degree == 0]
        visited = 0
        while queue:
            current = queue.pop()
            visited += 1
            for child in self.children_of(current):
                indegree[child] -= 1
                if indegree[child] == 0:
                    queue.append(child)
        return visited != len(reachable)

    def topological_order(self) -> List[str]:
        """Reachable node keys, parents before children.  Raises
        :class:`ViewDerivationError` on recursive views."""
        reachable = self.reachable()
        indegree = {key: 0 for key in reachable}
        for key in reachable:
            for child in self.children_of(key):
                if child in reachable:
                    indegree[child] += 1
        queue = [key for key, degree in indegree.items() if degree == 0]
        order: List[str] = []
        while queue:
            current = queue.pop()
            order.append(current)
            for child in self.children_of(current):
                indegree[child] -= 1
                if indegree[child] == 0:
                    queue.append(child)
        if len(order) != len(reachable):
            raise ViewDerivationError(
                "topological order undefined: view DTD is recursive"
            )
        return order

    def size(self) -> int:
        """|Dv|: nodes plus total production size."""
        return len(self.nodes) + sum(
            node.content.size() for node in self.nodes.values()
        )

    # -- export -----------------------------------------------------------------

    def exposed_dtd(self) -> DTD:
        """The view DTD as a plain :class:`DTD`, keyed by labels.

        This is what an authorized user receives (Fig. 3); the sigma
        annotations are *not* part of it.  Only valid while labels are
        unique (always true for views produced by ``derive``; unfolded
        views are internal and never exposed)."""
        by_label: Dict[str, ContentModel] = {}
        attlists: Dict[str, dict] = {}
        for key in sorted(self.reachable()):
            node = self.nodes[key]
            relabeled = _relabel_content(node.content, self.nodes)
            existing = by_label.get(node.label)
            if existing is not None and existing != relabeled:
                raise ViewDerivationError(
                    "cannot export view DTD: label %r is shared by nodes "
                    "with different productions" % node.label
                )
            by_label[node.label] = relabeled
            declarations = self.visible_attribute_decls(key)
            if declarations:
                attlists[node.label] = declarations
        return DTD(self.nodes[self.root_key].label, by_label, attlists)

    def describe(self) -> str:
        """Debug rendering of both the view DTD and sigma."""
        lines = ["view DTD (root %s):" % self.root.label]
        for key in sorted(self.reachable()):
            node = self.nodes[key]
            lines.append(
                "  %s -> %s" % (node.label, node.content.to_dtd_syntax())
            )
        lines.append("sigma:")
        for (parent, child), path in sorted(
            self.sigma.items(), key=lambda item: item[0]
        ):
            if parent in self.reachable():
                lines.append("  sigma(%s, %s) = %s" % (parent, child, path))
        for key, path in sorted(self.sigma_text.items()):
            lines.append("  sigma(%s, str) = %s" % (key, path))
        return "\n".join(lines)

    def __repr__(self):
        return "SecurityView(root=%r, %d nodes)" % (
            self.root_key,
            len(self.nodes),
        )


def _relabel_content(
    content: ContentModel, nodes: Dict[str, ViewNode]
) -> ContentModel:
    """Translate a production over keys into one over labels."""
    if isinstance(content, (Str, Epsilon)):
        return content
    if isinstance(content, Name):
        return Name(nodes[content.name].label)
    if isinstance(content, Seq):
        return Seq([_relabel_content(item, nodes) for item in content.items])
    if isinstance(content, Choice):
        return Choice([_relabel_content(item, nodes) for item in content.items])
    if isinstance(content, Star):
        return Star(_relabel_content(content.item, nodes))
    raise ViewDerivationError("unexpected content model %r in a view" % content)
