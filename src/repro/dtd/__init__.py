"""DTD substrate: content models, DTD graph, parsing, validation,
normalization to the paper's normal form, and random instance
generation (the substitute for IBM's XML Generator)."""

from repro.dtd.content import (
    Choice,
    ContentModel,
    Epsilon,
    Name,
    Opt,
    Plus,
    Seq,
    Star,
    Str,
)
from repro.dtd.dtd import DTD
from repro.dtd.parser import parse_dtd, parse_content_model
from repro.dtd.normalize import normalize_dtd
from repro.dtd.validate import validate, conforms, ValidationIssue
from repro.dtd.generator import DocumentGenerator

__all__ = [
    "ContentModel",
    "Str",
    "Epsilon",
    "Name",
    "Seq",
    "Choice",
    "Star",
    "Opt",
    "Plus",
    "DTD",
    "parse_dtd",
    "parse_content_model",
    "normalize_dtd",
    "validate",
    "conforms",
    "ValidationIssue",
    "DocumentGenerator",
]
