"""Attribute-list declarations (``<!ATTLIST ...>``).

The paper notes that "attributes are not considered here, but they can
be easily incorporated" — this module is that incorporation.  An
attribute declaration carries the pieces the rest of the system uses:

* **validation** — required attributes must be present, enumerated
  attributes must take a declared value, fixed attributes must equal
  their value;
* **generation** — the document generator fills required (and,
  randomly, implied) attributes;
* **optimization** — ``[@a]`` qualifiers fold to true/false when the
  declaration decides them (a ``#REQUIRED`` attribute always exists; an
  undeclared one never does on a valid document);
* **access control** — attribute-level ``Y``/``N`` annotations hide
  attributes from security views.
"""

from __future__ import annotations

from typing import Optional, Tuple

#: Default kinds.
REQUIRED = "#REQUIRED"
IMPLIED = "#IMPLIED"
FIXED = "#FIXED"


class AttributeDecl:
    """One declared attribute of an element type."""

    __slots__ = ("name", "attr_type", "choices", "default_kind", "default")

    def __init__(
        self,
        name: str,
        attr_type: str = "CDATA",
        choices: Optional[Tuple[str, ...]] = None,
        default_kind: str = IMPLIED,
        default: Optional[str] = None,
    ):
        self.name = name
        self.attr_type = attr_type
        self.choices = tuple(choices) if choices else None
        self.default_kind = default_kind
        self.default = default

    @property
    def required(self) -> bool:
        return self.default_kind == REQUIRED

    @property
    def fixed(self) -> bool:
        return self.default_kind == FIXED

    def allows(self, value: str) -> bool:
        """Is ``value`` legal for this attribute?"""
        if self.choices is not None and value not in self.choices:
            return False
        if self.fixed and value != self.default:
            return False
        return True

    def to_dtd_syntax(self) -> str:
        type_text = (
            "(%s)" % " | ".join(self.choices)
            if self.choices is not None
            else self.attr_type
        )
        if self.default_kind in (REQUIRED, IMPLIED):
            default_text = self.default_kind
        elif self.fixed:
            default_text = '%s "%s"' % (FIXED, self.default)
        else:
            default_text = '"%s"' % self.default
        return "%s %s %s" % (self.name, type_text, default_text)

    def __eq__(self, other):
        return isinstance(other, AttributeDecl) and (
            self.name,
            self.attr_type,
            self.choices,
            self.default_kind,
            self.default,
        ) == (
            other.name,
            other.attr_type,
            other.choices,
            other.default_kind,
            other.default,
        )

    def __hash__(self):
        return hash(
            (
                self.name,
                self.attr_type,
                self.choices,
                self.default_kind,
                self.default,
            )
        )

    def __repr__(self):
        return "AttributeDecl(%s)" % self.to_dtd_syntax()
