"""DTD content models as regular expressions.

The paper (Section 2) normalizes every production to one of:

    alpha ::= str | epsilon | B1, ..., Bn | B1 + ... + Bn | B*

We additionally support the general DTD operators ``?`` (:class:`Opt`),
``+`` one-or-more (:class:`Plus`), and arbitrary nesting, because
real-world DTD text uses them; :mod:`repro.dtd.normalize` rewrites a
general DTD into the paper's normal form by introducing synthetic
element types, exactly as footnoted in the paper ("all DTDs can be
expressed in this form by introducing new element types").

Content models are immutable and hashable.  Matching of child
sequences is implemented with Brzozowski derivatives in
:mod:`repro.dtd.validate`.
"""

from __future__ import annotations

from typing import Iterator, Tuple

#: The pseudo-symbol used for text children when matching content
#: models against child sequences.
TEXT_SYMBOL = "#PCDATA"


class ContentModel:
    """Base class of content-model expressions."""

    __slots__ = ()

    # -- structure -----------------------------------------------------

    def child_names(self) -> Tuple[str, ...]:
        """Element-type names mentioned, in order, with duplicates."""
        return tuple(self._names())

    def _names(self) -> Iterator[str]:
        return iter(())

    def size(self) -> int:
        """Number of AST nodes; used for the |D| size measures."""
        return 1

    def is_normal_form(self) -> bool:
        """True iff the expression is one of the paper's five shapes."""
        return False

    def mentions_text(self) -> bool:
        return False

    # -- matching helpers (Brzozowski) ----------------------------------

    def nullable(self) -> bool:
        """Does the language of this expression contain the empty word?"""
        raise NotImplementedError

    def derivative(self, symbol: str) -> "ContentModel":
        """Brzozowski derivative with respect to one child symbol."""
        raise NotImplementedError

    def first_symbols(self) -> frozenset:
        """Symbols that can begin a word of the language."""
        raise NotImplementedError

    # -- misc ------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self):
        return ()

    def __repr__(self) -> str:
        return "%s(%s)" % (type(self).__name__, self.to_dtd_syntax())

    def to_dtd_syntax(self) -> str:
        raise NotImplementedError


class _Singleton(ContentModel):
    __slots__ = ()


class Str(_Singleton):
    """``str`` — PCDATA content (one or more text children; the empty
    string is also allowed, matching empty elements of text type)."""

    __slots__ = ()

    def is_normal_form(self) -> bool:
        return True

    def mentions_text(self) -> bool:
        return True

    def nullable(self) -> bool:
        return True

    def derivative(self, symbol: str) -> ContentModel:
        if symbol == TEXT_SYMBOL:
            return STR
        return EMPTY_SET

    def first_symbols(self) -> frozenset:
        return frozenset((TEXT_SYMBOL,))

    def to_dtd_syntax(self) -> str:
        return "(#PCDATA)"


class Epsilon(_Singleton):
    """``epsilon`` — the empty content model (DTD ``EMPTY``)."""

    __slots__ = ()

    def is_normal_form(self) -> bool:
        return True

    def nullable(self) -> bool:
        return True

    def derivative(self, symbol: str) -> ContentModel:
        return EMPTY_SET

    def first_symbols(self) -> frozenset:
        return frozenset()

    def to_dtd_syntax(self) -> str:
        return "EMPTY"


class _EmptySet(_Singleton):
    """The empty language; only appears as an intermediate derivative,
    never in a DTD."""

    __slots__ = ()

    def nullable(self) -> bool:
        return False

    def derivative(self, symbol: str) -> ContentModel:
        return EMPTY_SET

    def first_symbols(self) -> frozenset:
        return frozenset()

    def to_dtd_syntax(self) -> str:
        return "<empty-set>"


class Name(ContentModel):
    """A single element-type reference ``B``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def _key(self):
        return self.name

    def _names(self):
        yield self.name

    def nullable(self) -> bool:
        return False

    def derivative(self, symbol: str) -> ContentModel:
        if symbol == self.name:
            return EPSILON
        return EMPTY_SET

    def first_symbols(self) -> frozenset:
        return frozenset((self.name,))

    def to_dtd_syntax(self) -> str:
        return self.name


class Seq(ContentModel):
    """Concatenation ``B1, ..., Bn`` (items may be arbitrary
    sub-expressions in the general form)."""

    __slots__ = ("items",)

    def __init__(self, items):
        self.items = tuple(items)
        if len(self.items) < 1:
            raise ValueError("Seq requires at least one item; use Epsilon")

    def _key(self):
        return self.items

    def _names(self):
        for item in self.items:
            for name in item._names():
                yield name

    def size(self) -> int:
        return 1 + sum(item.size() for item in self.items)

    def is_normal_form(self) -> bool:
        return all(isinstance(item, Name) for item in self.items)

    def mentions_text(self) -> bool:
        return any(item.mentions_text() for item in self.items)

    def nullable(self) -> bool:
        return all(item.nullable() for item in self.items)

    def derivative(self, symbol: str) -> ContentModel:
        # d(AB) = d(A)B  +  (A nullable ? d(B) : empty-set)
        head, tail = self.items[0], self.items[1:]
        rest = seq(tail) if tail else EPSILON
        branches = []
        left = concat(head.derivative(symbol), rest)
        if not isinstance(left, _EmptySet):
            branches.append(left)
        if head.nullable():
            right = rest.derivative(symbol)
            if not isinstance(right, _EmptySet):
                branches.append(right)
        return alternation(branches)

    def first_symbols(self) -> frozenset:
        symbols = set()
        for item in self.items:
            symbols |= item.first_symbols()
            if not item.nullable():
                break
        return frozenset(symbols)

    def to_dtd_syntax(self) -> str:
        return "(%s)" % ", ".join(item.to_dtd_syntax() for item in self.items)


class Choice(ContentModel):
    """Disjunction ``B1 + ... + Bn`` (DTD syntax ``(B1 | ... | Bn)``)."""

    __slots__ = ("items",)

    def __init__(self, items):
        self.items = tuple(items)
        if len(self.items) < 1:
            raise ValueError("Choice requires at least one item")

    def _key(self):
        return self.items

    def _names(self):
        for item in self.items:
            for name in item._names():
                yield name

    def size(self) -> int:
        return 1 + sum(item.size() for item in self.items)

    def is_normal_form(self) -> bool:
        return all(isinstance(item, Name) for item in self.items)

    def mentions_text(self) -> bool:
        return any(item.mentions_text() for item in self.items)

    def nullable(self) -> bool:
        return any(item.nullable() for item in self.items)

    def derivative(self, symbol: str) -> ContentModel:
        return alternation(
            [item.derivative(symbol) for item in self.items]
        )

    def first_symbols(self) -> frozenset:
        symbols = set()
        for item in self.items:
            symbols |= item.first_symbols()
        return frozenset(symbols)

    def to_dtd_syntax(self) -> str:
        return "(%s)" % " | ".join(item.to_dtd_syntax() for item in self.items)


class Star(ContentModel):
    """Kleene star ``B*``."""

    __slots__ = ("item",)

    def __init__(self, item: ContentModel):
        self.item = item

    def _key(self):
        return self.item

    def _names(self):
        return self.item._names()

    def size(self) -> int:
        return 1 + self.item.size()

    def is_normal_form(self) -> bool:
        return isinstance(self.item, Name)

    def mentions_text(self) -> bool:
        return self.item.mentions_text()

    def nullable(self) -> bool:
        return True

    def derivative(self, symbol: str) -> ContentModel:
        return concat(self.item.derivative(symbol), self)

    def first_symbols(self) -> frozenset:
        return self.item.first_symbols()

    def to_dtd_syntax(self) -> str:
        return "%s*" % self.item.to_dtd_syntax()


class Opt(ContentModel):
    """Zero-or-one ``B?`` (general form only; normalized away)."""

    __slots__ = ("item",)

    def __init__(self, item: ContentModel):
        self.item = item

    def _key(self):
        return self.item

    def _names(self):
        return self.item._names()

    def size(self) -> int:
        return 1 + self.item.size()

    def mentions_text(self) -> bool:
        return self.item.mentions_text()

    def nullable(self) -> bool:
        return True

    def derivative(self, symbol: str) -> ContentModel:
        return self.item.derivative(symbol)

    def first_symbols(self) -> frozenset:
        return self.item.first_symbols()

    def to_dtd_syntax(self) -> str:
        return "%s?" % self.item.to_dtd_syntax()


class Plus(ContentModel):
    """One-or-more ``B+`` (general form only; normalized away)."""

    __slots__ = ("item",)

    def __init__(self, item: ContentModel):
        self.item = item

    def _key(self):
        return self.item

    def _names(self):
        return self.item._names()

    def size(self) -> int:
        return 1 + self.item.size()

    def mentions_text(self) -> bool:
        return self.item.mentions_text()

    def nullable(self) -> bool:
        return self.item.nullable()

    def derivative(self, symbol: str) -> ContentModel:
        return concat(self.item.derivative(symbol), Star(self.item))

    def first_symbols(self) -> frozenset:
        return self.item.first_symbols()

    def to_dtd_syntax(self) -> str:
        return "%s+" % self.item.to_dtd_syntax()


#: Shared singleton instances.
STR = Str()
EPSILON = Epsilon()
EMPTY_SET = _EmptySet()


def seq(items) -> ContentModel:
    """Smart constructor: flatten nested Seqs, drop epsilons."""
    flat = []
    for item in items:
        if isinstance(item, Seq):
            flat.extend(item.items)
        elif isinstance(item, Epsilon):
            continue
        elif isinstance(item, _EmptySet):
            return EMPTY_SET
        else:
            flat.append(item)
    if not flat:
        return EPSILON
    if len(flat) == 1:
        return flat[0]
    return Seq(flat)


def concat(left: ContentModel, right: ContentModel) -> ContentModel:
    return seq([left, right])


def alternation(items) -> ContentModel:
    """Smart constructor for unions used by derivatives: flatten,
    deduplicate, drop empty sets."""
    flat = []
    seen = set()
    for item in items:
        candidates = item.items if isinstance(item, Choice) else (item,)
        for candidate in candidates:
            if isinstance(candidate, _EmptySet):
                continue
            if candidate in seen:
                continue
            seen.add(candidate)
            flat.append(candidate)
    if not flat:
        return EMPTY_SET
    if len(flat) == 1:
        return flat[0]
    return Choice(flat)


def names(*labels: str):
    """Convenience: a tuple of :class:`Name` nodes."""
    return tuple(Name(label) for label in labels)
