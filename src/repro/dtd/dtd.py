"""The DTD class and its graph structure.

A DTD is the triple ``(Ele, Rg, r)`` of Section 2: a finite set of
element types, a production (content model) per type, and a root type.
The *DTD graph* has a node per element type and an edge ``A -> B``
whenever ``B`` occurs in ``Rg(A)``.  The graph may be a DAG or even
cyclic (recursive DTDs); both are supported throughout the library.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import DTDError
from repro.dtd.attributes import AttributeDecl
from repro.dtd.content import (
    Choice,
    ContentModel,
    Epsilon,
    Name,
    Seq,
    Star,
    Str,
)


class DTD:
    """An immutable DTD ``(Ele, Rg, r)``.

    ``productions`` maps each element-type name to its content model.
    Every name referenced inside a content model must itself have a
    production (use :data:`repro.dtd.content.EPSILON` for empty
    elements).
    """

    def __init__(
        self,
        root: str,
        productions: Dict[str, ContentModel],
        attlists: Optional[Dict[str, Dict[str, "AttributeDecl"]]] = None,
    ):
        if root not in productions:
            raise DTDError("root type %r has no production" % root)
        undeclared = sorted(
            {
                name
                for content in productions.values()
                for name in content.child_names()
                if name not in productions
            }
        )
        if undeclared:
            raise DTDError(
                "content models reference undeclared element types: %s"
                % ", ".join(undeclared)
            )
        self.root = root
        self.productions: Dict[str, ContentModel] = dict(productions)
        self.attlists: Dict[str, Dict[str, "AttributeDecl"]] = {
            element: dict(declarations)
            for element, declarations in (attlists or {}).items()
        }
        for element in self.attlists:
            if element not in productions:
                raise DTDError(
                    "ATTLIST for undeclared element type %r" % element
                )
        self._children_cache: Dict[str, Tuple[str, ...]] = {}
        self._min_height: Optional[Dict[str, float]] = None

    # -- basic views -----------------------------------------------------

    @property
    def element_types(self) -> List[str]:
        return list(self.productions)

    def production(self, element_type: str) -> ContentModel:
        try:
            return self.productions[element_type]
        except KeyError:
            raise DTDError("unknown element type %r" % element_type) from None

    def has_type(self, element_type: str) -> bool:
        return element_type in self.productions

    # -- attributes --------------------------------------------------------

    def attribute_decls(self, element_type: str) -> Dict[str, "AttributeDecl"]:
        """Declared attributes of an element type (empty dict when the
        type has no ATTLIST — such elements accept any attributes in
        lax mode)."""
        return self.attlists.get(element_type, {})

    def attribute_decl(self, element_type: str, name: str):
        return self.attlists.get(element_type, {}).get(name)

    def has_attribute_declarations(self, element_type: str) -> bool:
        return element_type in self.attlists

    def children_of(self, element_type: str) -> Tuple[str, ...]:
        """Ordered, de-duplicated child type names of a production."""
        cached = self._children_cache.get(element_type)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        ordered: List[str] = []
        for name in self.production(element_type).child_names():
            if name not in seen:
                seen.add(name)
                ordered.append(name)
        result = tuple(ordered)
        self._children_cache[element_type] = result
        return result

    def is_child(self, parent: str, child: str) -> bool:
        return child in self.children_of(parent)

    def parents_of(self, element_type: str) -> List[str]:
        return [
            candidate
            for candidate in self.productions
            if element_type in self.children_of(candidate)
        ]

    def edges(self) -> Iterator[Tuple[str, str, str]]:
        """Yield ``(parent, child, kind)`` triples of the DTD graph,
        where kind is the production shape at the parent
        (``seq``/``choice``/``star``/``mixed``)."""
        for parent in self.productions:
            kind = self.production_kind(parent)
            for child in self.children_of(parent):
                yield parent, child, kind

    def production_kind(self, element_type: str) -> str:
        """Shape of a production: ``str``, ``epsilon``, ``seq``,
        ``choice``, ``star`` for normal-form content; ``mixed``
        otherwise."""
        content = self.production(element_type)
        if isinstance(content, Str):
            return "str"
        if isinstance(content, Epsilon):
            return "epsilon"
        if isinstance(content, Name):
            return "seq"  # a single required child is a 1-ary concatenation
        if isinstance(content, Seq) and content.is_normal_form():
            return "seq"
        if isinstance(content, Choice) and content.is_normal_form():
            return "choice"
        if isinstance(content, Star) and content.is_normal_form():
            return "star"
        return "mixed"

    def is_normal_form(self) -> bool:
        """True iff every production has one of the paper's five shapes."""
        return all(
            self.production_kind(name) != "mixed" for name in self.productions
        )

    def size(self) -> int:
        """|D|: number of element types plus total content-model size."""
        return len(self.productions) + sum(
            content.size() for content in self.productions.values()
        )

    # -- reachability and recursion ---------------------------------------

    def reachable(self, start: Optional[str] = None) -> Set[str]:
        """Element types reachable from ``start`` (default: the root),
        including ``start`` itself."""
        start = self.root if start is None else start
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for child in self.children_of(current):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        return seen

    def descendant_types(self, start: str) -> Set[str]:
        """Proper-or-self descendants of ``start`` in the DTD graph."""
        return self.reachable(start)

    def recursive_types(self) -> Set[str]:
        """Element types that lie on a cycle of the DTD graph (i.e.
        types defined directly or indirectly in terms of themselves)."""
        order, components = self._strongly_connected_components()
        del order
        recursive: Set[str] = set()
        for component in components:
            if len(component) > 1:
                recursive.update(component)
            else:
                only = next(iter(component))
                if only in self.children_of(only):
                    recursive.add(only)
        return recursive

    def is_recursive(self) -> bool:
        return bool(self.recursive_types())

    def topological_order(self) -> List[str]:
        """Element types in a topological order of the DTD graph
        (parents before children).  Raises :class:`DTDError` if the
        graph has a cycle."""
        if self.is_recursive():
            raise DTDError("topological order undefined: DTD is recursive")
        order, _ = self._strongly_connected_components()
        return order

    def _strongly_connected_components(self):
        """Iterative Tarjan SCC.  Returns ``(reverse_topo_of_types,
        components)`` where components are emitted in reverse
        topological order; the type order returned is topological."""
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        components: List[Set[str]] = []
        counter = [0]
        finish_order: List[str] = []

        for start in self.productions:
            if start in index:
                continue
            work = [(start, iter(self.children_of(start)))]
            index[start] = lowlink[start] = counter[0]
            counter[0] += 1
            stack.append(start)
            on_stack.add(start)
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in index:
                        index[child] = lowlink[child] = counter[0]
                        counter[0] += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(self.children_of(child))))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: Set[str] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(component)
                finish_order.append(node)
        # finish_order is reverse topological over the condensation
        topo = list(reversed(finish_order))
        return topo, components

    # -- consistency / heights ---------------------------------------------

    def min_heights(self) -> Dict[str, float]:
        """Minimal instance-subtree height per element type (a leaf
        element counts as height 1).  ``math.inf`` marks inconsistent
        types that admit no finite instance (e.g. ``a -> a``)."""
        if self._min_height is not None:
            return self._min_height
        heights: Dict[str, float] = {name: math.inf for name in self.productions}

        def content_height(content: ContentModel) -> float:
            if isinstance(content, (Str, Epsilon)):
                return 0.0
            if isinstance(content, Name):
                return heights[content.name]
            if isinstance(content, Seq):
                return max(content_height(item) for item in content.items)
            if isinstance(content, Choice):
                return min(content_height(item) for item in content.items)
            if isinstance(content, Star):
                return 0.0
            # Opt is 0, Plus needs one occurrence
            from repro.dtd.content import Opt, Plus

            if isinstance(content, Opt):
                return 0.0
            if isinstance(content, Plus):
                return content_height(content.item)
            raise DTDError("unknown content model %r" % content)

        changed = True
        while changed:
            changed = False
            for name, content in self.productions.items():
                candidate = 1.0 + content_height(content)
                if candidate < heights[name]:
                    heights[name] = candidate
                    changed = True
        self._min_height = heights
        return heights

    def is_consistent(self) -> bool:
        """A DTD is *consistent* if documents conforming to it exist,
        i.e. the root admits a finite instance (Section 4.2)."""
        return self.min_heights()[self.root] != math.inf

    def inconsistent_types(self) -> Set[str]:
        return {
            name
            for name, height in self.min_heights().items()
            if height == math.inf
        }

    # -- serialization ------------------------------------------------------

    def to_dtd_text(self) -> str:
        """Render as ``<!ELEMENT ...>`` declarations (root first)."""
        ordering = [self.root] + [
            name for name in self.productions if name != self.root
        ]
        lines = []
        for name in ordering:
            content = self.productions[name]
            lines.append("<!ELEMENT %s %s>" % (name, content.to_dtd_syntax()))
            declarations = self.attlists.get(name)
            if declarations:
                body = " ".join(
                    declaration.to_dtd_syntax()
                    for declaration in declarations.values()
                )
                lines.append("<!ATTLIST %s %s>" % (name, body))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "DTD(root=%r, %d element types)" % (self.root, len(self.productions))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, DTD)
            and self.root == other.root
            and self.productions == other.productions
            and self.attlists == other.attlists
        )

    def __hash__(self):
        return hash((self.root, tuple(sorted(self.productions.items(), key=lambda kv: kv[0]))))
