"""Seeded random generation of DTD-conforming documents.

This is the library's substitute for IBM's XML Generator [12], which
the paper uses to produce its datasets D1-D4 by "varying the maximum
branching factor parameter".  The generator exposes the same knob
(``max_branch``, the maximum repetition count of a starred child) plus
a depth limit, and is fully deterministic for a given seed.

Generated documents always conform to the DTD (asserted by the test
suite via :mod:`repro.dtd.validate`): depth limits are enforced by
steering choices toward minimum-height alternatives instead of
truncating.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

from repro.errors import DTDError
from repro.dtd.content import (
    Choice,
    ContentModel,
    Epsilon,
    Name,
    Opt,
    Plus,
    Seq,
    Star,
    Str,
)
from repro.dtd.dtd import DTD
from repro.xmlmodel.nodes import XMLElement

_DEFAULT_VOCABULARY = (
    "alpha bravo charlie delta echo foxtrot golf hotel india juliet kilo "
    "lima mike november oscar papa quebec romeo sierra tango uniform victor"
).split()


class DocumentGenerator:
    """Generates random instances of a DTD.

    Parameters
    ----------
    dtd:
        The DTD to instantiate.  Must be consistent (finite instances
        exist).
    seed:
        Seed for the internal :class:`random.Random`.
    max_branch:
        Maximum number of repetitions generated for a ``B*`` (and the
        extra repetitions of ``B+``).  This is the paper's "maximum
        branching factor" dataset-size knob.
    max_depth:
        Hard bound on element nesting depth.  Defaults to
        ``min_height(root) + 8`` so recursive DTDs terminate.
    value_pools:
        Optional mapping ``element type -> sequence of strings``; text
        content of that element type is drawn from the pool instead of
        the generic vocabulary.  Lets tests control qualifier
        selectivity (e.g. give ``wardNo`` values ``"1".."4"``).
    """

    def __init__(
        self,
        dtd: DTD,
        seed: int = 0,
        max_branch: int = 3,
        max_depth: Optional[int] = None,
        value_pools: Optional[Dict[str, Sequence[str]]] = None,
    ):
        if not dtd.is_consistent():
            raise DTDError(
                "cannot generate instances of an inconsistent DTD "
                "(types without finite instances: %s)"
                % ", ".join(sorted(dtd.inconsistent_types()))
            )
        self.dtd = dtd
        self.rng = random.Random(seed)
        self.max_branch = max(1, max_branch)
        self.min_heights = dtd.min_heights()
        root_height = int(self.min_heights[dtd.root])
        self.max_depth = max_depth if max_depth is not None else root_height + 8
        if self.max_depth < root_height:
            raise DTDError(
                "max_depth=%d is below the DTD's minimum instance height %d"
                % (self.max_depth, root_height)
            )
        self.value_pools = dict(value_pools) if value_pools else {}
        self.vocabulary = list(_DEFAULT_VOCABULARY)

    # -- public API -------------------------------------------------------

    def generate(self) -> XMLElement:
        """Generate one conforming document and return its root."""
        return self._generate_element(self.dtd.root, self.max_depth)

    def generate_many(self, count: int) -> List[XMLElement]:
        return [self.generate() for _ in range(count)]

    # -- internals ----------------------------------------------------------

    def _generate_element(self, element_type: str, budget: int) -> XMLElement:
        """Generate an element subtree of height at most ``budget``."""
        element = XMLElement(element_type)
        self._fill_attributes(element)
        content = self.dtd.production(element_type)
        self._fill(element, content, budget - 1)
        return element

    def _fill_attributes(self, element: XMLElement) -> None:
        """Required attributes always; implied ones with probability
        1/2; fixed/defaulted ones get their declared value.  Values of
        attribute ``a`` on element ``e`` can be steered with a
        ``"e@a"`` entry in ``value_pools``."""
        for name, declaration in self.dtd.attribute_decls(
            element.label
        ).items():
            if declaration.fixed or declaration.default_kind == "default":
                element.set(name, declaration.default)
                continue
            if not declaration.required and self.rng.random() < 0.5:
                continue
            if declaration.choices is not None:
                element.set(name, self.rng.choice(list(declaration.choices)))
            else:
                element.set(
                    name, self._text_for("%s@%s" % (element.label, name))
                )

    def _fill(self, element: XMLElement, content: ContentModel, budget: int):
        """Append children of ``element`` following ``content``; every
        generated child subtree has height <= budget."""
        if isinstance(content, Str):
            element.add_text(self._text_for(element.label))
            return
        if isinstance(content, Epsilon):
            return
        if isinstance(content, Name):
            element.append(self._generate_element(content.name, budget))
            return
        if isinstance(content, Seq):
            for item in content.items:
                self._fill(element, item, budget)
            return
        if isinstance(content, Choice):
            choice = self._pick_branch(content.items, budget)
            self._fill(element, choice, budget)
            return
        if isinstance(content, Star):
            for _ in range(self._repetitions(content.item, budget, minimum=0)):
                self._fill(element, content.item, budget)
            return
        if isinstance(content, Opt):
            if self._fits(content.item, budget) and self.rng.random() < 0.5:
                self._fill(element, content.item, budget)
            return
        if isinstance(content, Plus):
            for _ in range(self._repetitions(content.item, budget, minimum=1)):
                self._fill(element, content.item, budget)
            return
        raise DTDError("unknown content model %r" % content)

    def _content_min_height(self, content: ContentModel) -> float:
        if isinstance(content, (Str, Epsilon, Star, Opt)):
            return 0.0
        if isinstance(content, Name):
            return self.min_heights[content.name]
        if isinstance(content, Seq):
            return max(self._content_min_height(item) for item in content.items)
        if isinstance(content, Choice):
            return min(self._content_min_height(item) for item in content.items)
        if isinstance(content, Plus):
            return self._content_min_height(content.item)
        raise DTDError("unknown content model %r" % content)

    def _fits(self, content: ContentModel, budget: int) -> bool:
        return self._content_min_height(content) <= budget

    def _pick_branch(self, items, budget: int) -> ContentModel:
        feasible = [item for item in items if self._fits(item, budget)]
        if not feasible:
            # Should not happen when the initial budget respects
            # min_height, but fall back to the shallowest branch.
            return min(items, key=self._content_min_height)
        return self.rng.choice(feasible)

    def _repetitions(self, item: ContentModel, budget: int, minimum: int) -> int:
        if not self._fits(item, budget):
            if minimum > 0:
                raise DTDError(
                    "depth budget exhausted while a repetition is required"
                )
            return 0
        return self.rng.randint(minimum, max(minimum, self.max_branch))

    def _text_for(self, element_type: str) -> str:
        pool = self.value_pools.get(element_type)
        if pool:
            return str(self.rng.choice(list(pool)))
        words = self.rng.randint(1, 3)
        return " ".join(self.rng.choice(self.vocabulary) for _ in range(words))


def generate_document(
    dtd: DTD,
    seed: int = 0,
    max_branch: int = 3,
    max_depth: Optional[int] = None,
    value_pools: Optional[Dict[str, Sequence[str]]] = None,
) -> XMLElement:
    """One-shot convenience wrapper around :class:`DocumentGenerator`."""
    generator = DocumentGenerator(
        dtd,
        seed=seed,
        max_branch=max_branch,
        max_depth=max_depth,
        value_pools=value_pools,
    )
    return generator.generate()
