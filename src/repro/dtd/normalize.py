"""Normalization of general DTDs into the paper's normal form.

Section 2 of the paper restricts productions to

    alpha ::= str | epsilon | B1, ..., Bn | B1 + ... + Bn | B*

and notes that "all DTDs can be expressed in this form by introducing
new element types (entities)".  This module performs that rewriting:

* nested groups become synthetic element types,
* ``e?`` becomes a synthetic choice ``(e | x-empty)`` where ``x-empty``
  is a synthetic type with EMPTY content,
* ``e+`` becomes a synthetic concatenation ``(e, x-star)`` with
  ``x-star -> e*``.

Note that normalization introduces *wrapper elements*: instances of the
normalized DTD contain synthetic elements that instances of the
original DTD do not.  The library's workloads are therefore authored
directly in normal form; normalization exists so arbitrary DTD text can
still be brought into the model.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ContentModelError
from repro.dtd.content import (
    Choice,
    ContentModel,
    EPSILON,
    Epsilon,
    Name,
    Opt,
    Plus,
    Seq,
    Star,
    Str,
)
from repro.dtd.dtd import DTD

#: Prefix used for synthetic element types introduced by normalization.
SYNTHETIC_PREFIX = "x-"


class _Synthesizer:
    """Allocates synthetic element types, de-duplicating by content."""

    def __init__(self, taken):
        self.taken = set(taken)
        self.by_content: Dict[ContentModel, str] = {}
        self.new_productions: Dict[str, ContentModel] = {}
        self.counter = 0

    def type_for(self, content: ContentModel) -> str:
        existing = self.by_content.get(content)
        if existing is not None:
            return existing
        while True:
            self.counter += 1
            candidate = "%sgrp%d" % (SYNTHETIC_PREFIX, self.counter)
            if candidate not in self.taken:
                break
        self.taken.add(candidate)
        self.by_content[content] = candidate
        self.new_productions[candidate] = content
        return candidate

    def empty_type(self) -> str:
        return self.type_for(EPSILON)


def normalize_dtd(dtd: DTD) -> Tuple[DTD, Dict[str, ContentModel]]:
    """Return ``(normalized_dtd, synthetic_types)`` where
    ``synthetic_types`` maps each introduced type name to the content it
    wraps.  If the input is already in normal form it is returned as-is
    with an empty mapping."""
    if dtd.is_normal_form():
        return dtd, {}
    synthesizer = _Synthesizer(dtd.productions)
    productions: Dict[str, ContentModel] = {}
    pending = list(dtd.productions.items())
    while pending:
        name, content = pending.pop()
        normalized = _normalize_production(content, synthesizer)
        productions[name] = normalized
        # Newly synthesized productions may themselves need normalizing.
        for synth_name, synth_content in list(
            synthesizer.new_productions.items()
        ):
            if synth_name not in productions and all(
                synth_name != queued for queued, _ in pending
            ):
                pending.append((synth_name, synth_content))
    result = DTD(dtd.root, productions)
    synthetic = {
        name: content
        for name, content in productions.items()
        if name.startswith(SYNTHETIC_PREFIX) and name not in dtd.productions
    }
    return result, synthetic


def _normalize_production(
    content: ContentModel, synthesizer: _Synthesizer
) -> ContentModel:
    """Rewrite one production body into a normal-form shape."""
    if isinstance(content, (Str, Epsilon, Name)):
        return content
    if isinstance(content, Seq):
        return Seq([_as_name(item, synthesizer) for item in content.items])
    if isinstance(content, Choice):
        return Choice([_as_name(item, synthesizer) for item in content.items])
    if isinstance(content, Star):
        return Star(_as_name(content.item, synthesizer))
    if isinstance(content, Opt):
        # e?  ==>  (e | x-empty)
        return Choice(
            [
                _as_name(content.item, synthesizer),
                Name(synthesizer.empty_type()),
            ]
        )
    if isinstance(content, Plus):
        # e+  ==>  (e, x-star) with x-star -> e*
        inner = _as_name(content.item, synthesizer)
        star_type = synthesizer.type_for(Star(inner))
        return Seq([inner, Name(star_type)])
    raise ContentModelError("cannot normalize content model %r" % content)


def _as_name(item: ContentModel, synthesizer: _Synthesizer) -> Name:
    """Reduce an arbitrary sub-expression to a single Name, introducing
    a synthetic element type when necessary."""
    if isinstance(item, Name):
        return item
    if isinstance(item, (Str, Epsilon)):
        return Name(synthesizer.type_for(item))
    return Name(synthesizer.type_for(item))
