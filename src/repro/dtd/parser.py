"""Parser for ``<!ELEMENT ...>`` and ``<!ATTLIST ...>`` declarations.

Supports the standard element content syntax: ``EMPTY``, ``ANY`` is
rejected (the paper's model has no ANY), ``(#PCDATA)``, sequences
``(a, b)``, choices ``(a | b)``, and the ``*``/``+``/``?`` occurrence
operators on names and groups.  ``<!ATTLIST>`` declarations are parsed
into :class:`~repro.dtd.attributes.AttributeDecl` entries (CDATA /
NMTOKEN / ID / enumerated types; ``#REQUIRED`` / ``#IMPLIED`` /
``#FIXED`` / literal defaults); comments are skipped.  The root type
is the first declared element unless overridden.

For untrusted input, :func:`parse_dtd` accepts optional hard limits
(``max_bytes``, ``max_depth`` on content-model group nesting,
``max_attributes`` per element); exceeding one raises
:class:`repro.errors.DTDLimitError` (``E_PARSE_DTD_LIMIT``).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import DTDLimitError, DTDParseError
from repro.dtd.attributes import (
    AttributeDecl,
    FIXED,
    IMPLIED,
    REQUIRED,
)
from repro.dtd.content import (
    Choice,
    ContentModel,
    EPSILON,
    Name,
    Opt,
    Plus,
    Seq,
    STR,
    Star,
)
from repro.dtd.dtd import DTD

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")


class _Cursor:
    def __init__(self, text: str, max_depth: Optional[int] = None):
        self.text = text
        self.pos = 0
        # content-model group nesting guard (None = unbounded)
        self.max_depth = max_depth
        self.depth = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def skip_space(self) -> None:
        while not self.eof() and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def peek(self, n: int = 1) -> str:
        return self.text[self.pos : self.pos + n]

    def take(self, n: int = 1) -> str:
        chunk = self.peek(n)
        self.pos += n
        return chunk

    def expect(self, literal: str) -> None:
        self.skip_space()
        if not self.text.startswith(literal, self.pos):
            raise DTDParseError(
                "expected %r at offset %d" % (literal, self.pos)
            )
        self.pos += len(literal)

    def read_name(self) -> str:
        self.skip_space()
        start = self.pos
        if self.eof() or self.text[self.pos] not in _NAME_START:
            raise DTDParseError("expected a name at offset %d" % self.pos)
        self.pos += 1
        while not self.eof() and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        return self.text[start : self.pos]

    def read_nmtoken(self) -> str:
        """Like a name, but digits may lead (enumeration tokens)."""
        self.skip_space()
        start = self.pos
        while not self.eof() and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        if self.pos == start:
            raise DTDParseError("expected a token at offset %d" % self.pos)
        return self.text[start : self.pos]


def parse_content_model(text: str) -> ContentModel:
    """Parse a single content-model expression, e.g. ``(a, b*, (c|d))``."""
    cursor = _Cursor(text)
    model = _parse_content(cursor)
    cursor.skip_space()
    if not cursor.eof():
        raise DTDParseError(
            "trailing input in content model at offset %d" % cursor.pos
        )
    return model


def _parse_content(cursor: _Cursor) -> ContentModel:
    cursor.skip_space()
    if cursor.peek(5) == "EMPTY":
        cursor.take(5)
        return EPSILON
    if cursor.peek(3) == "ANY":
        raise DTDParseError("ANY content is not supported")
    return _parse_particle(cursor)


def _parse_particle(cursor: _Cursor) -> ContentModel:
    cursor.skip_space()
    if cursor.peek() == "(":
        cursor.take()
        cursor.depth += 1
        if cursor.max_depth is not None and cursor.depth > cursor.max_depth:
            raise DTDLimitError(
                "content-model group nesting exceeds the depth limit (%d)"
                % cursor.max_depth
            )
        item = _parse_group_body(cursor)
        cursor.expect(")")
        cursor.depth -= 1
    else:
        item = Name(cursor.read_name())
    return _apply_occurrence(cursor, item)


def _parse_group_body(cursor: _Cursor) -> ContentModel:
    cursor.skip_space()
    if cursor.peek(7) == "#PCDATA":
        cursor.take(7)
        cursor.skip_space()
        # Mixed content (#PCDATA | a | ...) is not in the paper's model.
        if cursor.peek() == "|":
            raise DTDParseError("mixed content models are not supported")
        return STR
    first = _parse_particle(cursor)
    cursor.skip_space()
    separator = cursor.peek()
    if separator not in (",", "|"):
        return first
    items = [first]
    while True:
        cursor.skip_space()
        if cursor.peek() != separator:
            if cursor.peek() in (",", "|"):
                raise DTDParseError(
                    "mixed ',' and '|' in one group at offset %d" % cursor.pos
                )
            break
        cursor.take()
        items.append(_parse_particle(cursor))
    if separator == ",":
        return Seq(items)
    return Choice(items)


def _apply_occurrence(cursor: _Cursor, item: ContentModel) -> ContentModel:
    mark = cursor.peek()
    if mark == "*":
        cursor.take()
        return Star(item)
    if mark == "+":
        cursor.take()
        return Plus(item)
    if mark == "?":
        cursor.take()
        return Opt(item)
    return item


def _parse_attlist(cursor: _Cursor):
    """Parse the body of an ``<!ATTLIST element (attr type default)*>``
    declaration (the ``<!ATTLIST`` keyword is already consumed)."""
    element = cursor.read_name()
    declarations = []
    while True:
        cursor.skip_space()
        if cursor.peek() == ">":
            cursor.take()
            return element, declarations
        if cursor.eof():
            raise DTDParseError("unterminated ATTLIST for %r" % element)
        name = cursor.read_name()
        cursor.skip_space()
        choices = None
        if cursor.peek() == "(":
            cursor.take()
            choices = [cursor.read_nmtoken()]
            while True:
                cursor.skip_space()
                if cursor.peek() == "|":
                    cursor.take()
                    choices.append(cursor.read_nmtoken())
                else:
                    break
            cursor.expect(")")
            attr_type = "ENUM"
        else:
            attr_type = cursor.read_name()
        cursor.skip_space()
        default_kind = IMPLIED
        default = None
        if cursor.peek() == "#":
            cursor.take()
            keyword = "#" + cursor.read_name()
            if keyword in (REQUIRED, IMPLIED):
                default_kind = keyword
            elif keyword == FIXED:
                default_kind = FIXED
                default = _read_quoted(cursor)
            else:
                raise DTDParseError("unknown attribute default %r" % keyword)
        elif cursor.peek() in ("'", '"'):
            default_kind = "default"
            default = _read_quoted(cursor)
        declarations.append(
            AttributeDecl(
                name,
                attr_type=attr_type,
                choices=choices,
                default_kind=default_kind,
                default=default,
            )
        )


def _read_quoted(cursor: _Cursor) -> str:
    cursor.skip_space()
    quote = cursor.peek()
    if quote not in ("'", '"'):
        raise DTDParseError(
            "expected a quoted value at offset %d" % cursor.pos
        )
    cursor.take()
    end = cursor.text.find(quote, cursor.pos)
    if end < 0:
        raise DTDParseError("unterminated quoted value")
    value = cursor.text[cursor.pos : end]
    cursor.pos = end + 1
    return value


def parse_dtd(
    text: str,
    root: Optional[str] = None,
    max_bytes: Optional[int] = None,
    max_depth: Optional[int] = None,
    max_attributes: Optional[int] = None,
) -> DTD:
    """Parse a sequence of ``<!ELEMENT>`` and ``<!ATTLIST>``
    declarations into a :class:`~repro.dtd.dtd.DTD`.

    ``root`` defaults to the first declared element type.

    The optional limits harden parsing of untrusted input: DTD text
    larger than ``max_bytes`` characters, content-model groups nested
    deeper than ``max_depth``, or more than ``max_attributes``
    attributes declared for one element raise
    :class:`repro.errors.DTDLimitError` (``E_PARSE_DTD_LIMIT``).
    """
    for name, value in (
        ("max_bytes", max_bytes),
        ("max_depth", max_depth),
        ("max_attributes", max_attributes),
    ):
        if value is not None and (
            isinstance(value, bool) or not isinstance(value, int) or value < 1
        ):
            raise ValueError(
                "%s must be a positive integer (or None), got %r"
                % (name, value)
            )
    if max_bytes is not None and len(text) > max_bytes:
        raise DTDLimitError(
            "DTD text is %d characters; the limit is %d"
            % (len(text), max_bytes)
        )
    cursor = _Cursor(text, max_depth=max_depth)
    productions: Dict[str, ContentModel] = {}
    attlists: Dict[str, Dict[str, AttributeDecl]] = {}
    first: Optional[str] = None
    while True:
        cursor.skip_space()
        if cursor.eof():
            break
        if cursor.peek(4) == "<!--":
            cursor.take(4)
            end = cursor.text.find("-->", cursor.pos)
            if end < 0:
                raise DTDParseError("unterminated comment")
            cursor.pos = end + 3
            continue
        if cursor.peek(9) == "<!ATTLIST":
            cursor.take(9)
            element, declarations = _parse_attlist(cursor)
            merged = attlists.setdefault(element, {})
            for declaration in declarations:
                if declaration.name in merged:
                    raise DTDParseError(
                        "duplicate attribute %r on %r"
                        % (declaration.name, element)
                    )
                merged[declaration.name] = declaration
            if (
                max_attributes is not None
                and len(merged) > max_attributes
            ):
                raise DTDLimitError(
                    "element %r declares more than %d attributes"
                    % (element, max_attributes)
                )
            continue
        cursor.expect("<!ELEMENT")
        name = cursor.read_name()
        if name in productions:
            raise DTDParseError("duplicate declaration of %r" % name)
        content = _parse_content(cursor)
        cursor.expect(">")
        productions[name] = content
        if first is None:
            first = name
    if not productions:
        raise DTDParseError("no element declarations found")
    return DTD(root if root is not None else first, productions, attlists)
