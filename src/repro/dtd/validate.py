"""Document-vs-DTD conformance checking.

An XML tree conforms to a DTD (Section 2) when the root carries the
root type, every element's child sequence is a word of the language of
its production, and text nodes appear only under ``str`` productions.
Child sequences are matched against content models with Brzozowski
derivatives, which handles arbitrary regular content (including the
general ``?``/``+`` operators) without building automata.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import DTDValidationError
from repro.dtd.content import ContentModel, TEXT_SYMBOL
from repro.dtd.dtd import DTD


class ValidationIssue:
    """One conformance violation, with the element path for debugging."""

    __slots__ = ("path", "message", "element")

    def __init__(self, path: str, message: str, element=None):
        self.path = path
        self.message = message
        self.element = element

    def __repr__(self) -> str:
        return "ValidationIssue(%s: %s)" % (self.path, self.message)

    def __str__(self) -> str:
        return "%s: %s" % (self.path, self.message)


def _child_symbols(element) -> List[str]:
    symbols = []
    for child in element.children:
        if child.is_text:
            symbols.append(TEXT_SYMBOL)
        else:
            symbols.append(child.label)
    return symbols


def _matches(content: ContentModel, symbols: List[str]) -> Optional[str]:
    """Return None if ``symbols`` is a word of ``content``'s language,
    otherwise a human-readable explanation of the first failure."""
    current = content
    for position, symbol in enumerate(symbols):
        following = current.derivative(symbol)
        if not following.first_symbols() and not following.nullable():
            expected = sorted(current.first_symbols())
            return (
                "unexpected child %r at position %d (expected one of: %s%s)"
                % (
                    symbol,
                    position,
                    ", ".join(expected) if expected else "nothing",
                    " or end" if current.nullable() else "",
                )
            )
        current = following
    if not current.nullable():
        expected = sorted(current.first_symbols())
        return "content ended early (expected one of: %s)" % ", ".join(expected)
    return None


def _attribute_issues(element, dtd: DTD) -> List[str]:
    """Attribute-validity messages for one element.

    Elements without any ATTLIST are *lax*: they accept arbitrary
    attributes (the library itself adds undeclared bookkeeping
    attributes such as the naive baseline's ``accessibility``).
    Elements with declarations are strict.
    """
    declarations = dtd.attribute_decls(element.label)
    if not declarations:
        return []
    messages = []
    for name, value in element.attributes.items():
        declaration = declarations.get(name)
        if declaration is None:
            messages.append("undeclared attribute %r" % name)
        elif not declaration.allows(value):
            messages.append(
                "attribute %s=%r violates its declaration (%s)"
                % (name, value, declaration.to_dtd_syntax())
            )
    for name, declaration in declarations.items():
        if declaration.required and name not in element.attributes:
            messages.append("missing required attribute %r" % name)
    return messages


def validate(root, dtd: DTD, max_issues: int = 100) -> List[ValidationIssue]:
    """Validate a document against a DTD; return up to ``max_issues``
    violations (an empty list means the document conforms)."""
    issues: List[ValidationIssue] = []
    if root.label != dtd.root:
        issues.append(
            ValidationIssue(
                "/" + root.label,
                "root is %r but the DTD root type is %r" % (root.label, dtd.root),
                root,
            )
        )
    stack = [(root, "/" + root.label)]
    while stack and len(issues) < max_issues:
        element, path = stack.pop()
        if not dtd.has_type(element.label):
            issues.append(
                ValidationIssue(
                    path, "undeclared element type %r" % element.label, element
                )
            )
            continue
        failure = _matches(dtd.production(element.label), _child_symbols(element))
        if failure is not None:
            issues.append(ValidationIssue(path, failure, element))
        for message in _attribute_issues(element, dtd):
            issues.append(ValidationIssue(path, message, element))
        position = {}
        for child in element.children:
            if not child.is_element:
                continue
            position[child.label] = position.get(child.label, 0) + 1
            stack.append(
                (child, "%s/%s[%d]" % (path, child.label, position[child.label]))
            )
    return issues


def conforms(root, dtd: DTD) -> bool:
    """True iff the document conforms to the DTD."""
    return not validate(root, dtd, max_issues=1)


def assert_conforms(root, dtd: DTD) -> None:
    """Raise :class:`DTDValidationError` listing violations, if any."""
    issues = validate(root, dtd, max_issues=10)
    if issues:
        raise DTDValidationError(
            "document does not conform to DTD:\n"
            + "\n".join("  - %s" % issue for issue in issues)
        )
