"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the
subsystems: XML parsing, DTD handling, XPath handling, and the
security-view machinery.

Every class carries a stable machine-readable ``code`` (e.g.
``E_LABEL_DENIED``, ``E_PARSE_XPATH``).  Codes are part of the public
contract: they appear in audit :class:`~repro.obs.events.ErrorEvent`
records, select the CLI's exit status, and never change meaning
across releases — match on ``error.code``, not on message text.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by this library."""

    #: Stable machine-readable error code (see module docstring).
    code = "E_REPRO"


class XMLError(ReproError):
    """Base class of XML document-model errors."""

    code = "E_XML"


class XMLParseError(XMLError):
    """Raised when an XML document cannot be parsed.

    Carries the 1-based ``line`` and ``column`` of the offending input
    position when known.
    """

    code = "E_PARSE_XML"

    def __init__(self, message, line=None, column=None):
        if line is not None:
            message = "%s (at line %d, column %d)" % (message, line, column)
        super().__init__(message)
        self.line = line
        self.column = column


class XMLLimitError(XMLParseError):
    """Raised when input hardening rejects a document before (or
    during) parsing: size, nesting depth, or attribute-count limits
    (see :func:`repro.xmlmodel.parser.parse_document`)."""

    code = "E_PARSE_XML_LIMIT"


class DTDError(ReproError):
    """Base class of DTD errors."""

    code = "E_DTD"


class DTDParseError(DTDError):
    """Raised when DTD text cannot be parsed."""

    code = "E_PARSE_DTD"


class DTDLimitError(DTDParseError):
    """Raised when input hardening rejects DTD text: size,
    group-nesting depth, or per-element attribute-count limits (see
    :func:`repro.dtd.parser.parse_dtd`)."""

    code = "E_PARSE_DTD_LIMIT"


class DTDValidationError(DTDError):
    """Raised when a document fails DTD validation (strict mode)."""

    code = "E_DTD_INVALID"


class ContentModelError(DTDError):
    """Raised on malformed or non-normalizable content models."""

    code = "E_CONTENT_MODEL"


class XPathError(ReproError):
    """Base class of XPath errors."""

    code = "E_XPATH"


class XPathSyntaxError(XPathError):
    """Raised when an XPath expression cannot be parsed."""

    code = "E_PARSE_XPATH"

    def __init__(self, message, position=None):
        if position is not None:
            message = "%s (at offset %d)" % (message, position)
        super().__init__(message)
        self.position = position


class XPathEvaluationError(XPathError):
    """Raised when an XPath expression cannot be evaluated."""

    code = "E_XPATH_EVAL"


class SecurityError(ReproError):
    """Base class of access-control errors."""

    code = "E_SECURITY"


class SpecificationError(SecurityError):
    """Raised for malformed access specifications (unknown element
    types, annotations on edges absent from the DTD, missing parameter
    bindings, ...)."""

    code = "E_SPEC"


class ViewDerivationError(SecurityError):
    """Raised when no sound and complete security view exists for a
    specification (Theorem 3.2's *only if* direction), or when the
    derivation encounters an unsupported construct."""

    code = "E_DERIVE"


class MaterializationAborted(SecurityError):
    """Raised when the view-materialization semantics of Section 3.3
    abort (e.g. a concatenation child did not produce exactly one
    accessible node)."""

    code = "E_MATERIALIZE"


class RewriteError(SecurityError):
    """Raised when a view query cannot be rewritten over the document."""

    code = "E_REWRITE"


class QueryRejectedError(SecurityError):
    """Raised by the engine when a user query references structure that
    is not part of their security view (defensive check; the rewriting
    itself would simply produce the empty query)."""

    code = "E_LABEL_DENIED"


class ResourceError(ReproError):
    """Base class of resource-governor errors: a query exceeded one of
    its :class:`~repro.robustness.governor.QueryLimits` and was
    cooperatively cancelled (see ``docs/robustness.md``)."""

    code = "E_RESOURCE"


class DeadlineExceeded(ResourceError):
    """Raised (cooperatively, at batch granularity) when a query runs
    past its wall-clock deadline."""

    code = "E_DEADLINE"

    def __init__(self, message, deadline_seconds=None, elapsed_seconds=None):
        super().__init__(message)
        self.deadline_seconds = deadline_seconds
        self.elapsed_seconds = elapsed_seconds


class BudgetExceeded(ResourceError):
    """Raised when a query exceeds a work budget: result rows, node
    visits, or frontier/intermediate rows.  ``dimension`` names the
    exhausted budget (``"results"``, ``"visits"``, ``"frontier"``, or
    ``"cancelled"``)."""

    code = "E_BUDGET"

    def __init__(self, message, dimension="", spent=None, limit=None):
        super().__init__(message)
        self.dimension = dimension
        self.spent = spent
        self.limit = limit


class AdmissionRejected(ResourceError):
    """Raised by the serving layer's per-tenant admission controller
    when a request cannot even be queued: the tenant's concurrency
    slots are all busy *and* its waiting line is already at
    ``max_queue_depth``.  Distinct from ``E_DEADLINE`` (which a queued
    request gets when its queue deadline lapses before a slot frees
    up): a rejection is immediate back-pressure, the signal to retry
    elsewhere or later (see ``docs/serving.md``).

    ``retry_after_seconds``, when set, is the server's hint for when a
    retry has a chance (surfaced as the HTTP ``Retry-After`` header).
    """

    code = "E_ADMISSION"

    def __init__(
        self,
        message,
        tenant="",
        queue_depth=None,
        limit=None,
        retry_after_seconds=None,
    ):
        super().__init__(message)
        self.tenant = tenant
        self.queue_depth = queue_depth
        self.limit = limit
        self.retry_after_seconds = retry_after_seconds


class RequestShed(ResourceError):
    """Raised by priority load shedding: the serving layer is
    overloaded (queue-wait utilization past the shedding threshold for
    this request's criticality class) and dropped the request *before*
    queueing it, preserving capacity for more critical traffic.

    Distinct from :class:`AdmissionRejected` (a per-tenant bound was
    hit) — shedding is a server-wide overload response ordered by
    criticality: ``sheddable`` goes first, ``default`` only under
    severe overload, ``critical`` never (it is only ever bounded by
    the hard per-tenant queue limits).  See ``docs/serving.md``.
    """

    code = "E_SHED"

    def __init__(
        self,
        message,
        tenant="",
        criticality="",
        utilization=None,
        retry_after_seconds=None,
    ):
        super().__init__(message)
        self.tenant = tenant
        self.criticality = criticality
        self.utilization = utilization
        self.retry_after_seconds = retry_after_seconds


class FaultInjected(ReproError):
    """Raised by the fault-injection harness
    (:mod:`repro.robustness.faults`) at an instrumented seam.  Never
    raised in production — it exists so chaos tests can distinguish an
    injected fault from a genuine bug."""

    code = "E_FAULT"


def error_code(error: BaseException) -> str:
    """The stable code of any exception (``E_UNKNOWN`` for exceptions
    from outside this hierarchy)."""
    return getattr(error, "code", "E_UNKNOWN")
