"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the
subsystems: XML parsing, DTD handling, XPath handling, and the
security-view machinery.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by this library."""


class XMLError(ReproError):
    """Base class of XML document-model errors."""


class XMLParseError(XMLError):
    """Raised when an XML document cannot be parsed.

    Carries the 1-based ``line`` and ``column`` of the offending input
    position when known.
    """

    def __init__(self, message, line=None, column=None):
        if line is not None:
            message = "%s (at line %d, column %d)" % (message, line, column)
        super().__init__(message)
        self.line = line
        self.column = column


class DTDError(ReproError):
    """Base class of DTD errors."""


class DTDParseError(DTDError):
    """Raised when DTD text cannot be parsed."""


class DTDValidationError(DTDError):
    """Raised when a document fails DTD validation (strict mode)."""


class ContentModelError(DTDError):
    """Raised on malformed or non-normalizable content models."""


class XPathError(ReproError):
    """Base class of XPath errors."""


class XPathSyntaxError(XPathError):
    """Raised when an XPath expression cannot be parsed."""

    def __init__(self, message, position=None):
        if position is not None:
            message = "%s (at offset %d)" % (message, position)
        super().__init__(message)
        self.position = position


class XPathEvaluationError(XPathError):
    """Raised when an XPath expression cannot be evaluated."""


class SecurityError(ReproError):
    """Base class of access-control errors."""


class SpecificationError(SecurityError):
    """Raised for malformed access specifications (unknown element
    types, annotations on edges absent from the DTD, missing parameter
    bindings, ...)."""


class ViewDerivationError(SecurityError):
    """Raised when no sound and complete security view exists for a
    specification (Theorem 3.2's *only if* direction), or when the
    derivation encounters an unsupported construct."""


class MaterializationAborted(SecurityError):
    """Raised when the view-materialization semantics of Section 3.3
    abort (e.g. a concatenation child did not produce exactly one
    accessible node)."""


class RewriteError(SecurityError):
    """Raised when a view query cannot be rewritten over the document."""


class QueryRejectedError(SecurityError):
    """Raised by the engine when a user query references structure that
    is not part of their security view (defensive check; the rewriting
    itself would simply produce the empty query)."""
