"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the
subsystems: XML parsing, DTD handling, XPath handling, and the
security-view machinery.

Every class carries a stable machine-readable ``code`` (e.g.
``E_LABEL_DENIED``, ``E_PARSE_XPATH``).  Codes are part of the public
contract: they appear in audit :class:`~repro.obs.events.ErrorEvent`
records, select the CLI's exit status, and never change meaning
across releases — match on ``error.code``, not on message text.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by this library."""

    #: Stable machine-readable error code (see module docstring).
    code = "E_REPRO"


class XMLError(ReproError):
    """Base class of XML document-model errors."""

    code = "E_XML"


class XMLParseError(XMLError):
    """Raised when an XML document cannot be parsed.

    Carries the 1-based ``line`` and ``column`` of the offending input
    position when known.
    """

    code = "E_PARSE_XML"

    def __init__(self, message, line=None, column=None):
        if line is not None:
            message = "%s (at line %d, column %d)" % (message, line, column)
        super().__init__(message)
        self.line = line
        self.column = column


class DTDError(ReproError):
    """Base class of DTD errors."""

    code = "E_DTD"


class DTDParseError(DTDError):
    """Raised when DTD text cannot be parsed."""

    code = "E_PARSE_DTD"


class DTDValidationError(DTDError):
    """Raised when a document fails DTD validation (strict mode)."""

    code = "E_DTD_INVALID"


class ContentModelError(DTDError):
    """Raised on malformed or non-normalizable content models."""

    code = "E_CONTENT_MODEL"


class XPathError(ReproError):
    """Base class of XPath errors."""

    code = "E_XPATH"


class XPathSyntaxError(XPathError):
    """Raised when an XPath expression cannot be parsed."""

    code = "E_PARSE_XPATH"

    def __init__(self, message, position=None):
        if position is not None:
            message = "%s (at offset %d)" % (message, position)
        super().__init__(message)
        self.position = position


class XPathEvaluationError(XPathError):
    """Raised when an XPath expression cannot be evaluated."""

    code = "E_XPATH_EVAL"


class SecurityError(ReproError):
    """Base class of access-control errors."""

    code = "E_SECURITY"


class SpecificationError(SecurityError):
    """Raised for malformed access specifications (unknown element
    types, annotations on edges absent from the DTD, missing parameter
    bindings, ...)."""

    code = "E_SPEC"


class ViewDerivationError(SecurityError):
    """Raised when no sound and complete security view exists for a
    specification (Theorem 3.2's *only if* direction), or when the
    derivation encounters an unsupported construct."""

    code = "E_DERIVE"


class MaterializationAborted(SecurityError):
    """Raised when the view-materialization semantics of Section 3.3
    abort (e.g. a concatenation child did not produce exactly one
    accessible node)."""

    code = "E_MATERIALIZE"


class RewriteError(SecurityError):
    """Raised when a view query cannot be rewritten over the document."""

    code = "E_REWRITE"


class QueryRejectedError(SecurityError):
    """Raised by the engine when a user query references structure that
    is not part of their security view (defensive check; the rewriting
    itself would simply produce the empty query)."""

    code = "E_LABEL_DENIED"


def error_code(error: BaseException) -> str:
    """The stable code of any exception (``E_UNKNOWN`` for exceptions
    from outside this hierarchy)."""
    return getattr(error, "code", "E_UNKNOWN")
