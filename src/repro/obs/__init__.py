"""repro.obs — observability for the secure-query engine.

Three zero-dependency layers, all off or near-free by default:

* :mod:`repro.obs.trace` — nested :class:`Span` context managers with
  wall times and attributes; the engine derives ``QueryReport.timings``
  (and the end-to-end ``total_seconds``) from these;
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  of counters and histograms (plan-cache traffic, NodeTable builds,
  stage latencies, result cardinalities), gated by a module-level
  enabled flag (:func:`enable_metrics` / :func:`disable_metrics`);
* :mod:`repro.obs.profile` — per-operator execution stats collected
  when a query runs with ``ExecutionOptions(trace=True)``, exposed as
  an EXPLAIN ANALYZE-style :class:`ExplainProfile` tree on
  ``QueryResult.report.profile``.

See ``docs/observability.md`` for usage and overhead guidance.
"""

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    metrics_enabled,
    metrics_registry,
    observe,
    record,
)
from repro.obs.profile import (
    ExplainProfile,
    OperatorStats,
    ProfileCollector,
    ProfileNode,
)
from repro.obs.trace import NULL_SPAN, Span, Tracer

__all__ = [
    # tracing
    "Span",
    "Tracer",
    "NULL_SPAN",
    # metrics
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "metrics_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "record",
    "observe",
    # profiling
    "OperatorStats",
    "ProfileCollector",
    "ProfileNode",
    "ExplainProfile",
]
