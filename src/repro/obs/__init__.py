"""repro.obs — observability for the secure-query engine.

Zero-dependency layers, all off or near-free by default:

* :mod:`repro.obs.trace` — nested :class:`Span` context managers with
  wall times and attributes; the engine derives ``QueryReport.timings``
  (and the end-to-end ``total_seconds``) from these;
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  of counters and histograms (plan-cache traffic, NodeTable builds,
  stage latencies, result cardinalities), gated by a module-level
  enabled flag (:func:`enable_metrics` / :func:`disable_metrics`);
* :mod:`repro.obs.profile` — per-operator execution stats collected
  when a query runs with ``ExecutionOptions(trace=True)``, exposed as
  an EXPLAIN ANALYZE-style :class:`ExplainProfile` tree on
  ``QueryResult.report.profile``;
* :mod:`repro.obs.events` — typed audit events (query, denial,
  policy, error, canary) emitted from the serving path into bounded
  non-blocking sinks (:class:`RingBufferSink`, :class:`JsonlFileSink`,
  :class:`CallbackSink`) via an :class:`EventPipeline` that can never
  fail a query;
* :mod:`repro.obs.audit` — :class:`AuditLog`, the query API over an
  event trail (filters, tail, per-policy denial/latency accounting);
* :mod:`repro.obs.export` — :func:`prometheus_text`, the Prometheus
  text-exposition rendering of the metrics registry;
* :mod:`repro.obs.canary` — :class:`SecurityCanary`, the sampled
  production re-check of served answers against the
  materialized-view oracle;
* :mod:`repro.obs.flight` — :class:`FlightRecorder`, bounded
  tail-biased retention of finished request traces (errors, denials,
  SLO-slow, canary violations always kept; OK traffic
  reservoir-sampled), behind ``GET /debug/traces`` and ``repro trace
  tail``;
* :mod:`repro.obs.slo` — :class:`SLOTracker`, per-tenant latency
  SLOs with fast/slow burn-rate windows, behind ``GET /debug/slo``;
* :mod:`repro.obs.workload` — :class:`WorkloadProfiler`, bounded
  per-tenant heavy hitters over canonical query fingerprints
  (:mod:`repro.xpath.fingerprint`), behind ``GET /debug/workload``
  and ``repro workload top``;
* :mod:`repro.obs.introspect` — cache/memory byte accounting for the
  engine's plan cache, NodeTables, DocumentIndexes, and materialized
  view trees, behind ``engine.introspect()`` and ``GET
  /debug/cachez``.

See ``docs/observability.md`` and ``docs/audit.md`` for usage and
overhead guidance.
"""

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    metrics_enabled,
    metrics_registry,
    observe,
    record,
    series_name,
    set_gauge,
    split_series,
)
from repro.obs.profile import (
    ExplainProfile,
    OperatorStats,
    ProfileCollector,
    ProfileNode,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    TraceContext,
    Tracer,
    new_span_id,
    new_trace_id,
)
from repro.obs.flight import FlightRecorder, TraceRecord, render_trace
from repro.obs.slo import BurnWindow, SLObjective, SLOTracker
from repro.obs.events import (
    CallbackSink,
    CanaryEvent,
    DegradationEvent,
    DenialEvent,
    ErrorEvent,
    Event,
    EventPipeline,
    EventSink,
    JsonlFileSink,
    PolicyEvent,
    QueryEvent,
    RingBufferSink,
    event_from_dict,
    parse_jsonl,
    read_jsonl,
)
from repro.obs.audit import AuditLog, percentile
from repro.obs.export import (
    prometheus_text,
    publish_cache_report,
    publish_workload,
    sanitize_metric_name,
)
from repro.obs.canary import SecurityCanary
from repro.obs.workload import WorkloadEntry, WorkloadProfiler
from repro.obs.introspect import engine_report, plan_cache_report

__all__ = [
    # tracing
    "Span",
    "Tracer",
    "NULL_SPAN",
    "TraceContext",
    "new_trace_id",
    "new_span_id",
    # flight recorder
    "FlightRecorder",
    "TraceRecord",
    "render_trace",
    # SLOs
    "SLObjective",
    "SLOTracker",
    "BurnWindow",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "metrics_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "record",
    "observe",
    "set_gauge",
    "series_name",
    "split_series",
    # profiling
    "OperatorStats",
    "ProfileCollector",
    "ProfileNode",
    "ExplainProfile",
    # events
    "Event",
    "QueryEvent",
    "DenialEvent",
    "PolicyEvent",
    "ErrorEvent",
    "CanaryEvent",
    "DegradationEvent",
    "event_from_dict",
    "parse_jsonl",
    "read_jsonl",
    "EventSink",
    "RingBufferSink",
    "JsonlFileSink",
    "CallbackSink",
    "EventPipeline",
    # audit
    "AuditLog",
    "percentile",
    # export
    "prometheus_text",
    "sanitize_metric_name",
    "publish_workload",
    "publish_cache_report",
    # canary
    "SecurityCanary",
    # workload intelligence
    "WorkloadProfiler",
    "WorkloadEntry",
    # cache introspection
    "engine_report",
    "plan_cache_report",
]
