"""Querying an audit trail: filters and per-policy accounting.

An :class:`AuditLog` wraps a sequence of events — live from a
:class:`~repro.obs.events.RingBufferSink`, or re-parsed from a JSONL
file written by :class:`~repro.obs.events.JsonlFileSink` — and
answers the questions an auditor or SRE actually asks:

* *what happened* — :meth:`AuditLog.events` filters by policy, event
  kind, and time window; :meth:`AuditLog.tail` shows the latest N;
* *how is each policy behaving* — :meth:`AuditLog.stats` aggregates
  per policy: query count, cache hits, denials, errors, canary
  checks/violations, and latency count/mean/p50/p95/max.

The CLI surfaces both as ``repro audit tail`` / ``repro audit stats``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.obs.events import Event, RingBufferSink, read_jsonl

__all__ = ["AuditLog", "percentile"]


def percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (``fraction`` in [0, 1]);
    0.0 for an empty list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if fraction <= 0:
        return ordered[0]
    rank = int(len(ordered) * fraction + 0.999999)  # ceil without math
    return ordered[min(rank, len(ordered)) - 1]


class AuditLog:
    """An in-memory, queryable view over an event sequence."""

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[Event] = ()):
        self._events: List[Event] = list(events)

    @classmethod
    def from_jsonl(cls, path) -> "AuditLog":
        """Load the JSONL trail written by ``JsonlFileSink`` (or
        ``repro query --audit-log``)."""
        return cls(read_jsonl(path))

    @classmethod
    def from_sink(cls, sink: RingBufferSink) -> "AuditLog":
        """Snapshot the current contents of a ring-buffer sink."""
        return cls(sink.events())

    def add(self, event: Event) -> None:
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    # -- filtering -----------------------------------------------------

    def events(
        self,
        kind: Optional[str] = None,
        policy: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> List[Event]:
        """Events matching every given filter, oldest first.  ``since``
        is inclusive, ``until`` exclusive (epoch seconds);
        ``trace_id`` matches the id stamped by the serving layer
        (events without one — policy lifecycle, canary — never
        match)."""
        out = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if policy is not None and getattr(event, "policy", None) != policy:
                continue
            if since is not None and event.timestamp < since:
                continue
            if until is not None and event.timestamp >= until:
                continue
            if (
                trace_id is not None
                and getattr(event, "trace_id", None) != trace_id
            ):
                continue
            out.append(event)
        return out

    def tail(
        self,
        count: int = 10,
        kind: Optional[str] = None,
        policy: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> List[Event]:
        """The most recent ``count`` matching events, oldest first."""
        matching = self.events(kind=kind, policy=policy, trace_id=trace_id)
        return matching[-count:] if count >= 0 else matching

    def policies(self) -> List[str]:
        """Every policy name that appears in the log, sorted."""
        return sorted(
            {
                event.policy
                for event in self._events
                if getattr(event, "policy", None)
            }
        )

    # -- accounting ----------------------------------------------------

    def stats(self, policy: Optional[str] = None) -> Dict[str, dict]:
        """Per-policy accounting: ``{policy: {queries, cache_hits,
        slow, denials, errors, degradations, canary_checks,
        canary_violations, latency: {count, mean, p50, p95, max}}}``.

        Events without a policy attribution (e.g. parse errors before
        policy resolution) aggregate under ``"-"``.
        """
        buckets: Dict[str, dict] = {}
        latencies: Dict[str, List[float]] = {}
        for event in self._events:
            name = getattr(event, "policy", None) or "-"
            if policy is not None and name != policy:
                continue
            bucket = buckets.get(name)
            if bucket is None:
                bucket = buckets[name] = {
                    "queries": 0,
                    "cache_hits": 0,
                    "slow": 0,
                    "denials": 0,
                    "errors": 0,
                    "degradations": 0,
                    "canary_checks": 0,
                    "canary_violations": 0,
                }
                latencies[name] = []
            if event.kind == "query":
                bucket["queries"] += 1
                if event.cache_hit:
                    bucket["cache_hits"] += 1
                if event.slow:
                    bucket["slow"] += 1
                latencies[name].append(event.latency_seconds)
            elif event.kind == "denial":
                bucket["denials"] += 1
            elif event.kind == "error":
                bucket["errors"] += 1
            elif event.kind == "degradation":
                bucket["degradations"] += 1
            elif event.kind == "canary":
                bucket["canary_checks"] += 1
                bucket["canary_violations"] += event.violations
        for name, bucket in buckets.items():
            values = latencies[name]
            bucket["latency"] = {
                "count": len(values),
                "mean": sum(values) / len(values) if values else 0.0,
                "p50": percentile(values, 0.50),
                "p95": percentile(values, 0.95),
                "max": max(values) if values else 0.0,
            }
        return buckets

    def __repr__(self):
        return "AuditLog(events=%d)" % len(self._events)
