"""Sampled security canary: a continuous production check of the
paper's central security theorem.

The engine's guarantee (Section 5) is that for every view query
``p``, the served answer equals ``p`` evaluated on the materialized
security view: ``rewrite(p)(T) == p(Tv)``.  Tests assert this
offline; the canary asserts it *in production*, on a sample of real
traffic: at a configurable ``sample_rate``, the engine re-evaluates
the just-answered query against the materialized-view oracle
(:func:`repro.core.materialize.materialize` +
:class:`~repro.xpath.evaluator.XPathEvaluator`) and compares the two
answers as multisets of serializations — exactly the comparison of
the integration-test oracle.

Every check emits a :class:`~repro.obs.events.CanaryEvent`;
``violations`` (missing + extra answers) **must be zero** — a nonzero
count means either a rewriting bug or a poisoned plan cache, i.e. a
potential information leak, and should page immediately.

Sampling uses a dedicated seeded ``random.Random`` so canary schedules
are reproducible (``SecurityCanary(0.25, seed=42)`` samples the same
request positions every run) and never perturb global RNG state.

The oracle is O(document) per check — materialization is cached per
``(policy, document)`` by the engine, but evaluation is not — so keep
``sample_rate`` small on hot production paths (e.g. ``0.001``); rate
1.0 is for soak tests and incident response.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Optional

from repro.obs.events import CanaryEvent

__all__ = ["SecurityCanary", "oracle_answers", "compare_answers"]


def oracle_answers(query, view_tree) -> Counter:
    """``p(Tv)``: the multiset of serialized answers the materialized
    view yields for ``query`` (elements serialize, text nodes yield
    their value) — the ground truth the served answer must match."""
    from repro.xmlmodel.serialize import serialize
    from repro.xpath.evaluator import XPathEvaluator
    from repro.xpath.parser import parse_xpath

    parsed = parse_xpath(query) if isinstance(query, str) else query
    return Counter(
        serialize(node) if node.is_element else node.value
        for node in XPathEvaluator().evaluate(parsed, view_tree)
    )


def compare_answers(expected: Counter, results) -> tuple:
    """``(missing, extra)`` between the oracle's multiset and a served
    result list (projected element copies or text strings)."""
    from repro.xmlmodel.serialize import serialize

    actual = Counter(
        value if isinstance(value, str) else serialize(value)
        for value in results
    )
    missing = sum((expected - actual).values())
    extra = sum((actual - expected).values())
    return missing, extra


class SecurityCanary:
    """Decides which queries to re-check and runs the oracle
    comparison.  ``checks`` / ``violations`` accumulate totals for the
    lifetime of the canary (also mirrored into the metrics registry by
    the engine)."""

    __slots__ = ("sample_rate", "checks", "violations", "_rng")

    def __init__(
        self, sample_rate: float = 1.0, seed: Optional[int] = None
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                "sample_rate must be within [0, 1], got %r" % (sample_rate,)
            )
        self.sample_rate = sample_rate
        self.checks = 0
        self.violations = 0
        self._rng = random.Random(seed)

    def should_sample(self) -> bool:
        """Whether the next answered query gets re-checked.  Rates 0.0
        and 1.0 never touch the RNG, so full-rate soak runs and
        disabled canaries are exactly deterministic."""
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        return self._rng.random() < self.sample_rate

    def check(
        self,
        policy: str,
        query,
        results,
        view_tree=None,
        document=None,
        view=None,
        spec=None,
    ) -> CanaryEvent:
        """Compare a served answer against the oracle.

        Pass ``view_tree`` when the caller already holds the
        materialized view (the engine caches it per document);
        otherwise ``document`` + ``view`` + ``spec`` materialize one.
        """
        if view_tree is None:
            from repro.core.materialize import materialize

            view_tree = materialize(document, view, spec)
        expected = oracle_answers(query, view_tree)
        missing, extra = compare_answers(expected, results)
        violations = missing + extra
        self.checks += 1
        self.violations += violations
        return CanaryEvent(
            policy=policy,
            query=str(query),
            sample_rate=self.sample_rate,
            expected_count=sum(expected.values()),
            actual_count=len(results),
            missing=missing,
            extra=extra,
            violations=violations,
            ok=violations == 0,
        )

    def __repr__(self):
        return "SecurityCanary(rate=%g, checks=%d, violations=%d)" % (
            self.sample_rate,
            self.checks,
            self.violations,
        )
