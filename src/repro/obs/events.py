"""Structured audit events and pluggable bounded sinks.

The serving path of :class:`~repro.core.engine.SecureQueryEngine`
emits one typed event per security-relevant occurrence:

* :class:`QueryEvent` — a query was answered: policy, view query
  text, rewritten document query text, strategy, cache status, result
  count, node visits, end-to-end latency, and (when the query crossed
  ``ExecutionOptions(slow_query_threshold=...)``) the rendered
  EXPLAIN ANALYZE profile;
* :class:`DenialEvent` — a strict-mode label check rejected a query
  that referenced structure outside the user's view DTD;
* :class:`PolicyEvent` — a policy was registered, dropped, or had its
  caches invalidated;
* :class:`ErrorEvent` — a query failed, with the stable ``code`` of
  the raised :class:`~repro.errors.ReproError`;
* :class:`CanaryEvent` — a sampled security re-check compared the
  served answer against the materialized-view oracle (see
  :mod:`repro.obs.canary`); ``violations`` must be zero;
* :class:`DegradationEvent` — an optimization seam (columnar store,
  index, plan cache) failed and the engine fell back to its reference
  path instead of failing the query (see ``docs/robustness.md``).

Events flow through an :class:`EventPipeline` into sinks.  Sinks are
**bounded and non-blocking by design**: the ring buffer evicts the
oldest event when full, the JSONL file sink rotates and counts (never
raises) write failures, the callback sink swallows callback
exceptions.  The pipeline additionally guards every ``sink.emit``
call, so *no sink can ever fail a query*.

Every event serializes to a JSON-safe dict via :meth:`Event.to_dict`
and parses back via :func:`event_from_dict` / :func:`read_jsonl`, so
an audit trail written by one process can be aggregated by another
(``repro audit stats``, :class:`~repro.obs.audit.AuditLog`).
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Callable, Dict, Iterable, Iterator, List, Optional

__all__ = [
    "Event",
    "QueryEvent",
    "DenialEvent",
    "PolicyEvent",
    "ErrorEvent",
    "CanaryEvent",
    "DegradationEvent",
    "event_from_dict",
    "parse_jsonl",
    "read_jsonl",
    "EventSink",
    "RingBufferSink",
    "JsonlFileSink",
    "CallbackSink",
    "EventPipeline",
]


class Event:
    """Base class of audit events: a ``kind`` tag, a wall-clock
    ``timestamp`` (seconds since the epoch), and typed fields listed
    in ``_fields`` (which drive :meth:`to_dict` / :meth:`from_dict`)."""

    kind = "event"
    _fields: tuple = ()
    __slots__ = ("timestamp",)

    def __init__(self, timestamp: Optional[float] = None):
        self.timestamp = time.time() if timestamp is None else float(timestamp)

    def to_dict(self) -> dict:
        """JSON-safe export; ``from_dict``/:func:`event_from_dict`
        invert it exactly."""
        out: dict = {"kind": self.kind, "timestamp": self.timestamp}
        for name in self._fields:
            out[name] = getattr(self, name)
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "Event":
        """Rebuild an event of this class from a :meth:`to_dict`
        payload (unknown keys are ignored; missing ones use the
        constructor defaults)."""
        keyword_arguments = {
            name: payload[name] for name in cls._fields if name in payload
        }
        return cls(timestamp=payload.get("timestamp"), **keyword_arguments)

    def __repr__(self):
        fields = " ".join(
            "%s=%r" % (name, getattr(self, name)) for name in self._fields
        )
        return "%s(%s)" % (type(self).__name__, fields)


class QueryEvent(Event):
    """One answered query on the serving path."""

    kind = "query"
    _fields = (
        "policy",
        "query",
        "rewritten",
        "strategy",
        "cache_hit",
        "result_count",
        "visits",
        "latency_seconds",
        "slow",
        "profile",
        "fingerprint",
        "trace_id",
    )
    __slots__ = _fields

    def __init__(
        self,
        policy: str = "",
        query: str = "",
        rewritten: str = "",
        strategy: str = "virtual",
        cache_hit: bool = False,
        result_count: int = 0,
        visits: int = 0,
        latency_seconds: float = 0.0,
        slow: bool = False,
        profile: Optional[str] = None,
        fingerprint: str = "",
        trace_id: str = "",
        timestamp: Optional[float] = None,
    ):
        super().__init__(timestamp)
        self.policy = policy
        self.query = query
        self.rewritten = rewritten
        self.strategy = strategy
        self.cache_hit = bool(cache_hit)
        self.result_count = int(result_count)
        self.visits = int(visits)
        self.latency_seconds = float(latency_seconds)
        self.slow = bool(slow)
        self.profile = profile
        self.fingerprint = fingerprint
        self.trace_id = trace_id


class DenialEvent(Event):
    """A strict-mode label check rejected a query (the defensive
    ``_check_labels`` guard of the engine)."""

    kind = "denial"
    _fields = ("policy", "query", "label", "code", "message", "trace_id")
    __slots__ = _fields

    def __init__(
        self,
        policy: str = "",
        query: str = "",
        label: str = "",
        code: str = "E_LABEL_DENIED",
        message: str = "",
        trace_id: str = "",
        timestamp: Optional[float] = None,
    ):
        super().__init__(timestamp)
        self.policy = policy
        self.query = query
        self.label = label
        self.code = code
        self.message = message
        self.trace_id = trace_id


class PolicyEvent(Event):
    """A policy lifecycle change: ``register``, ``drop``, or
    ``invalidate``."""

    kind = "policy"
    _fields = ("action", "policy")
    __slots__ = _fields

    def __init__(
        self,
        action: str = "",
        policy: str = "",
        timestamp: Optional[float] = None,
    ):
        super().__init__(timestamp)
        self.action = action
        self.policy = policy


class ErrorEvent(Event):
    """A query failed with a library error; ``code`` is the stable
    :attr:`~repro.errors.ReproError.code` of the raised exception."""

    kind = "error"
    _fields = ("policy", "query", "code", "message", "trace_id")
    __slots__ = _fields

    def __init__(
        self,
        policy: str = "",
        query: str = "",
        code: str = "E_REPRO",
        message: str = "",
        trace_id: str = "",
        timestamp: Optional[float] = None,
    ):
        super().__init__(timestamp)
        self.policy = policy
        self.query = query
        self.code = code
        self.message = message
        self.trace_id = trace_id


class CanaryEvent(Event):
    """One sampled security re-check of a served answer against the
    materialized-view oracle.  ``violations`` is ``missing + extra``
    (answers the oracle expected but the engine omitted, plus answers
    the engine served that the oracle forbids); a nonzero value is a
    breach of the paper's security theorem and should page."""

    kind = "canary"
    _fields = (
        "policy",
        "query",
        "sample_rate",
        "expected_count",
        "actual_count",
        "missing",
        "extra",
        "violations",
        "ok",
    )
    __slots__ = _fields

    def __init__(
        self,
        policy: str = "",
        query: str = "",
        sample_rate: float = 1.0,
        expected_count: int = 0,
        actual_count: int = 0,
        missing: int = 0,
        extra: int = 0,
        violations: int = 0,
        ok: bool = True,
        timestamp: Optional[float] = None,
    ):
        super().__init__(timestamp)
        self.policy = policy
        self.query = query
        self.sample_rate = float(sample_rate)
        self.expected_count = int(expected_count)
        self.actual_count = int(actual_count)
        self.missing = int(missing)
        self.extra = int(extra)
        self.violations = int(violations)
        self.ok = bool(ok)


class DegradationEvent(Event):
    """An optimization seam failed soft: the engine answered on the
    named fallback path instead of failing the query.  ``seam`` is one
    of the :data:`repro.robustness.SEAM_FALLBACKS` keys, ``fallback``
    the path actually used, ``code`` the stable code of the swallowed
    error."""

    kind = "degradation"
    _fields = ("policy", "seam", "fallback", "code", "message")
    __slots__ = _fields

    def __init__(
        self,
        policy: str = "",
        seam: str = "",
        fallback: str = "",
        code: str = "E_REPRO",
        message: str = "",
        timestamp: Optional[float] = None,
    ):
        super().__init__(timestamp)
        self.policy = policy
        self.seam = seam
        self.fallback = fallback
        self.code = code
        self.message = message


#: kind tag -> event class, for :func:`event_from_dict`.
EVENT_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        QueryEvent,
        DenialEvent,
        PolicyEvent,
        ErrorEvent,
        CanaryEvent,
        DegradationEvent,
    )
}


def event_from_dict(payload: dict) -> Event:
    """Rebuild a typed event from a :meth:`Event.to_dict` payload.

    Unknown kinds raise ``KeyError`` — an audit file from a newer
    library version should fail loudly, not be silently dropped.
    """
    return EVENT_TYPES[payload["kind"]].from_dict(payload)


def parse_jsonl(lines: Iterable[str]) -> Iterator[Event]:
    """Parse JSONL audit lines back into typed events (blank lines
    are skipped)."""
    for line in lines:
        line = line.strip()
        if line:
            yield event_from_dict(json.loads(line))


def read_jsonl(path) -> List[Event]:
    """Load an audit trail written by :class:`JsonlFileSink`."""
    with open(path, "r", encoding="utf-8") as handle:
        return list(parse_jsonl(handle))


# -- sinks ----------------------------------------------------------------


class EventSink:
    """Interface of event consumers.  Implementations must be bounded
    and must prefer dropping events (counted in ``dropped``) over
    blocking or raising; the pipeline guards ``emit`` regardless."""

    #: Events this sink could not record.
    dropped = 0

    def emit(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


class RingBufferSink(EventSink):
    """Keeps the most recent ``capacity`` events in memory; when full,
    the oldest event is evicted (and counted in ``evicted``)."""

    __slots__ = ("capacity", "evicted", "emitted", "dropped", "_buffer")

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("ring buffer capacity must be >= 1")
        self.capacity = capacity
        self.evicted = 0
        self.emitted = 0
        self.dropped = 0
        self._buffer: deque = deque(maxlen=capacity)

    def emit(self, event: Event) -> None:
        if len(self._buffer) == self.capacity:
            self.evicted += 1
        self._buffer.append(event)
        self.emitted += 1

    def events(
        self, kind: Optional[str] = None, policy: Optional[str] = None
    ) -> List[Event]:
        """The buffered events, oldest first, optionally filtered."""
        out = list(self._buffer)
        if kind is not None:
            out = [event for event in out if event.kind == kind]
        if policy is not None:
            out = [
                event
                for event in out
                if getattr(event, "policy", None) == policy
            ]
        return out

    def clear(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)

    def __repr__(self):
        return "RingBufferSink(capacity=%d, buffered=%d, evicted=%d)" % (
            self.capacity,
            len(self._buffer),
            self.evicted,
        )


class JsonlFileSink(EventSink):
    """Appends one JSON line per event to ``path``, with size-based
    rotation: when a write would push the file past ``max_bytes``, the
    file is rotated (``path`` -> ``path.1`` -> ... -> ``path.N`` for
    ``backups`` generations; the oldest generation is deleted).

    Write failures (disk full, permission lost mid-run) increment
    ``dropped`` and never propagate — audit logging must not be able
    to take the serving path down.
    """

    __slots__ = (
        "path",
        "max_bytes",
        "backups",
        "emitted",
        "dropped",
        "rotations",
        "_handle",
        "_size",
    )

    def __init__(
        self,
        path,
        max_bytes: Optional[int] = None,
        backups: int = 1,
    ):
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None)")
        if backups < 0:
            raise ValueError("backups must be >= 0")
        self.path = os.fspath(path)
        self.max_bytes = max_bytes
        self.backups = backups
        self.emitted = 0
        self.dropped = 0
        self.rotations = 0
        self._handle = None
        self._size = 0

    def _open(self):
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
            self._size = self._handle.tell()
        return self._handle

    def _rotate(self) -> None:
        self.close()
        if self.backups == 0:
            os.remove(self.path)
        else:
            oldest = "%s.%d" % (self.path, self.backups)
            if os.path.exists(oldest):
                os.remove(oldest)
            for generation in range(self.backups - 1, 0, -1):
                source = "%s.%d" % (self.path, generation)
                if os.path.exists(source):
                    os.replace(source, "%s.%d" % (self.path, generation + 1))
            os.replace(self.path, "%s.1" % self.path)
        self.rotations += 1

    def emit(self, event: Event) -> None:
        try:
            line = event.to_json() + "\n"
            handle = self._open()
            if (
                self.max_bytes is not None
                and self._size > 0
                and self._size + len(line) > self.max_bytes
            ):
                self._rotate()
                handle = self._open()
            handle.write(line)
            handle.flush()
            self._size += len(line)
            self.emitted += 1
        except Exception:
            self.dropped += 1

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except Exception:
                pass
            self._handle = None
            self._size = 0

    def __repr__(self):
        return "JsonlFileSink(%r, emitted=%d, dropped=%d, rotations=%d)" % (
            self.path,
            self.emitted,
            self.dropped,
            self.rotations,
        )


class CallbackSink(EventSink):
    """Hands each event to ``callback(event)``; callback exceptions
    are swallowed and counted in ``dropped``."""

    __slots__ = ("callback", "emitted", "dropped")

    def __init__(self, callback: Callable[[Event], None]):
        self.callback = callback
        self.emitted = 0
        self.dropped = 0

    def emit(self, event: Event) -> None:
        try:
            self.callback(event)
            self.emitted += 1
        except Exception:
            self.dropped += 1

    def __repr__(self):
        return "CallbackSink(%r, emitted=%d, dropped=%d)" % (
            self.callback,
            self.emitted,
            self.dropped,
        )


class EventPipeline:
    """Fans events out to the attached sinks.

    With no sinks attached the pipeline is inert: the engine's guard
    (``pipeline.active``) short-circuits before any event object is
    even built, so the serving-path cost of an unused pipeline is one
    attribute check.  Each ``sink.emit`` is additionally wrapped in a
    bare except — a misbehaving sink increments ``dropped`` instead of
    failing the query that triggered the event.
    """

    __slots__ = ("_sinks", "emitted", "dropped")

    def __init__(self, sinks: Iterable[EventSink] = ()):
        self._sinks: List[EventSink] = list(sinks)
        self.emitted = 0
        self.dropped = 0

    @property
    def active(self) -> bool:
        """Whether any sink is attached (the engine's emit guard)."""
        return bool(self._sinks)

    def add_sink(self, sink: EventSink) -> EventSink:
        """Attach a sink; returns it (for one-line attach-and-keep)."""
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: EventSink) -> None:
        """Detach a sink (no error if it was never attached)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def sinks(self) -> tuple:
        return tuple(self._sinks)

    def emit(self, event: Event) -> None:
        if not self._sinks:
            return
        self.emitted += 1
        for sink in self._sinks:
            try:
                sink.emit(event)
            except Exception:
                self.dropped += 1

    def close(self) -> None:
        """Close every sink (guarded, like emission)."""
        for sink in self._sinks:
            try:
                sink.close()
            except Exception:
                pass

    def __repr__(self):
        return "EventPipeline(sinks=%d, emitted=%d, dropped=%d)" % (
            len(self._sinks),
            self.emitted,
            self.dropped,
        )
