"""Prometheus text-exposition export of the metrics registry.

:func:`prometheus_text` renders a
:class:`~repro.obs.metrics.MetricsRegistry` (or a ``snapshot()``
dict of one) in the Prometheus text exposition format (version
0.0.4), so an HTTP handler — or ``repro metrics --format
prometheus`` — can serve a scrape endpoint without any client
library:

* every counter becomes ``<prefix>_<name>_total`` with
  ``# TYPE ... counter``;
* every histogram becomes a ``# TYPE ... summary`` pair
  (``_count`` / ``_sum``) plus ``_min`` / ``_max`` gauges (the
  registry keeps streaming min/max, not buckets).

Metric names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``); the dots of registry names map to
underscores (``plan_cache.hits`` -> ``repro_plan_cache_hits_total``).
"""

from __future__ import annotations

import re

__all__ = ["prometheus_text", "sanitize_metric_name"]

_INVALID_CHARACTERS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_START = re.compile(r"^[^a-zA-Z_:]")


def sanitize_metric_name(name: str) -> str:
    """Map an arbitrary registry metric name onto the Prometheus
    metric-name grammar."""
    sanitized = _INVALID_CHARACTERS.sub("_", name)
    if _INVALID_START.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value) -> str:
    """Prometheus sample formatting: integers stay integral, floats
    use repr (full precision)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def prometheus_text(snapshot, prefix: str = "repro") -> str:
    """The Prometheus text-exposition rendering of a metrics snapshot.

    ``snapshot`` is either a :class:`~repro.obs.metrics.MetricsRegistry`
    or the plain dict its ``snapshot()`` returns.  Output is sorted and
    deterministic, and ends with a newline as the format requires.
    """
    if hasattr(snapshot, "snapshot"):
        snapshot = snapshot.snapshot()
    lines = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = "%s_%s_total" % (prefix, sanitize_metric_name(name))
        lines.append("# TYPE %s counter" % metric)
        lines.append("%s %s" % (metric, _format_value(value)))
    for name, histogram in sorted(snapshot.get("histograms", {}).items()):
        metric = "%s_%s" % (prefix, sanitize_metric_name(name))
        lines.append("# TYPE %s summary" % metric)
        lines.append("%s_count %s" % (metric, _format_value(histogram["count"])))
        lines.append("%s_sum %s" % (metric, _format_value(histogram["sum"])))
        lines.append("# TYPE %s_min gauge" % metric)
        lines.append("%s_min %s" % (metric, _format_value(histogram["min"])))
        lines.append("# TYPE %s_max gauge" % metric)
        lines.append("%s_max %s" % (metric, _format_value(histogram["max"])))
    return "\n".join(lines) + "\n" if lines else ""
