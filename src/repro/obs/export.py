"""Prometheus text-exposition export of the metrics registry.

:func:`prometheus_text` renders a
:class:`~repro.obs.metrics.MetricsRegistry` (or a ``snapshot()``
dict of one) in the Prometheus text exposition format (version
0.0.4), so an HTTP handler — or ``repro metrics --format
prometheus`` — can serve a scrape endpoint without any client
library:

* every counter becomes ``<prefix>_<name>_total`` with
  ``# TYPE ... counter``;
* every gauge becomes ``<prefix>_<name>`` with ``# TYPE ... gauge``;
* a histogram **with buckets** becomes a real ``# TYPE ... histogram``
  family: cumulative ``_bucket{le="..."}`` lines (including
  ``le="+Inf"``) plus ``_sum`` / ``_count``, the shape PromQL's
  ``histogram_quantile`` needs for p95/p99;
* a bucketless histogram stays the historical ``summary`` pair
  (``_count`` / ``_sum``) plus ``_min`` / ``_max`` gauges.

Labeled series (snapshot keys like ``name{tenant="nurse"}``, see
:func:`repro.obs.metrics.series_name`) render with their label set on
every sample line; the family's ``# TYPE`` header is emitted once.

Metric names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``); the dots of registry names map to
underscores (``plan_cache.hits`` -> ``repro_plan_cache_hits_total``).

Back-compat shim: before labels existed, the serving layer
interpolated the tenant into the metric *name*
(``serving.latency_seconds.<tenant>``).  For the series in
:data:`LEGACY_TENANT_SERIES` the exporter also emits those old
flattened summary names alongside the labeled form, so dashboards
scraping ``repro_serving_latency_seconds_nurse_count`` keep working
during migration.
"""

from __future__ import annotations

import re

from repro.obs.metrics import metrics_registry, split_series

__all__ = [
    "prometheus_text",
    "sanitize_metric_name",
    "publish_workload",
    "publish_cache_report",
    "LEGACY_TENANT_SERIES",
]

_INVALID_CHARACTERS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_START = re.compile(r"^[^a-zA-Z_:]")
_TENANT_LABEL = re.compile(r'(?:^|,)tenant="([^"]*)"')

#: Labeled histogram series that also export their pre-label
#: tenant-in-the-name summary form (see the module docstring).
LEGACY_TENANT_SERIES = ("serving.latency_seconds", "serving.e2e_seconds")


def sanitize_metric_name(name: str) -> str:
    """Map an arbitrary registry metric name onto the Prometheus
    metric-name grammar."""
    sanitized = _INVALID_CHARACTERS.sub("_", name)
    if _INVALID_START.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value) -> str:
    """Prometheus sample formatting: integers stay integral, floats
    use repr (full precision)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _sample(metric: str, labels: str, value) -> str:
    """One sample line: ``metric{labels} value`` (labels may be '')."""
    if labels:
        return "%s{%s} %s" % (metric, labels, _format_value(value))
    return "%s %s" % (metric, _format_value(value))


def _merge_labels(labels: str, extra: str) -> str:
    return "%s,%s" % (labels, extra) if labels else extra


def _summary_lines(lines, metric, labels, histogram, typed) -> None:
    """The historical summary rendering of one (possibly labeled)
    histogram series; ``typed`` tracks emitted ``# TYPE`` headers."""
    if metric not in typed:
        typed.add(metric)
        lines.append("# TYPE %s summary" % metric)
    lines.append(_sample(metric + "_count", labels, histogram["count"]))
    lines.append(_sample(metric + "_sum", labels, histogram["sum"]))
    if metric + "_min" not in typed:
        typed.add(metric + "_min")
        lines.append("# TYPE %s_min gauge" % metric)
    lines.append(_sample(metric + "_min", labels, histogram["min"]))
    if metric + "_max" not in typed:
        typed.add(metric + "_max")
        lines.append("# TYPE %s_max gauge" % metric)
    lines.append(_sample(metric + "_max", labels, histogram["max"]))


def prometheus_text(snapshot, prefix: str = "repro") -> str:
    """The Prometheus text-exposition rendering of a metrics snapshot.

    ``snapshot`` is either a :class:`~repro.obs.metrics.MetricsRegistry`
    or the plain dict its ``snapshot()`` returns.  Output is sorted and
    deterministic, and ends with a newline as the format requires.
    """
    if hasattr(snapshot, "snapshot"):
        snapshot = snapshot.snapshot()
    lines = []
    typed = set()
    for series, value in sorted(snapshot.get("counters", {}).items()):
        name, labels = split_series(series)
        metric = "%s_%s_total" % (prefix, sanitize_metric_name(name))
        if metric not in typed:
            typed.add(metric)
            lines.append("# TYPE %s counter" % metric)
        lines.append(_sample(metric, labels, value))
    for series, value in sorted(snapshot.get("gauges", {}).items()):
        name, labels = split_series(series)
        metric = "%s_%s" % (prefix, sanitize_metric_name(name))
        if metric not in typed:
            typed.add(metric)
            lines.append("# TYPE %s gauge" % metric)
        lines.append(_sample(metric, labels, value))
    for series, histogram in sorted(snapshot.get("histograms", {}).items()):
        name, labels = split_series(series)
        metric = "%s_%s" % (prefix, sanitize_metric_name(name))
        buckets = histogram.get("buckets")
        if buckets:
            if metric not in typed:
                typed.add(metric)
                lines.append("# TYPE %s histogram" % metric)
            for bound, cumulative in buckets:
                lines.append(
                    _sample(
                        metric + "_bucket",
                        _merge_labels(labels, 'le="%s"' % _format_value(bound)),
                        cumulative,
                    )
                )
            lines.append(
                _sample(
                    metric + "_bucket",
                    _merge_labels(labels, 'le="+Inf"'),
                    histogram["count"],
                )
            )
            lines.append(_sample(metric + "_sum", labels, histogram["sum"]))
            lines.append(_sample(metric + "_count", labels, histogram["count"]))
        else:
            _summary_lines(lines, metric, labels, histogram, typed)
        if name in LEGACY_TENANT_SERIES:
            tenant = _TENANT_LABEL.search(labels)
            if tenant is not None:
                legacy = "%s_%s" % (
                    prefix,
                    sanitize_metric_name("%s.%s" % (name, tenant.group(1))),
                )
                _summary_lines(lines, legacy, "", histogram, typed)
    return "\n".join(lines) + "\n" if lines else ""


def publish_workload(profiler, registry=None) -> None:
    """Fold a :class:`~repro.obs.workload.WorkloadProfiler`'s roll-up
    totals into ``registry`` (the process-wide one by default) as
    ``workload.*`` gauges, labeled per tenant.  Only the bounded
    per-tenant totals are exported — per-fingerprint series would blow
    the scrape's cardinality; the full top-K detail lives behind
    ``GET /debug/workload``."""
    if profiler is None:
        return
    if registry is None:
        registry = metrics_registry()
    report = profiler.report(n=0)
    for tenant, totals in report["tenants"].items():
        labels = {"tenant": tenant}
        registry.set_gauge("workload.queries", totals["queries"], labels)
        registry.set_gauge("workload.errors", totals["errors"], labels)
        registry.set_gauge("workload.denials", totals["denials"], labels)
        registry.set_gauge(
            "workload.fingerprints", totals["fingerprints"], labels
        )
        registry.set_gauge(
            "workload.heavy_hitter_evictions", totals["evictions"], labels
        )
    registry.set_gauge("workload.capacity", report["capacity"])


def publish_cache_report(report, registry=None) -> None:
    """Fold an :func:`~repro.obs.introspect.engine_report` dict into
    ``registry`` as ``cache.*`` gauges labeled by cache name (byte
    estimates, entry counts, and — where the cache tracks them — hit
    ratios and evictions)."""
    if not report:
        return
    if registry is None:
        registry = metrics_registry()
    for cache, section in report.items():
        if not isinstance(section, dict):
            continue
        labels = {"cache": cache}
        if "bytes" in section:
            registry.set_gauge("cache.bytes", section["bytes"], labels)
        if "entries" in section:
            registry.set_gauge("cache.entries", section["entries"], labels)
        if "hit_rate" in section:
            registry.set_gauge("cache.hit_ratio", section["hit_rate"], labels)
        if "evictions" in section:
            registry.set_gauge(
                "cache.evictions", section["evictions"], labels
            )
    if "total_bytes" in report:
        registry.set_gauge("cache.total_bytes", report["total_bytes"])
