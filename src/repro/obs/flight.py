"""Tail-sampled flight recorder: the last-N traces worth keeping.

A production query server cannot retain every trace, but the traces
worth money are exactly the ones a uniform sampler throws away: the
slow outliers, the errors, the security denials, the canary
violations.  The :class:`FlightRecorder` therefore applies **tail-based
retention**:

* every *interesting* trace (error / denied / SLO-slow /
  canary-violation) lands in a bounded FIFO **tail buffer** — always
  kept until capacity evicts the oldest;
* *uninteresting* OK traces go through **reservoir sampling**
  (Algorithm R with a seeded RNG, so a given trace stream retains a
  deterministic subset) into a second bounded buffer, preserving a
  uniform sample of normal traffic for baseline comparison.

Both buffers index by ``trace_id``, so a client holding the id echoed
on its :class:`~repro.serving.protocol.QueryResponse` can fetch the
full span tree from ``GET /debug/traces?trace_id=...`` (or ``repro
trace tail``) after the fact.

Everything is stdlib + one lock; ``record()`` is O(spans) for the
dict conversion and O(1) for retention, far off the query hot path
(it runs once per request, after the response future resolves).
"""

from __future__ import annotations

import random
from collections import deque
from threading import Lock
from time import time
from typing import Deque, Dict, List, Optional

from repro.obs.trace import Span

__all__ = ["TraceRecord", "FlightRecorder", "render_trace"]

#: Error codes classified as security denials for retention purposes.
DENIAL_CODES = frozenset({"E_LABEL_DENIED", "E_SECURITY"})


def _span_dict(span: Span, counter: List[int], parent_id: str) -> dict:
    """``Span.to_dict`` plus deterministic ``span_id`` /
    ``parent_span_id`` fields (preorder ``0001``, ``0002``, ...)."""
    counter[0] += 1
    span_id = "%04x" % counter[0]
    out: dict = {
        "name": span.name,
        "span_id": span_id,
        "parent_span_id": parent_id,
        "duration_seconds": span.duration,
    }
    if span.attributes:
        out["attributes"] = dict(span.attributes)
    if span.children:
        out["children"] = [
            _span_dict(child, counter, span_id) for child in span.children
        ]
    return out


class TraceRecord:
    """One finished request's trace: identity, classification, and the
    span tree (as plain dicts, JSON-safe)."""

    __slots__ = (
        "trace_id",
        "request_id",
        "tenant",
        "policy",
        "query",
        "document",
        "ok",
        "error_code",
        "latency_seconds",
        "slow",
        "canary_violations",
        "fingerprint",
        "recorded_at",
        "spans",
        "seq",
    )

    def __init__(
        self,
        trace_id: str,
        tenant: str = "",
        policy: str = "",
        query: str = "",
        document: str = "",
        request_id: str = "",
        ok: bool = True,
        error_code: str = "",
        latency_seconds: float = 0.0,
        slow: bool = False,
        canary_violations: int = 0,
        fingerprint: str = "",
        spans: Optional[dict] = None,
    ):
        self.trace_id = trace_id
        self.request_id = request_id
        self.tenant = tenant
        self.policy = policy
        self.query = query
        self.document = document
        self.ok = ok
        self.error_code = error_code
        self.latency_seconds = latency_seconds
        self.slow = slow
        self.canary_violations = canary_violations
        self.fingerprint = fingerprint
        self.recorded_at = time()
        self.spans = spans or {}
        self.seq = 0  # assigned by the recorder (stable ordering key)

    @classmethod
    def from_span(cls, root: Span, **fields) -> "TraceRecord":
        """Build a record from a (closed) root span, assigning
        deterministic span ids; a canary-violation attribute set by the
        engine on the root span is folded into the classification."""
        violations = int(root.attributes.get("canary_violations", 0) or 0)
        fields.setdefault("canary_violations", violations)
        # likewise folded from a root-span attribute the engine sets
        # at answer time (see SecureQueryEngine._query_one)
        fields.setdefault(
            "fingerprint", str(root.attributes.get("fingerprint", "") or "")
        )
        record = cls(spans=_span_dict(root, [0], ""), **fields)
        return record

    # -- classification ------------------------------------------------

    @property
    def denied(self) -> bool:
        return self.error_code in DENIAL_CODES

    @property
    def interesting(self) -> bool:
        """Tail-retention class: always kept (until capacity)."""
        return (
            not self.ok
            or self.slow
            or self.canary_violations > 0
        )

    @property
    def status(self) -> str:
        if not self.ok:
            return "denied" if self.denied else "error"
        if self.canary_violations > 0:
            return "canary-violation"
        if self.slow:
            return "slow"
        return "ok"

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "tenant": self.tenant,
            "policy": self.policy,
            "query": self.query,
            "document": self.document,
            "status": self.status,
            "ok": self.ok,
            "error_code": self.error_code,
            "latency_seconds": self.latency_seconds,
            "slow": self.slow,
            "canary_violations": self.canary_violations,
            "fingerprint": self.fingerprint,
            "recorded_at": self.recorded_at,
            "spans": self.spans,
        }

    def __repr__(self):
        return "TraceRecord(%s, %s, tenant=%r, %.3fms)" % (
            self.trace_id[:8],
            self.status,
            self.tenant,
            self.latency_seconds * 1e3,
        )


def render_trace(payload: dict) -> str:
    """Human text rendering of one ``TraceRecord.to_dict`` payload:
    a header line plus the indented span tree."""
    header = "%s  %-16s %-10s %s  %.3fms" % (
        payload.get("trace_id", "")[:16],
        payload.get("tenant", "-") or "-",
        payload.get("status", "?"),
        payload.get("query", ""),
        payload.get("latency_seconds", 0.0) * 1e3,
    )
    lines = [header]

    def walk(span: dict, indent: int) -> None:
        attrs = span.get("attributes") or {}
        rendered = (
            "  " + " ".join("%s=%s" % kv for kv in sorted(attrs.items()))
            if attrs
            else ""
        )
        lines.append(
            "%s%s [%s]  %.3fms%s"
            % (
                "  " * indent,
                span.get("name", "?"),
                span.get("span_id", ""),
                span.get("duration_seconds", 0.0) * 1e3,
                rendered,
            )
        )
        for child in span.get("children", ()):
            walk(child, indent + 1)

    spans = payload.get("spans")
    if spans:
        walk(spans, 1)
    return "\n".join(lines)


class FlightRecorder:
    """Bounded, thread-safe trace retention with tail bias.

    ``capacity``
        Reservoir size for OK traces (uniform sample of normal
        traffic, Algorithm R, deterministic under ``seed``).
    ``tail_capacity``
        FIFO size for interesting traces (errors, denials, SLO-slow,
        canary violations).  Oldest evict first; an eviction is
        counted, never silent.
    """

    def __init__(
        self,
        capacity: int = 128,
        tail_capacity: int = 256,
        seed: int = 0,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got %r" % (capacity,))
        if tail_capacity < 1:
            raise ValueError(
                "tail_capacity must be >= 1, got %r" % (tail_capacity,)
            )
        self.capacity = capacity
        self.tail_capacity = tail_capacity
        self._rng = random.Random(seed)
        self._ok: List[TraceRecord] = []
        self._tail: Deque[TraceRecord] = deque()
        self._index: Dict[str, TraceRecord] = {}
        self._lock = Lock()
        self._seq = 0
        # retention accounting (all monotonic)
        self.recorded = 0
        self.ok_seen = 0
        self.ok_replaced = 0
        self.ok_dropped = 0
        self.tail_kept = 0
        self.tail_evicted = 0

    # -- recording -----------------------------------------------------

    def record(self, record: TraceRecord) -> bool:
        """Offer one finished trace; returns whether it was retained."""
        with self._lock:
            self._seq += 1
            record.seq = self._seq
            self.recorded += 1
            if record.interesting:
                self.tail_kept += 1
                self._tail.append(record)
                self._index[record.trace_id] = record
                if len(self._tail) > self.tail_capacity:
                    evicted = self._tail.popleft()
                    self.tail_evicted += 1
                    self._discard(evicted)
                return True
            # reservoir (Algorithm R) over the OK stream
            self.ok_seen += 1
            if len(self._ok) < self.capacity:
                self._ok.append(record)
                self._index[record.trace_id] = record
                return True
            slot = self._rng.randrange(self.ok_seen)
            if slot < self.capacity:
                replaced = self._ok[slot]
                self.ok_replaced += 1
                self._discard(replaced)
                self._ok[slot] = record
                self._index[record.trace_id] = record
                return True
            self.ok_dropped += 1
            return False

    def _discard(self, record: TraceRecord) -> None:
        # only drop the index entry if it still points at this record
        # (a trace_id collision must not orphan the newer record)
        if self._index.get(record.trace_id) is record:
            del self._index[record.trace_id]

    # -- lookup --------------------------------------------------------

    def get(self, trace_id: str) -> Optional[TraceRecord]:
        with self._lock:
            return self._index.get(trace_id)

    def traces(
        self,
        n: Optional[int] = None,
        tenant: Optional[str] = None,
        status: Optional[str] = None,
    ) -> List[TraceRecord]:
        """Retained traces, newest first, optionally filtered."""
        with self._lock:
            merged = list(self._tail) + list(self._ok)
        merged.sort(key=lambda record: record.seq, reverse=True)
        out = []
        for record in merged:
            if tenant is not None and record.tenant != tenant:
                continue
            if status is not None and record.status != status:
                continue
            out.append(record)
            if n is not None and len(out) >= n:
                break
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._tail) + len(self._ok)

    # -- introspection -------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "recorded": self.recorded,
                "retained": len(self._tail) + len(self._ok),
                "tail": len(self._tail),
                "tail_kept": self.tail_kept,
                "tail_evicted": self.tail_evicted,
                "ok_sampled": len(self._ok),
                "ok_seen": self.ok_seen,
                "ok_replaced": self.ok_replaced,
                "ok_dropped": self.ok_dropped,
                "capacity": self.capacity,
                "tail_capacity": self.tail_capacity,
            }

    def to_dict(
        self,
        n: Optional[int] = None,
        tenant: Optional[str] = None,
        status: Optional[str] = None,
    ) -> dict:
        """The ``GET /debug/traces`` payload: stats + newest-first
        trace dicts."""
        return {
            "stats": self.stats(),
            "traces": [
                record.to_dict()
                for record in self.traces(n=n, tenant=tenant, status=status)
            ],
        }

    def __repr__(self):
        return "FlightRecorder(retained=%d, recorded=%d)" % (
            len(self),
            self.recorded,
        )
