"""Cache and memory introspection: what the engine's caches hold.

Every serving-path cache in :class:`~repro.core.engine.SecureQueryEngine`
trades memory for latency — the plan cache, the per-document columnar
:class:`~repro.xmlmodel.store.NodeTable` and
:class:`~repro.xmlmodel.index.DocumentIndex`, and the per-policy
materialized view trees.  A view-selection policy (and an operator
sizing a deployment) needs to see that trade: entry counts, byte
costs, and hit/eviction counters, in one JSON-safe report.

Byte figures are **estimates with stated precision**: fixed-width
array columns are exact (``itemsize * len``), container overheads use
``sys.getsizeof``, and object trees (cached ASTs, materialized view
subtrees) are node counts times a per-node constant — Python object
graphs have no cheap exact answer, and a stable estimate beats an
O(heap) traversal on a debug endpoint.

The entry point is :func:`engine_report` (surfaced as
``engine.introspect()``, ``GET /debug/cachez``, and the ``cache.*``
Prometheus gauges in :mod:`repro.obs.export`).
"""

from __future__ import annotations

import sys
from typing import Dict

__all__ = [
    "AST_NODE_BYTES",
    "XML_NODE_BYTES",
    "plan_cache_report",
    "engine_report",
    "report_total_bytes",
]

#: Estimated resident bytes per cached AST node: one slotted Python
#: object plus its interned hash and child references.
AST_NODE_BYTES = 96

#: Estimated resident bytes per materialized XML node (element or text
#: leaf): object header, label/value string share, children list slot.
XML_NODE_BYTES = 160


def _entry_bytes(entry) -> int:
    """Estimated bytes of one plan-cache entry: the query text, the
    three pipeline ASTs, and (when built) the compiled plans — all as
    node counts times :data:`AST_NODE_BYTES`."""
    total = sys.getsizeof(entry.query_text)
    for tree in (entry.parsed, entry.rewritten, entry.optimized):
        if tree is not None:
            total += tree.size() * AST_NODE_BYTES
    # lazily built plans mirror the optimized AST's shape; projected
    # runs hold one per-view-target plan of comparable size each
    if entry.plan is not None:
        total += entry.optimized.size() * AST_NODE_BYTES
    if entry.projected is not None:
        total += (
            len(entry.projected) * entry.optimized.size() * AST_NODE_BYTES
        )
    return total


def plan_cache_report(cache) -> Dict[str, object]:
    """Entry count, byte estimate, and full hit/miss/eviction counters
    of one :class:`~repro.core.plancache.PlanCache`."""
    stats = cache.stats().as_dict()
    entries = cache.entries()
    fingerprints = set()
    total = 0
    for entry in entries:
        total += _entry_bytes(entry)
        fingerprint = getattr(entry, "fingerprint", None)
        if fingerprint is not None:
            fingerprints.add(str(fingerprint))
    report = dict(stats)
    report["bytes"] = total
    report["entries"] = len(entries)
    report["distinct_fingerprints"] = len(fingerprints)
    return report


def engine_report(engine) -> Dict[str, object]:
    """The one-stop cache report of a
    :class:`~repro.core.engine.SecureQueryEngine`: plan cache, columnar
    NodeTables, DocumentIndexes, and per-policy materialized view
    trees, each with entry counts and byte estimates, plus a
    ``total_bytes`` roll-up."""
    plan_cache = plan_cache_report(engine.plan_cache)

    stores = list(engine._stores.values())
    node_tables = {
        "entries": len(stores),
        "rows": sum(store.size for _, store in stores),
        "bytes": sum(store.nbytes() for _, store in stores),
    }

    indexes = list(engine._indexes.values())
    document_indexes = {
        "entries": len(indexes),
        "elements": sum(index.size() for _, index in indexes),
        "bytes": sum(index.nbytes() for _, index in indexes),
    }

    materialized_entries = 0
    materialized_nodes = 0
    per_policy: Dict[str, int] = {}
    for name, policy in sorted(engine._policies.items()):
        cached = list(policy.materialized.values())
        if cached:
            per_policy[name] = len(cached)
        materialized_entries += len(cached)
        materialized_nodes += sum(tree.size() for _, tree in cached)
    materialized = {
        "entries": materialized_entries,
        "nodes": materialized_nodes,
        "bytes": materialized_nodes * XML_NODE_BYTES,
        "by_policy": per_policy,
    }

    report = {
        "plan_cache": plan_cache,
        "node_tables": node_tables,
        "document_indexes": document_indexes,
        "materialized_views": materialized,
    }
    report["total_bytes"] = report_total_bytes(report)
    return report


def report_total_bytes(report: Dict[str, object]) -> int:
    """Sum of the ``bytes`` fields of an :func:`engine_report` (or any
    mapping of cache-name -> report-with-bytes)."""
    return sum(
        section["bytes"]
        for section in report.values()
        if isinstance(section, dict) and "bytes" in section
    )
