"""Process-wide metrics: named counters and histograms.

One :class:`MetricsRegistry` (the module-level default returned by
:func:`metrics_registry`) aggregates engine activity across queries:
plan-cache hits/misses/evictions/invalidations, NodeTable and
DocumentIndex builds, per-stage latencies, result cardinalities.
``snapshot()`` returns a plain-dict point-in-time copy (JSON-safe, for
benchmark harnesses and dashboards); ``reset()`` zeroes everything.

Recording is **off by default** and guarded by a module-level flag so
instrumentation left on hot paths costs one function call with a
boolean check when disabled:

    from repro.obs import enable_metrics, metrics_registry
    enable_metrics()
    ... run traffic ...
    metrics_registry().snapshot()

Instrumented call sites use the guarded helpers :func:`record` /
:func:`observe`; direct :class:`Counter`/:class:`Histogram` handles
(via ``registry.counter(name)``) are unconditional and are meant for
tests and tools that own their registry.
"""

from __future__ import annotations

from threading import Lock
from typing import Dict, Optional

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "metrics_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "record",
    "observe",
]

#: Module-level master switch for the guarded helpers below.
_ENABLED = False


def enable_metrics() -> None:
    """Turn on recording into the process-wide registry."""
    global _ENABLED
    _ENABLED = True


def disable_metrics() -> None:
    """Turn recording off (the default); the registry keeps its data."""
    global _ENABLED
    _ENABLED = False


def metrics_enabled() -> bool:
    return _ENABLED


class Counter:
    """A monotonically increasing named integer.

    ``+=`` on a Python int is read-modify-write, so concurrent
    increments from server worker threads would drop updates without
    the per-counter lock."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def __repr__(self):
        return "Counter(%r, %d)" % (self.name, self.value)


class Histogram:
    """Streaming summary of observed values: count, sum, min, max
    (enough for latency/cardinality reporting without keeping samples)."""

    __slots__ = ("name", "count", "total", "minimum", "maximum", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._lock = Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum if self.minimum is not None else 0.0,
            "max": self.maximum if self.maximum is not None else 0.0,
        }

    def __repr__(self):
        return "Histogram(%r, count=%d, mean=%.6g)" % (
            self.name,
            self.count,
            self.mean,
        )


class MetricsRegistry:
    """Named counters and histograms, created on first use.

    Structure mutation (creating a new metric) is lock-protected, and
    each metric carries its own lock for increments/observations, so
    the registry is safe to share across server worker threads."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = Lock()

    # -- handles -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(name, Histogram(name))
        return histogram

    # -- recording (unconditional; see module helpers for guarded) -----

    def increment(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- snapshot / reset ----------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-safe point-in-time copy of every metric."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Zero every metric (handles stay valid)."""
        with self._lock:
            for counter in self._counters.values():
                counter.value = 0
            for histogram in self._histograms.values():
                histogram.count = 0
                histogram.total = 0.0
                histogram.minimum = None
                histogram.maximum = None

    def __repr__(self):
        return "MetricsRegistry(counters=%d, histograms=%d)" % (
            len(self._counters),
            len(self._histograms),
        )


#: The process-wide default registry.
_REGISTRY = MetricsRegistry()


def metrics_registry() -> MetricsRegistry:
    """The process-wide registry the engine records into."""
    return _REGISTRY


def record(name: str, amount: int = 1) -> None:
    """Guarded counter increment: a no-op unless metrics are enabled."""
    if _ENABLED:
        _REGISTRY.increment(name, amount)


def observe(name: str, value: float) -> None:
    """Guarded histogram observation: a no-op unless metrics are enabled."""
    if _ENABLED:
        _REGISTRY.observe(name, value)
