"""Process-wide metrics: named counters, gauges, and histograms.

One :class:`MetricsRegistry` (the module-level default returned by
:func:`metrics_registry`) aggregates engine activity across queries:
plan-cache hits/misses/evictions/invalidations, NodeTable and
DocumentIndex builds, per-stage latencies, result cardinalities.
``snapshot()`` returns a plain-dict point-in-time copy (JSON-safe, for
benchmark harnesses and dashboards); ``reset()`` zeroes everything.

Every metric type takes an optional frozen **label dict** — the
dimensional form the serving layer uses for per-tenant series
(``serving.latency_seconds`` with ``{"tenant": "nurse"}``) instead of
interpolating the tenant into the metric name.  In snapshots a labeled
series renders as a Prometheus-style key
(``serving.latency_seconds{tenant="nurse"}``), which
:mod:`repro.obs.export` splits back into name + labels.

Histograms are streaming summaries (count/sum/min/max) by default; pass
``buckets`` (a sorted tuple of upper bounds, e.g.
:data:`LATENCY_BUCKETS`) on first creation and the histogram also
counts observations into fixed log buckets, which the Prometheus export
renders as real ``_bucket`` lines (so p95/p99 can be computed per
label set).  :class:`Gauge` carries point-in-time values (queue depths,
burn rates) that may go down again — never record those into a
histogram.

Recording is **off by default** and guarded by a module-level flag so
instrumentation left on hot paths costs one function call with a
boolean check when disabled:

    from repro.obs import enable_metrics, metrics_registry
    enable_metrics()
    ... run traffic ...
    metrics_registry().snapshot()

Instrumented call sites use the guarded helpers :func:`record` /
:func:`observe` / :func:`set_gauge`; direct metric handles (via
``registry.counter(name)``) are unconditional and are meant for tests
and tools that own their registry.
"""

from __future__ import annotations

from bisect import bisect_left
from threading import Lock
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "metrics_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "record",
    "observe",
    "set_gauge",
    "series_name",
    "split_series",
]

#: Module-level master switch for the guarded helpers below.
_ENABLED = False

#: Fixed log buckets for latency histograms (seconds): a 1-2.5-5
#: ladder from 0.5 ms to 10 s.  Shared by every ``*_seconds`` series
#: the serving layer records, so per-tenant percentiles are computed
#: over identical bucket bounds.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def enable_metrics() -> None:
    """Turn on recording into the process-wide registry."""
    global _ENABLED
    _ENABLED = True


def disable_metrics() -> None:
    """Turn recording off (the default); the registry keeps its data."""
    global _ENABLED
    _ENABLED = False


def metrics_enabled() -> bool:
    return _ENABLED


def _label_key(labels: Optional[Dict[str, str]]) -> tuple:
    """The hashable, order-insensitive registry key of a label dict."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def series_name(name: str, labels: Optional[Dict[str, str]] = None) -> str:
    """The snapshot key of one series: the bare name, or
    ``name{a="x",b="y"}`` with labels sorted by key."""
    if not labels:
        return name
    body = ",".join(
        '%s="%s"' % (key, value)
        for key, value in sorted((str(k), str(v)) for k, v in labels.items())
    )
    return "%s{%s}" % (name, body)


def split_series(series: str) -> Tuple[str, str]:
    """Inverse-ish of :func:`series_name`: ``(name, label_body)``
    where ``label_body`` is the already-rendered ``a="x",b="y"`` part
    (empty for unlabeled series)."""
    if "{" not in series:
        return series, ""
    name, _, rest = series.partition("{")
    return name, rest.rstrip("}")


class Counter:
    """A monotonically increasing named integer (optionally labeled).

    ``+=`` on a Python int is read-modify-write, so concurrent
    increments from server worker threads would drop updates without
    the per-counter lock."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.labels: Dict[str, str] = dict(labels) if labels else {}
        self.value = 0
        self._lock = Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def __repr__(self):
        return "Counter(%r, %d)" % (series_name(self.name, self.labels), self.value)


class Gauge:
    """A point-in-time value that may go up or down (queue depth, burn
    rate).  ``set`` replaces the value; ``inc``/``dec`` adjust it."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.labels: Dict[str, str] = dict(labels) if labels else {}
        self.value: float = 0.0
        self._lock = Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def __repr__(self):
        return "Gauge(%r, %g)" % (series_name(self.name, self.labels), self.value)


class Histogram:
    """Streaming summary of observed values — count, sum, min, max —
    plus, when constructed with ``buckets`` (sorted upper bounds),
    fixed-bucket counts for real percentile estimation and Prometheus
    ``_bucket`` export.  Values above the last bound only land in the
    implicit ``+Inf`` bucket (= ``count``)."""

    __slots__ = (
        "name",
        "labels",
        "buckets",
        "count",
        "total",
        "minimum",
        "maximum",
        "_bucket_counts",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        buckets: Optional[Tuple[float, ...]] = None,
    ):
        self.name = name
        self.labels: Dict[str, str] = dict(labels) if labels else {}
        self.buckets: Optional[Tuple[float, ...]] = (
            tuple(buckets) if buckets else None
        )
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._bucket_counts: Optional[List[int]] = (
            [0] * len(self.buckets) if self.buckets else None
        )
        self._lock = Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value
            if self._bucket_counts is not None:
                index = bisect_left(self.buckets, value)
                if index < len(self._bucket_counts):
                    self._bucket_counts[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, Prometheus
        ``le`` semantics (the implicit ``+Inf`` bucket is ``count``)."""
        if self._bucket_counts is None:
            return []
        with self._lock:
            counts = list(self._bucket_counts)
        out = []
        running = 0
        for bound, bucket_count in zip(self.buckets, counts):
            running += bucket_count
            out.append((bound, running))
        return out

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (0..1): the upper bound
        of the first bucket whose cumulative count reaches ``q`` of
        the observations.  Falls back to the streaming max beyond the
        last bound, and to min/max without buckets."""
        if self.count == 0:
            return 0.0
        if self._bucket_counts is None:
            return (self.maximum if q >= 0.5 else self.minimum) or 0.0
        target = q * self.count
        for bound, cumulative in self.cumulative_buckets():
            if cumulative >= target:
                return bound
        return self.maximum if self.maximum is not None else 0.0

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum if self.minimum is not None else 0.0,
            "max": self.maximum if self.maximum is not None else 0.0,
        }
        if self._bucket_counts is not None:
            out["buckets"] = [
                [bound, cumulative]
                for bound, cumulative in self.cumulative_buckets()
            ]
        return out

    def __repr__(self):
        return "Histogram(%r, count=%d, mean=%.6g)" % (
            series_name(self.name, self.labels),
            self.count,
            self.mean,
        )


class MetricsRegistry:
    """Named (optionally labeled) counters, gauges, and histograms,
    created on first use.

    Structure mutation (creating a new metric) is lock-protected, and
    each metric carries its own lock for increments/observations, so
    the registry is safe to share across server worker threads."""

    def __init__(self):
        self._counters: Dict[tuple, Counter] = {}
        self._gauges: Dict[tuple, Gauge] = {}
        self._histograms: Dict[tuple, Histogram] = {}
        self._lock = Lock()

    # -- handles -------------------------------------------------------

    def counter(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Counter:
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(key, Counter(name, labels))
        return counter

    def gauge(self, name: str, labels: Optional[Dict[str, str]] = None) -> Gauge:
        key = (name, _label_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(key, Gauge(name, labels))
        return gauge

    def histogram(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> Histogram:
        """Get-or-create; ``buckets`` only takes effect on the call
        that creates the series (all later callers share it)."""
        key = (name, _label_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    key, Histogram(name, labels, buckets=buckets)
                )
        return histogram

    # -- recording (unconditional; see module helpers for guarded) -----

    def increment(
        self,
        name: str,
        amount: int = 1,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        self.counter(name, labels).inc(amount)

    def observe(
        self,
        name: str,
        value: float,
        labels: Optional[Dict[str, str]] = None,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.histogram(name, labels, buckets=buckets).observe(value)

    def set_gauge(
        self,
        name: str,
        value: float,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        self.gauge(name, labels).set(value)

    # -- snapshot / reset ----------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-safe point-in-time copy of every metric.  Labeled
        series key as ``name{label="value"}`` (see
        :func:`series_name`); unlabeled keys are the bare name, so
        pre-label consumers keep working unchanged."""
        with self._lock:  # vs concurrent first-use series creation
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "counters": {
                series_name(counter.name, counter.labels): counter.value
                for counter in sorted(
                    counters, key=lambda c: series_name(c.name, c.labels)
                )
            },
            "gauges": {
                series_name(gauge.name, gauge.labels): gauge.value
                for gauge in sorted(
                    gauges, key=lambda g: series_name(g.name, g.labels)
                )
            },
            "histograms": {
                series_name(histogram.name, histogram.labels): histogram.as_dict()
                for histogram in sorted(
                    histograms, key=lambda h: series_name(h.name, h.labels)
                )
            },
        }

    def reset(self) -> None:
        """Zero every metric (handles stay valid)."""
        with self._lock:
            for counter in self._counters.values():
                counter.value = 0
            for gauge in self._gauges.values():
                gauge.value = 0.0
            for histogram in self._histograms.values():
                histogram.count = 0
                histogram.total = 0.0
                histogram.minimum = None
                histogram.maximum = None
                if histogram._bucket_counts is not None:
                    histogram._bucket_counts = [0] * len(histogram.buckets)

    def __repr__(self):
        return "MetricsRegistry(counters=%d, gauges=%d, histograms=%d)" % (
            len(self._counters),
            len(self._gauges),
            len(self._histograms),
        )


#: The process-wide default registry.
_REGISTRY = MetricsRegistry()


def metrics_registry() -> MetricsRegistry:
    """The process-wide registry the engine records into."""
    return _REGISTRY


def record(
    name: str, amount: int = 1, labels: Optional[Dict[str, str]] = None
) -> None:
    """Guarded counter increment: a no-op unless metrics are enabled."""
    if _ENABLED:
        _REGISTRY.increment(name, amount, labels)


def observe(
    name: str,
    value: float,
    labels: Optional[Dict[str, str]] = None,
    buckets: Optional[Tuple[float, ...]] = None,
) -> None:
    """Guarded histogram observation: a no-op unless metrics are enabled."""
    if _ENABLED:
        _REGISTRY.observe(name, value, labels, buckets=buckets)


def set_gauge(
    name: str, value: float, labels: Optional[Dict[str, str]] = None
) -> None:
    """Guarded gauge set: a no-op unless metrics are enabled."""
    if _ENABLED:
        _REGISTRY.set_gauge(name, value, labels)
