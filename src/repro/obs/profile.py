"""Per-operator execution profiles: the EXPLAIN ANALYZE substrate.

A compiled plan (:mod:`repro.xpath.plan`) is a tree of operators whose
runtime choices — posting merge-join vs child-link walk, interval join
vs subtree scan, object-backend fallback — are invisible from the
outside.  When a query runs with ``ExecutionOptions(trace=True)`` the
engine attaches a :class:`ProfileCollector` to the plan runtime; every
operator then reports each invocation (frontier rows in, rows out, the
kernel it chose, qualifier short-circuits) at batch granularity.

After execution the engine pairs the collected stats with the plan's
operator tree into an :class:`ExplainProfile` — a tree of
:class:`ProfileNode` mirroring the plan shape — exposed as
``QueryResult.report.profile`` with an EXPLAIN ANALYZE-style text
rendering (:meth:`ExplainProfile.render`) and a JSON-safe
:meth:`ExplainProfile.to_dict` for benchmark harnesses.

Collection is strictly opt-in: with no collector attached the only
cost left in the kernels is one ``rt.profile is not None`` check per
operator invocation (set-at-a-time, so per *batch*, not per node).
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = [
    "OperatorStats",
    "ProfileCollector",
    "ProfileNode",
    "ExplainProfile",
]


class OperatorStats:
    """Accumulated execution counters of one plan operator."""

    __slots__ = ("calls", "rows_in", "rows_out", "kernels", "short_circuits")

    def __init__(self):
        self.calls = 0
        self.rows_in = 0
        self.rows_out = 0
        #: kernel name -> times chosen (an operator may pick different
        #: kernels on different invocations, e.g. by fanout heuristic)
        self.kernels: Dict[str, int] = {}
        #: and/or evaluations answered without the right operand
        self.short_circuits = 0

    @property
    def selectivity(self) -> float:
        """rows_out / rows_in (1.0 when nothing flowed in)."""
        return self.rows_out / self.rows_in if self.rows_in else 1.0

    def as_dict(self) -> dict:
        out: dict = {
            "calls": self.calls,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
        }
        if self.kernels:
            out["kernels"] = dict(self.kernels)
        if self.short_circuits:
            out["short_circuits"] = self.short_circuits
        return out

    def __repr__(self):
        return "OperatorStats(calls=%d, rows_in=%d, rows_out=%d)" % (
            self.calls,
            self.rows_in,
            self.rows_out,
        )


class ProfileCollector:
    """Gathers :class:`OperatorStats` keyed by operator identity, plus
    plan-level events (e.g. ``object-backend-fallback``).

    The collector holds no reference to the operators themselves; the
    plan stays alive for the duration of the execution, so ``id()``
    keys are stable."""

    __slots__ = ("_stats", "events")

    def __init__(self):
        self._stats: Dict[int, OperatorStats] = {}
        self.events: Dict[str, int] = {}

    def stats_for(self, op) -> OperatorStats:
        stats = self._stats.get(id(op))
        if stats is None:
            stats = OperatorStats()
            self._stats[id(op)] = stats
        return stats

    def record(self, op, rows_in: int, rows_out: int, kernel: Optional[str] = None):
        """One operator invocation: frontier sizes and chosen kernel."""
        stats = self.stats_for(op)
        stats.calls += 1
        stats.rows_in += rows_in
        stats.rows_out += rows_out
        if kernel is not None:
            stats.kernels[kernel] = stats.kernels.get(kernel, 0) + 1

    def short_circuit(self, op) -> None:
        self.stats_for(op).short_circuits += 1

    def event(self, name: str, amount: int = 1) -> None:
        self.events[name] = self.events.get(name, 0) + amount

    def lookup(self, op) -> Optional[OperatorStats]:
        """The stats of an operator, ``None`` if it never ran."""
        return self._stats.get(id(op))

    def __len__(self) -> int:
        return len(self._stats)


class ProfileNode:
    """One operator (or grouping) node of an explain profile tree."""

    __slots__ = ("name", "detail", "stats", "children")

    def __init__(
        self,
        name: str,
        detail: str = "",
        stats: Optional[OperatorStats] = None,
        children: Optional[List["ProfileNode"]] = None,
    ):
        self.name = name
        self.detail = detail
        self.stats = stats
        self.children = children if children is not None else []

    def to_dict(self) -> dict:
        out: dict = {"operator": self.name}
        if self.detail:
            out["detail"] = self.detail
        if self.stats is not None:
            out.update(self.stats.as_dict())
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def _lines(self, indent: int) -> List[str]:
        label = self.name if not self.detail else "%s %s" % (self.name, self.detail)
        stats = self.stats
        if stats is None and self.children:
            # structural grouping (slash, projection target): the
            # children carry the numbers
            annotation = ""
        elif stats is None or stats.calls == 0:
            annotation = "(never executed)"
        else:
            parts = [
                "calls=%d" % stats.calls,
                "rows=%d->%d" % (stats.rows_in, stats.rows_out),
            ]
            if stats.kernels:
                parts.append(
                    "kernel=%s"
                    % ",".join(
                        "%s:%d" % kv for kv in sorted(stats.kernels.items())
                    )
                )
            if stats.short_circuits:
                parts.append("short_circuits=%d" % stats.short_circuits)
            annotation = "(%s)" % " ".join(parts)
        line = "%s-> %s" % ("  " * indent, label)
        if annotation:
            line += "  " + annotation
        lines = [line]
        for child in self.children:
            lines.extend(child._lines(indent + 1))
        return lines

    def render(self, indent: int = 0) -> str:
        return "\n".join(self._lines(indent))

    def __repr__(self):
        return "ProfileNode(%r, children=%d)" % (self.name, len(self.children))


class ExplainProfile:
    """The full EXPLAIN ANALYZE artifact of one query execution: one
    operator tree per executed plan (projected evaluation runs one plan
    per view target) plus plan-level events."""

    __slots__ = ("query", "strategy", "roots", "events")

    def __init__(
        self,
        query: str,
        strategy: str = "virtual",
        roots: Optional[List[ProfileNode]] = None,
        events: Optional[Dict[str, int]] = None,
    ):
        self.query = query
        self.strategy = strategy
        self.roots = roots if roots is not None else []
        self.events = dict(events) if events else {}

    def to_dict(self) -> dict:
        out: dict = {
            "query": self.query,
            "strategy": self.strategy,
            "plans": [root.to_dict() for root in self.roots],
        }
        if self.events:
            out["events"] = dict(self.events)
        return out

    def render(self) -> str:
        """EXPLAIN ANALYZE-style annotated plan tree."""
        lines = ["EXPLAIN ANALYZE  strategy=%s" % self.strategy]
        lines.append("query: %s" % self.query)
        for root in self.roots:
            lines.append(root.render())
        for name, count in sorted(self.events.items()):
            lines.append("event: %s x%d" % (name, count))
        return "\n".join(lines)

    def __repr__(self):
        return "ExplainProfile(%r, strategy=%r, plans=%d)" % (
            self.query,
            self.strategy,
            len(self.roots),
        )
