"""Per-tenant SLO tracking with multi-window burn rates.

The serving layer promises each tenant a latency SLO — "*target*
fraction of requests finish under *threshold* seconds, and errors
count against the budget".  :class:`SLOTracker` measures compliance
the way an on-call alert would:

* every request is classified **good** (ok and under threshold) or
  **bad** (error, denial, or over threshold);
* two rolling time windows — a **fast** window (default 5 minutes,
  catches a sudden regression) and a **slow** window (default 1 hour,
  catches a smoulder) — each track the bad fraction with second-level
  bucket resolution;
* the **burn rate** of a window is ``bad_fraction / error_budget``
  where ``error_budget = 1 - target``.  Burn 1.0 means spending the
  budget exactly as fast as the SLO allows; the classic page
  condition is *both* windows burning hot (fast catches the spike,
  slow confirms it is not a blip).

Windows are fixed rings of ``(epoch, good, bad)`` buckets: O(1)
memory per tenant, O(buckets) to read, O(1) to write.  The clock is
injectable so tests can drive time deterministically.

Totals are mirrored into the ambient metrics registry (guarded —
free when metrics are disabled) as labeled counters
``slo.requests{tenant=...}`` / ``slo.breaches{tenant=...}``, so the
Prometheus endpoint exposes burn counters alongside the latency
histograms.
"""

from __future__ import annotations

from threading import Lock
from time import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs import metrics as metrics_mod

__all__ = ["SLObjective", "SLOTracker", "BurnWindow"]


class SLObjective:
    """One latency SLO: ``target`` fraction of requests under
    ``threshold_seconds``, errors always counting as bad."""

    __slots__ = ("threshold_seconds", "target")

    def __init__(self, threshold_seconds: float = 0.25, target: float = 0.99):
        if threshold_seconds <= 0:
            raise ValueError(
                "threshold_seconds must be > 0, got %r" % (threshold_seconds,)
            )
        if not 0.0 < target < 1.0:
            raise ValueError(
                "target must be in (0, 1), got %r" % (target,)
            )
        self.threshold_seconds = threshold_seconds
        self.target = target

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target

    def is_bad(self, latency_seconds: float, ok: bool) -> bool:
        return (not ok) or latency_seconds > self.threshold_seconds

    def to_dict(self) -> dict:
        return {
            "threshold_seconds": self.threshold_seconds,
            "target": self.target,
            "error_budget": self.error_budget,
        }

    def __repr__(self):
        return "SLObjective(%.3fs @ %.4f)" % (self.threshold_seconds, self.target)


class BurnWindow:
    """A rolling good/bad window: ``buckets`` ring slots of
    ``bucket_seconds`` each (window span = product of the two).

    Each slot stores ``(epoch, good, bad)``; a write into a slot whose
    epoch is stale resets it, so expiry costs nothing until the slot
    is touched or read."""

    __slots__ = ("bucket_seconds", "buckets", "_ring")

    def __init__(self, window_seconds: float, buckets: int = 30):
        if window_seconds <= 0:
            raise ValueError(
                "window_seconds must be > 0, got %r" % (window_seconds,)
            )
        if buckets < 1:
            raise ValueError("buckets must be >= 1, got %r" % (buckets,))
        self.bucket_seconds = float(window_seconds) / buckets
        self.buckets = buckets
        self._ring: List[Tuple[int, int, int]] = [(-1, 0, 0)] * buckets

    @property
    def window_seconds(self) -> float:
        return self.bucket_seconds * self.buckets

    def add(self, now: float, bad: bool) -> None:
        epoch = int(now / self.bucket_seconds)
        slot = epoch % self.buckets
        stored_epoch, good, worse = self._ring[slot]
        if stored_epoch != epoch:
            good, worse = 0, 0
        if bad:
            worse += 1
        else:
            good += 1
        self._ring[slot] = (epoch, good, worse)

    def counts(self, now: float) -> Tuple[int, int]:
        """``(good, bad)`` over the live portion of the window."""
        current = int(now / self.bucket_seconds)
        oldest = current - self.buckets + 1
        good = bad = 0
        for epoch, g, b in self._ring:
            if oldest <= epoch <= current:
                good += g
                bad += b
        return good, bad

    def bad_fraction(self, now: float) -> float:
        good, bad = self.counts(now)
        total = good + bad
        return bad / total if total else 0.0


class _TenantState:
    __slots__ = ("fast", "slow", "requests", "breaches", "last_latency")

    def __init__(self, fast_window: float, slow_window: float):
        self.fast = BurnWindow(fast_window)
        self.slow = BurnWindow(slow_window)
        self.requests = 0
        self.breaches = 0
        self.last_latency = 0.0


class SLOTracker:
    """Tracks one :class:`SLObjective` across tenants, with fast and
    slow burn windows per tenant.

    ``clock`` defaults to ``time.time``; tests inject a fake to drive
    window expiry deterministically."""

    def __init__(
        self,
        objective: Optional[SLObjective] = None,
        fast_window_seconds: float = 300.0,
        slow_window_seconds: float = 3600.0,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.objective = objective or SLObjective()
        self.fast_window_seconds = fast_window_seconds
        self.slow_window_seconds = slow_window_seconds
        self._clock = clock or time
        self._tenants: Dict[str, _TenantState] = {}
        self._lock = Lock()

    def observe(self, tenant: str, latency_seconds: float, ok: bool) -> bool:
        """Record one request; returns True when it breached the SLO
        (slow or failed) — the caller's tail-retention signal."""
        bad = self.objective.is_bad(latency_seconds, ok)
        now = self._clock()
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                state = self._tenants[tenant] = _TenantState(
                    self.fast_window_seconds, self.slow_window_seconds
                )
            state.requests += 1
            state.last_latency = latency_seconds
            if bad:
                state.breaches += 1
            state.fast.add(now, bad)
            state.slow.add(now, bad)
        metrics_mod.record("slo.requests", labels={"tenant": tenant})
        if bad:
            metrics_mod.record("slo.breaches", labels={"tenant": tenant})
        return bad

    def burn_rates(self, tenant: str) -> Tuple[float, float]:
        """``(fast, slow)`` burn rates for one tenant (0.0 when
        unseen)."""
        now = self._clock()
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                return 0.0, 0.0
            budget = self.objective.error_budget
            return (
                state.fast.bad_fraction(now) / budget,
                state.slow.bad_fraction(now) / budget,
            )

    def snapshot(self) -> dict:
        """The ``GET /debug/slo`` payload: the objective plus, per
        tenant, lifetime totals and both windows' bad fractions and
        burn rates."""
        now = self._clock()
        with self._lock:
            tenants = {}
            budget = self.objective.error_budget
            for tenant, state in sorted(self._tenants.items()):
                fast_good, fast_bad = state.fast.counts(now)
                slow_good, slow_bad = state.slow.counts(now)
                fast_total = fast_good + fast_bad
                slow_total = slow_good + slow_bad
                fast_fraction = fast_bad / fast_total if fast_total else 0.0
                slow_fraction = slow_bad / slow_total if slow_total else 0.0
                tenants[tenant] = {
                    "requests": state.requests,
                    "breaches": state.breaches,
                    "compliance": (
                        1.0 - state.breaches / state.requests
                        if state.requests
                        else 1.0
                    ),
                    "last_latency_seconds": state.last_latency,
                    "fast": {
                        "window_seconds": state.fast.window_seconds,
                        "requests": fast_total,
                        "bad": fast_bad,
                        "bad_fraction": fast_fraction,
                        "burn_rate": fast_fraction / budget,
                    },
                    "slow": {
                        "window_seconds": state.slow.window_seconds,
                        "requests": slow_total,
                        "bad": slow_bad,
                        "bad_fraction": slow_fraction,
                        "burn_rate": slow_fraction / budget,
                    },
                }
        return {"objective": self.objective.to_dict(), "tenants": tenants}

    def __repr__(self):
        with self._lock:
            return "SLOTracker(%r, tenants=%d)" % (
                self.objective,
                len(self._tenants),
            )
