"""Zero-dependency span tracing for the serving path.

A :class:`Span` is one timed region of work — a pipeline stage, a plan
compilation, a whole query — with a name, optional attributes, a wall
time measured by ``perf_counter``, and nested child spans.  A
:class:`Tracer` hands out spans as context managers and maintains the
nesting stack, so instrumented code reads as::

    tracer = Tracer()
    with tracer.span("query", policy="nurse") as query_span:
        with tracer.span("parse"):
            ...
        with tracer.span("evaluate") as ev:
            results = ...
            ev.set(results=len(results))
    query_span.duration      # end-to-end wall seconds

The engine derives ``QueryReport.timings`` from the stage spans (the
pre-1.2 ``perf_counter()`` bookkeeping kept the same numbers, so the
report format is unchanged) and ``QueryReport.total_seconds`` from the
enclosing query span — the true end-to-end wall time, not the sum of
possibly-overlapping stage entries.

A disabled tracer (``Tracer(enabled=False)``) returns a shared no-op
span: no allocation, no clock reads, no bookkeeping — instrumentation
left in place costs one attribute check.
"""

from __future__ import annotations

import uuid
from time import perf_counter
from typing import Dict, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "TraceContext",
    "new_trace_id",
    "new_span_id",
]


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id (request-scoped correlation key)."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-char span id."""
    return uuid.uuid4().hex[:16]


class TraceContext:
    """The request-scoped trace identity minted at ingress.

    ``trace_id`` correlates every span of one request across the
    serving stack (queue wait, batch, engine stages) and is echoed on
    the :class:`~repro.serving.protocol.QueryResponse`;  ``span_id``
    names the server's root span; ``parent_span_id`` is the *client's*
    span when the caller propagated one (the ``X-Repro-Trace`` header
    form ``<trace_id>-<parent_span_id>``)."""

    __slots__ = ("trace_id", "span_id", "parent_span_id")

    def __init__(
        self,
        trace_id: str,
        span_id: Optional[str] = None,
        parent_span_id: str = "",
    ):
        self.trace_id = trace_id
        self.span_id = span_id if span_id is not None else new_span_id()
        self.parent_span_id = parent_span_id

    @classmethod
    def new(cls) -> "TraceContext":
        return cls(new_trace_id())

    @classmethod
    def from_header(cls, header: str) -> "TraceContext":
        """Parse an ``X-Repro-Trace`` header: ``<trace_id>`` or
        ``<trace_id>-<parent_span_id>``.  Blank input mints a fresh
        context."""
        header = (header or "").strip()
        if not header:
            return cls.new()
        trace_id, _, parent = header.partition("-")
        return cls(trace_id, parent_span_id=parent)

    def to_header(self) -> str:
        return (
            "%s-%s" % (self.trace_id, self.span_id)
            if self.span_id
            else self.trace_id
        )

    def __repr__(self):
        return "TraceContext(trace_id=%r, span_id=%r, parent_span_id=%r)" % (
            self.trace_id,
            self.span_id,
            self.parent_span_id,
        )


class Span:
    """One timed, named, attributed region of work (a context manager).

    ``duration`` is the wall-clock seconds between ``__enter__`` and
    ``__exit__`` (for a still-open span, the time elapsed so far)."""

    __slots__ = ("name", "attributes", "started", "ended", "children", "_tracer")

    def __init__(self, name: str, tracer: Optional["Tracer"] = None, **attributes):
        self.name = name
        self.attributes: Dict[str, object] = attributes
        self.started: Optional[float] = None
        self.ended: Optional[float] = None
        self.children: List["Span"] = []
        self._tracer = tracer

    # -- context manager -----------------------------------------------

    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer is not None:
            stack = tracer._stack
            (stack[-1].children if stack else tracer.roots).append(self)
            stack.append(self)
        self.started = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.ended = perf_counter()
        tracer = self._tracer
        if tracer is not None and tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        return False

    # -- introspection -------------------------------------------------

    @property
    def duration(self) -> float:
        if self.started is None:
            return 0.0
        return (self.ended if self.ended is not None else perf_counter()) - self.started

    def set(self, **attributes) -> "Span":
        """Attach (or overwrite) attributes on the span."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "duration_seconds": self.duration}
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def render(self, indent: int = 0) -> str:
        """Indented multi-line text rendering of the span subtree."""
        attrs = (
            "  " + " ".join("%s=%s" % kv for kv in sorted(self.attributes.items()))
            if self.attributes
            else ""
        )
        lines = [
            "%s%s  %.3fms%s" % ("  " * indent, self.name, self.duration * 1e3, attrs)
        ]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self):
        return "Span(%r, %.6fs, children=%d)" % (
            self.name,
            self.duration,
            len(self.children),
        )


class _NullSpan:
    """Shared no-op span returned by disabled tracers: entering,
    exiting, and attribute setting all cost nothing measurable."""

    __slots__ = ()
    name = "<disabled>"
    attributes: Dict[str, object] = {}
    children: List[Span] = []
    started = None
    ended = None
    duration = 0.0

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attributes):
        return self

    def to_dict(self) -> dict:
        return {}

    def render(self, indent: int = 0) -> str:
        return ""

    def __repr__(self):
        return "NULL_SPAN"


#: The shared no-op span handed out by disabled tracers.
NULL_SPAN = _NullSpan()


class Tracer:
    """Hands out nested :class:`Span` context managers.

    ``roots`` collects the top-level spans opened on this tracer (one
    per traced request, usually).  A disabled tracer returns
    :data:`NULL_SPAN` from :meth:`span` and records nothing."""

    __slots__ = ("enabled", "roots", "_stack")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, **attributes):
        """A new child span of the currently open span (or a new root)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(name, tracer=self, **attributes)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @property
    def root(self) -> Optional[Span]:
        """The first root span (the usual single-request case)."""
        return self.roots[0] if self.roots else None

    def to_dict(self) -> dict:
        return {"spans": [span.to_dict() for span in self.roots]}

    def __repr__(self):
        return "Tracer(enabled=%r, roots=%d)" % (self.enabled, len(self.roots))
