"""Workload intelligence: per-tenant heavy hitters over query shapes.

A budget-aware view-selection policy (Cautis et al.'s view
intersections; Chebotko & Fu's materialized-view selection) is
workload-driven: it needs to know which query *shapes* dominate, per
tenant, how they behave (latency, visits, result sizes), and how well
the caches already serve them.  :class:`WorkloadProfiler` is that
observation layer.

Aggregation is keyed ``(tenant, policy, fingerprint)`` where the
fingerprint is the constant-masked canonical AST shape from
:mod:`repro.xpath.fingerprint` — so ``//patient[wardNo = "1"]`` and
``//patient[wardNo = "7"]`` fold into one entry.  Per entry the
profiler keeps a count, a log-bucket latency histogram (the shared
:data:`~repro.obs.metrics.LATENCY_BUCKETS` ladder, so p50/p95 line up
with the serving series), node-visit and result-count totals, plan
cache hit counts, and error/denial counts.

Cardinality is **bounded**: each tenant holds at most ``capacity``
entries via the space-saving heavy-hitter sketch (Metwally, Agrawal &
El Abbadi, "Efficient computation of frequent and top-k elements in
data streams").  When a new shape arrives at a full sketch, the
minimum-count entry is evicted and the newcomer inherits its count as
an over-count *error bound* — the classic space-saving guarantee: a
reported count is exact to within ``error``, and any shape with true
frequency above ``N / capacity`` is guaranteed to be present.  The
per-entry ``error`` and per-tenant eviction counters are exposed so a
consumer can tell a certain heavy hitter from a churn artifact.

Thread safety: one lock per profiler.  The engine hot path pays a
single ``profiler is not None`` check when profiling is off, and one
lock + dict update + histogram observe when on — microseconds against
millisecond-scale secure queries.
"""

from __future__ import annotations

from threading import Lock
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import LATENCY_BUCKETS, Histogram

__all__ = ["WorkloadProfiler", "WorkloadEntry"]


class WorkloadEntry:
    """Aggregated stats for one ``(tenant, policy, fingerprint)``.

    ``count`` is the space-saving estimate; ``error`` bounds its
    over-count (0 for entries that never inherited an evicted slot),
    so the true frequency lies in ``[count - error, count]``."""

    __slots__ = (
        "tenant",
        "policy",
        "fingerprint",
        "shape",
        "count",
        "error",
        "errors",
        "denials",
        "cache_hits",
        "visits",
        "results",
        "latency",
    )

    def __init__(self, tenant: str, policy: str, fingerprint: str, shape: str):
        self.tenant = tenant
        self.policy = policy
        self.fingerprint = fingerprint
        self.shape = shape
        self.count = 0
        self.error = 0
        self.errors = 0
        self.denials = 0
        self.cache_hits = 0
        self.visits = 0
        self.results = 0
        self.latency = Histogram(
            "workload.latency_seconds", buckets=LATENCY_BUCKETS
        )

    @property
    def cache_hit_ratio(self) -> float:
        return self.cache_hits / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "policy": self.policy,
            "fingerprint": self.fingerprint,
            "shape": self.shape,
            "count": self.count,
            "error_bound": self.error,
            "errors": self.errors,
            "denials": self.denials,
            "cache_hit_ratio": self.cache_hit_ratio,
            "visits": self.visits,
            "results": self.results,
            "mean_ms": self.latency.mean * 1000.0,
            "p50_ms": self.latency.quantile(0.50) * 1000.0,
            "p95_ms": self.latency.quantile(0.95) * 1000.0,
        }

    def __repr__(self):
        return "WorkloadEntry(%s/%s %s count=%d±%d)" % (
            self.tenant,
            self.policy,
            self.fingerprint,
            self.count,
            self.error,
        )


class _TenantSketch:
    """One tenant's bounded space-saving sketch plus roll-up totals."""

    __slots__ = ("entries", "queries", "errors", "denials", "evictions")

    def __init__(self):
        self.entries: Dict[Tuple[str, str], WorkloadEntry] = {}
        self.queries = 0
        self.errors = 0
        self.denials = 0
        self.evictions = 0


class WorkloadProfiler:
    """Thread-safe per-tenant aggregation of query-shape statistics,
    bounded to ``capacity`` shapes per tenant (space-saving top-K)."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("workload profiler capacity must be >= 1")
        self.capacity = capacity
        self._tenants: Dict[str, _TenantSketch] = {}
        self._lock = Lock()

    # -- recording -------------------------------------------------------

    def record_query(
        self,
        tenant: str,
        policy: str,
        fingerprint,
        latency_seconds: float,
        visits: int = 0,
        result_count: int = 0,
        cache_hit: bool = False,
    ) -> None:
        """Account one successful query.  ``fingerprint`` is a
        :class:`~repro.xpath.fingerprint.Fingerprint` (or any object
        with ``digest``/``shape``, or a bare digest string)."""
        with self._lock:
            sketch = self._sketch(tenant)
            entry = self._entry(sketch, tenant, policy, fingerprint)
            sketch.queries += 1
            entry.count += 1
            entry.visits += visits
            entry.results += result_count
            if cache_hit:
                entry.cache_hits += 1
        # the histogram carries its own lock; observing outside the
        # profiler lock keeps the critical section to dict updates
        entry.latency.observe(latency_seconds)

    def record_error(
        self,
        tenant: str,
        policy: str,
        fingerprint,
        denied: bool = False,
    ) -> None:
        """Account one failed query (``denied=True`` for access-denial
        rejections, which the paper's security model treats as a
        distinct, policy-relevant outcome)."""
        with self._lock:
            sketch = self._sketch(tenant)
            entry = self._entry(sketch, tenant, policy, fingerprint)
            sketch.queries += 1
            entry.count += 1
            if denied:
                sketch.denials += 1
                entry.denials += 1
            else:
                sketch.errors += 1
                entry.errors += 1

    # -- internals (caller holds the lock) -------------------------------

    def _sketch(self, tenant: str) -> _TenantSketch:
        sketch = self._tenants.get(tenant)
        if sketch is None:
            sketch = self._tenants[tenant] = _TenantSketch()
        return sketch

    def _entry(
        self, sketch: _TenantSketch, tenant: str, policy: str, fingerprint
    ) -> WorkloadEntry:
        digest = getattr(fingerprint, "digest", None) or str(fingerprint)
        shape = getattr(fingerprint, "shape", "") or ""
        key = (policy, digest)
        entry = sketch.entries.get(key)
        if entry is not None:
            return entry
        entry = WorkloadEntry(tenant, policy, digest, shape)
        if len(sketch.entries) >= self.capacity:
            # space-saving replacement: evict the minimum-count entry,
            # the newcomer inherits its count as the error bound
            victim_key = min(
                sketch.entries, key=lambda k: sketch.entries[k].count
            )
            victim = sketch.entries.pop(victim_key)
            sketch.evictions += 1
            entry.count = victim.count
            entry.error = victim.count
        sketch.entries[key] = entry
        return entry

    # -- reporting -------------------------------------------------------

    def tenants(self) -> List[str]:
        with self._lock:
            return sorted(self._tenants)

    def top(self, tenant: str, n: Optional[int] = None) -> List[dict]:
        """The tenant's heaviest query shapes, descending by count
        (ties broken by digest for a stable order)."""
        with self._lock:
            sketch = self._tenants.get(tenant)
            entries = list(sketch.entries.values()) if sketch else []
        ranked = sorted(
            entries, key=lambda e: (-e.count, e.fingerprint)
        )
        if n is not None:
            ranked = ranked[: max(0, n)]
        return [entry.as_dict() for entry in ranked]

    def report(
        self, tenant: Optional[str] = None, n: Optional[int] = None
    ) -> dict:
        """The full JSON-safe report: per-tenant totals, eviction
        counters, and top-``n`` entries (all tenants unless one is
        named)."""
        with self._lock:
            names = sorted(self._tenants)
        if tenant is not None:
            names = [tenant] if tenant in names else []
        tenants = {}
        for name in names:
            with self._lock:
                sketch = self._tenants.get(name)
                if sketch is None:
                    continue
                totals = {
                    "queries": sketch.queries,
                    "errors": sketch.errors,
                    "denials": sketch.denials,
                    "evictions": sketch.evictions,
                    "fingerprints": len(sketch.entries),
                }
            tenants[name] = dict(totals, top=self.top(name, n))
        return {
            "capacity": self.capacity,
            "tenants": tenants,
        }

    def stats(self) -> dict:
        """Cheap roll-up totals across tenants (no entry details)."""
        with self._lock:
            queries = sum(s.queries for s in self._tenants.values())
            errors = sum(s.errors for s in self._tenants.values())
            denials = sum(s.denials for s in self._tenants.values())
            evictions = sum(s.evictions for s in self._tenants.values())
            fingerprints = sum(
                len(s.entries) for s in self._tenants.values()
            )
            tenants = len(self._tenants)
        return {
            "tenants": tenants,
            "queries": queries,
            "errors": errors,
            "denials": denials,
            "evictions": evictions,
            "fingerprints": fingerprints,
            "capacity": self.capacity,
        }

    def reset(self) -> None:
        with self._lock:
            self._tenants.clear()

    def __repr__(self):
        stats = self.stats()
        return "WorkloadProfiler(tenants=%d, queries=%d, capacity=%d)" % (
            stats["tenants"],
            stats["queries"],
            self.capacity,
        )
