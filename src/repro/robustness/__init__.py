"""repro.robustness — the layer that keeps the engine up.

Three cooperating pieces (see ``docs/robustness.md``):

* :mod:`repro.robustness.governor` — :class:`QueryLimits` /
  :class:`Budget`: per-query deadlines and work budgets enforced
  cooperatively through every execution layer, raising typed
  ``E_DEADLINE`` / ``E_BUDGET`` errors;
* :mod:`repro.robustness.degrade` — :class:`DegradationPolicy`: which
  accelerator seams (columnar store, index, plan cache) may fail soft
  onto their reference fallback instead of failing the query;
* :mod:`repro.robustness.faults` — :class:`FaultPlan` /
  :class:`FaultSpec` / :class:`FaultySink`: deterministic fault
  injection at the store/index/cache/sink/materialize seams, driving
  the chaos suite that proves every injected fault yields a correct
  degraded answer or a typed error — never a hang or a wrong answer.
"""

from repro.robustness.degrade import SEAM_FALLBACKS, DegradationPolicy
from repro.robustness.faults import (
    SITES,
    FaultPlan,
    FaultSpec,
    FaultySink,
    active_plan,
    install,
    trip,
    uninstall,
)
from repro.robustness.governor import (
    NO_LIMITS,
    TICK_STRIDE,
    Budget,
    QueryLimits,
)

__all__ = [
    "QueryLimits",
    "Budget",
    "NO_LIMITS",
    "TICK_STRIDE",
    "DegradationPolicy",
    "SEAM_FALLBACKS",
    "FaultPlan",
    "FaultSpec",
    "FaultySink",
    "SITES",
    "install",
    "uninstall",
    "active_plan",
    "trip",
]
