"""Graceful-degradation policy: which optimizations may fail *soft*.

The engine's execution accelerators are all optional layers over a
correct slow path:

===================  =======================  ======================
seam                 failure                  fallback
===================  =======================  ======================
``store.build``      columnar NodeTable       object-tree backend
``index.build``      DocumentIndex            subtree scans
``plan_cache.get``   cache lookup             uncached compile
``plan_cache.put``   cache prime              uncached next time
===================  =======================  ======================

A :class:`DegradationPolicy` decides, per seam, whether a failure
degrades (the engine emits a
:class:`~repro.obs.events.DegradationEvent`, bumps the
``governor.degradations`` counter, and answers the query on the
fallback path) or propagates (strict mode — what you want in tests,
where a store build crashing is a bug, not weather).

Answers on a degraded path are **identical** to the optimized path by
construction — every fallback is the reference implementation the
accelerated kernels are tested against — so degradation trades only
latency, never correctness or the security guarantee.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["DegradationPolicy", "SEAM_FALLBACKS"]

#: seam name -> human-readable fallback label (event payloads, docs).
SEAM_FALLBACKS: Dict[str, str] = {
    "store.build": "object-backend",
    "index.build": "scan",
    "plan_cache.get": "uncached-compile",
    "plan_cache.put": "uncached-compile",
}


class DegradationPolicy:
    """Which seams may degrade.  The default allows every known seam
    (serve degraded rather than fail); ``DegradationPolicy(strict=True)``
    allows none.  Individual seams can be overridden by keyword, e.g.
    ``DegradationPolicy(strict=True, store_build=True)`` or
    ``DegradationPolicy(plan_cache=False)``."""

    __slots__ = ("_allowed",)

    def __init__(
        self,
        strict: bool = False,
        store_build: Optional[bool] = None,
        index_build: Optional[bool] = None,
        plan_cache: Optional[bool] = None,
    ):
        default = not strict
        self._allowed = {
            "store.build": default if store_build is None else store_build,
            "index.build": default if index_build is None else index_build,
            "plan_cache.get": default if plan_cache is None else plan_cache,
            "plan_cache.put": default if plan_cache is None else plan_cache,
        }

    def allows(self, seam: str) -> bool:
        """Whether a failure at ``seam`` may degrade (unknown seams
        never degrade — fail loudly on anything unanticipated)."""
        return self._allowed.get(seam, False)

    def fallback(self, seam: str) -> str:
        return SEAM_FALLBACKS.get(seam, "none")

    def __repr__(self):
        degrading = sorted(
            seam for seam, allowed in self._allowed.items() if allowed
        )
        return "DegradationPolicy(allows=%s)" % (degrading,)
