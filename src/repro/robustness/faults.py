"""Deterministic fault injection at the engine's architectural seams.

A :class:`FaultPlan` is a set of :class:`FaultSpec` triggers installed
process-wide (``with plan:`` or :func:`install`/:func:`uninstall`).
Instrumented seams call :func:`trip` with their site name; when a plan
is active and one of its specs matches the site and its deterministic
trigger fires, the spec's effect happens — an exception
(:class:`~repro.errors.FaultInjected` by default) or injected latency.
With no plan installed, :func:`trip` costs one global load and one
``is None`` check.

Instrumented sites (see ``docs/robustness.md`` for the full table):

* ``store.build`` — columnar NodeTable construction;
* ``index.build`` — DocumentIndex construction;
* ``plan_cache.get`` / ``plan_cache.put`` — plan-cache traffic;
* ``materialize`` — view (subtree) materialization;
* ``admission.admit`` — the serving layer's admission gate;
* ``serving.resolve`` — catalog document-ref resolution;
* ``serving.execute`` — batch execution of one admitted request;
* ``httpd.write`` — the HTTP front end writing a response body.

The sink seam needs no ``trip`` call: :class:`FaultySink` *is* the
fault — attach it to an engine and every ``emit`` raises, proving the
event pipeline's per-sink guard holds.

Triggers are deterministic so chaos runs replay exactly: ``at=N``
fires on the Nth call to the site (1-based), ``every=N`` on every Nth,
``rate=p`` flips a dedicated ``random.Random(seed)`` per spec (seeded,
hence reproducible).  Per-site call counters live on the plan; call
:meth:`FaultPlan.reset` to replay.
"""

from __future__ import annotations

import time
from random import Random
from typing import Dict, List, Optional

from repro.errors import FaultInjected
from repro.obs.events import Event, EventSink

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultySink",
    "install",
    "uninstall",
    "active_plan",
    "trip",
    "SITES",
]

#: The instrumented seam names (for validation and docs).
SITES = (
    "store.build",
    "index.build",
    "plan_cache.get",
    "plan_cache.put",
    "materialize",
    "admission.admit",
    "serving.resolve",
    "serving.execute",
    "httpd.write",
)

#: Supported effects.
KIND_RAISE = "raise"
KIND_LATENCY = "latency"


class FaultSpec:
    """One trigger: *where* (``site``), *when* (``at`` / ``every`` /
    ``rate`` — default ``at=1``, i.e. the first call), and *what*
    (``kind="raise"`` with an optional ``error``, or
    ``kind="latency"`` with ``latency_seconds``)."""

    __slots__ = (
        "site", "kind", "at", "every", "rate", "seed",
        "latency_seconds", "error", "_rng", "fired",
    )

    def __init__(
        self,
        site: str,
        kind: str = KIND_RAISE,
        at: Optional[int] = None,
        every: Optional[int] = None,
        rate: Optional[float] = None,
        seed: int = 0,
        latency_seconds: float = 0.05,
        error: Optional[BaseException] = None,
    ):
        if kind not in (KIND_RAISE, KIND_LATENCY):
            raise ValueError("unknown fault kind %r" % kind)
        if sum(x is not None for x in (at, every, rate)) > 1:
            raise ValueError("pick one trigger: at=, every=, or rate=")
        if at is None and every is None and rate is None:
            at = 1
        self.site = site
        self.kind = kind
        self.at = at
        self.every = every
        self.rate = rate
        self.seed = seed
        self.latency_seconds = latency_seconds
        self.error = error
        self._rng = Random(seed) if rate is not None else None
        #: Times this spec's effect actually happened.
        self.fired = 0

    def triggered(self, call_index: int) -> bool:
        """Whether the effect fires on the ``call_index``-th (1-based)
        call to this spec's site."""
        if self.at is not None:
            return call_index == self.at
        if self.every is not None:
            return call_index % self.every == 0
        return self._rng.random() < self.rate

    def fire(self) -> None:
        self.fired += 1
        if self.kind == KIND_LATENCY:
            time.sleep(self.latency_seconds)
            return
        if self.error is not None:
            raise self.error
        raise FaultInjected(
            "injected fault at %r (call #%d of this plan)"
            % (self.site, self.fired)
        )

    def reset(self) -> None:
        self.fired = 0
        if self.rate is not None:
            self._rng = Random(self.seed)

    def __repr__(self):
        trigger = (
            "at=%d" % self.at if self.at is not None
            else "every=%d" % self.every if self.every is not None
            else "rate=%g seed=%d" % (self.rate, self.seed)
        )
        return "FaultSpec(%r, %s, %s, fired=%d)" % (
            self.site, self.kind, trigger, self.fired
        )


class FaultPlan:
    """A named set of fault specs plus the per-site call counters that
    drive their deterministic triggers.  Use as a context manager to
    install/uninstall around a block:

        with FaultPlan(FaultSpec("store.build", at=1)):
            engine.query(...)   # first NodeTable build raises
    """

    __slots__ = ("name", "specs", "_calls")

    def __init__(self, *specs: FaultSpec, name: str = ""):
        self.name = name
        self.specs: List[FaultSpec] = list(specs)
        self._calls: Dict[str, int] = {}

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    def calls(self, site: str) -> int:
        """How many times ``site`` has tripped under this plan."""
        return self._calls.get(site, 0)

    def fired(self) -> int:
        """Total effects that actually happened across all specs."""
        return sum(spec.fired for spec in self.specs)

    def fire(self, site: str) -> None:
        """Called by :func:`trip`: count the call, fire matching
        specs.  A raising spec propagates immediately (later specs on
        the same call do not run — one fault per call)."""
        count = self._calls.get(site, 0) + 1
        self._calls[site] = count
        for spec in self.specs:
            if spec.site == site and spec.triggered(count):
                spec.fire()

    def reset(self) -> None:
        """Rewind counters and RNGs so the plan replays identically."""
        self._calls.clear()
        for spec in self.specs:
            spec.reset()

    def __enter__(self) -> "FaultPlan":
        install(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        uninstall()
        return False

    def __repr__(self):
        return "FaultPlan(%r, specs=%d, fired=%d)" % (
            self.name, len(self.specs), self.fired()
        )


# -- installation -----------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` process-wide (replacing any previous plan)."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def uninstall() -> None:
    """Remove the active plan (no-op when none is installed)."""
    global _ACTIVE
    _ACTIVE = None


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


def trip(site: str) -> None:
    """The seam hook: near-free when no plan is installed."""
    plan = _ACTIVE
    if plan is not None:
        plan.fire(site)


# -- the sink seam ----------------------------------------------------


class FaultySink(EventSink):
    """An audit sink that fails on purpose: raises on every ``emit``
    after the first ``after`` events succeed.  Attach it to an engine
    to prove the :class:`~repro.obs.events.EventPipeline` per-sink
    guard — queries must answer identically while the pipeline's
    ``dropped`` counter climbs."""

    __slots__ = ("after", "emitted", "raised", "error")

    def __init__(self, after: int = 0, error: Optional[BaseException] = None):
        self.after = after
        self.emitted = 0
        self.raised = 0
        self.error = error

    def emit(self, event: Event) -> None:
        if self.emitted >= self.after:
            self.raised += 1
            raise (
                self.error
                if self.error is not None
                else FaultInjected("injected sink failure")
            )
        self.emitted += 1
