"""Query limits and the cooperative budget/cancellation token.

A :class:`QueryLimits` value declares what one query may spend — wall
clock, result rows, node visits, frontier rows; a :class:`Budget` is
the *live* token minted from it at query start and threaded through
the execution layers (:mod:`repro.xpath.plan` batch kernels,
:mod:`repro.xpath.evaluator`, :mod:`repro.core.materialize`).

Enforcement is **cooperative**: nothing is interrupted from outside.
Operators call :meth:`Budget.checkpoint` once per batch (mirroring the
``rt.profile is not None`` guard idiom, so a query without limits pays
exactly one attribute check per operator invocation), and the two
genuinely unbounded loops — the object-tree descendant walk and the
columnar interval scan — call :meth:`Budget.tick` per node, which
checks the wall clock every :data:`TICK_STRIDE` nodes.  On pure-Python
node costs that bounds deadline overshoot to well under a millisecond,
which is what lets a 50 ms deadline terminate in a small multiple of
itself even against the largest benchmark documents.

Violations raise the typed errors of :mod:`repro.errors` —
:class:`~repro.errors.DeadlineExceeded` (``E_DEADLINE``) and
:class:`~repro.errors.BudgetExceeded` (``E_BUDGET``) — which the
engine surfaces as audit :class:`~repro.obs.events.ErrorEvent` records
and the CLI maps to dedicated exit codes.  Each raise also bumps a
``governor.*`` metrics counter (free unless metrics are enabled).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter, sleep
from typing import Optional

from repro.errors import BudgetExceeded, DeadlineExceeded, SecurityError
from repro.obs.metrics import record as _metric_record

__all__ = ["QueryLimits", "Budget", "NO_LIMITS", "TICK_STRIDE"]

#: How many :meth:`Budget.tick` calls elapse between wall-clock checks
#: inside per-node loops.  256 nodes of pure-Python tree walking cost
#: on the order of 100 microseconds, so deadline overshoot from the
#: stride is negligible against any realistic deadline.
TICK_STRIDE = 256


def _positive(name: str, value, integer: bool) -> None:
    if value is None:
        return
    kinds = (int,) if integer else (int, float)
    if isinstance(value, bool) or not isinstance(value, kinds) or value <= 0:
        raise SecurityError(
            "%s must be a positive %s (or None), got %r"
            % (name, "integer" if integer else "number", value)
        )


@dataclass(frozen=True)
class QueryLimits:
    """What one query may spend.  All fields default to ``None``
    (unlimited); any combination may be set.

    ``deadline_seconds``
        Wall-clock budget for the whole query (parse through
        projection), checked cooperatively at batch granularity plus a
        strided per-node check inside unbounded walks.
    ``max_results``
        Upper bound on returned result rows.
    ``max_visits``
        Upper bound on the engine's node-visit work counter (the
        machine-independent work measure the benchmarks report).
    ``max_frontier_rows``
        Upper bound on any single operator's output frontier — caps
        intermediate blow-up (e.g. a ``//*//*`` cross product) before
        it caps the final answer.
    """

    deadline_seconds: Optional[float] = None
    max_results: Optional[int] = None
    max_visits: Optional[int] = None
    max_frontier_rows: Optional[int] = None

    def __post_init__(self):
        _positive("deadline_seconds", self.deadline_seconds, integer=False)
        _positive("max_results", self.max_results, integer=True)
        _positive("max_visits", self.max_visits, integer=True)
        _positive("max_frontier_rows", self.max_frontier_rows, integer=True)

    @property
    def unlimited(self) -> bool:
        """Whether every limit is ``None`` (a no-op budget)."""
        return (
            self.deadline_seconds is None
            and self.max_results is None
            and self.max_visits is None
            and self.max_frontier_rows is None
        )

    def budget(self, clock=perf_counter) -> "Budget":
        """Mint the live token for one query execution."""
        return Budget(self, clock=clock)

    # -- wire shape (see repro.serving.protocol) -----------------------

    def to_dict(self) -> dict:
        """JSON-safe export (the ``limits`` field of a serialized
        :class:`~repro.serving.protocol.QueryRequest`)."""
        return {
            "deadline_seconds": self.deadline_seconds,
            "max_results": self.max_results,
            "max_visits": self.max_visits,
            "max_frontier_rows": self.max_frontier_rows,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryLimits":
        """Inverse of :meth:`to_dict`; missing keys default to
        unlimited, unknown keys are ignored (forward compatibility)."""
        return cls(
            deadline_seconds=payload.get("deadline_seconds"),
            max_results=payload.get("max_results"),
            max_visits=payload.get("max_visits"),
            max_frontier_rows=payload.get("max_frontier_rows"),
        )


#: A limits value with every bound disabled.
NO_LIMITS = QueryLimits()


class Budget:
    """The live cooperative token of one query execution.

    A budget is mint-once, thread-through: the engine creates it from
    ``ExecutionOptions.limits`` at query start and every execution
    layer checks the *same* token, so the deadline covers the whole
    pipeline, not one stage.  It is also a cancellation token:
    :meth:`cancel` makes the next checkpoint raise
    :class:`~repro.errors.BudgetExceeded` (dimension ``"cancelled"``),
    which is how a caller aborts an in-flight query from another
    thread without any interruption machinery.
    """

    __slots__ = ("limits", "started_at", "deadline_at", "_clock", "_ticks",
                 "cancelled", "cancel_reason")

    def __init__(self, limits: QueryLimits, clock=perf_counter):
        self.limits = limits
        self._clock = clock
        self.started_at = clock()
        self.deadline_at = (
            self.started_at + limits.deadline_seconds
            if limits.deadline_seconds is not None
            else None
        )
        self._ticks = 0
        self.cancelled = False
        self.cancel_reason = ""

    # -- introspection -------------------------------------------------

    def elapsed(self) -> float:
        """Seconds since the budget was minted."""
        return self._clock() - self.started_at

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` without one; may be
        negative once overdue)."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - self._clock()

    # -- cancellation --------------------------------------------------

    def cancel(self, reason: str = "") -> None:
        """Request cooperative cancellation: the next checkpoint (on
        whatever thread is executing the query) raises."""
        self.cancel_reason = reason
        self.cancelled = True

    # -- checks --------------------------------------------------------

    def checkpoint(self, visits: int = 0, frontier: int = 0) -> None:
        """One batch-granularity check: cancellation, frontier and
        visit budgets against the passed counters, then the wall
        clock.  Raises the matching typed error on violation."""
        if self.cancelled:
            self._raise_budget(
                "query cancelled%s"
                % (": " + self.cancel_reason if self.cancel_reason else ""),
                "cancelled", 0, 0,
            )
        limits = self.limits
        bound = limits.max_frontier_rows
        if bound is not None and frontier > bound:
            self._raise_budget(
                "frontier of %d rows exceeds max_frontier_rows=%d"
                % (frontier, bound),
                "frontier", frontier, bound,
            )
        bound = limits.max_visits
        if bound is not None and visits > bound:
            self._raise_budget(
                "%d node visits exceed max_visits=%d" % (visits, bound),
                "visits", visits, bound,
            )
        deadline_at = self.deadline_at
        if deadline_at is not None and self._clock() > deadline_at:
            self._raise_deadline()

    def tick(self) -> None:
        """Per-node strided check for unbounded loops: every
        :data:`TICK_STRIDE` calls runs a full :meth:`checkpoint` (with
        no counters — the enclosing batch reports those)."""
        ticks = self._ticks + 1
        self._ticks = ticks
        if not ticks % TICK_STRIDE:
            self.checkpoint()

    def charge_results(self, count: int) -> None:
        """Enforce ``max_results`` against the result rows produced so
        far (call incrementally for early termination)."""
        bound = self.limits.max_results
        if bound is not None and count > bound:
            self._raise_budget(
                "%d result rows exceed max_results=%d" % (count, bound),
                "results", count, bound,
            )

    def sleep(self, seconds: float) -> None:
        """Deadline-aware sleep (used by latency fault injection): naps
        in checkpointed slices so an injected stall still honours the
        deadline instead of turning into a hang."""
        end = self._clock() + seconds
        while True:
            self.checkpoint()
            left = end - self._clock()
            if left <= 0:
                return
            sleep(min(left, 0.01))

    # -- raise helpers -------------------------------------------------

    def _raise_deadline(self):
        elapsed = self.elapsed()
        _metric_record("governor.deadline_exceeded")
        raise DeadlineExceeded(
            "query exceeded its %.1f ms deadline (%.1f ms elapsed)"
            % (self.limits.deadline_seconds * 1e3, elapsed * 1e3),
            deadline_seconds=self.limits.deadline_seconds,
            elapsed_seconds=elapsed,
        )

    def _raise_budget(self, message, dimension, spent, limit):
        _metric_record("governor.budget_exceeded")
        _metric_record("governor.budget_exceeded.%s" % dimension)
        raise BudgetExceeded(
            message, dimension=dimension, spent=spent, limit=limit
        )

    def __repr__(self):
        return "Budget(%r, elapsed=%.3fs, cancelled=%r)" % (
            self.limits, self.elapsed(), self.cancelled
        )
