"""The concurrent multi-tenant serving layer.

The package stacks four small pieces over the (now thread-safe)
engine — see ``docs/serving.md``:

* :mod:`repro.serving.protocol` — the frozen
  :class:`~repro.serving.protocol.QueryRequest` /
  :class:`~repro.serving.protocol.QueryResponse` wire shapes;
* :mod:`repro.serving.admission` — per-tenant concurrency slots and
  bounded queues (``E_ADMISSION`` / queue-deadline ``E_DEADLINE``)
  plus priority load shedding (``E_SHED``);
* :mod:`repro.serving.resilience` — the overload survival layer:
  criticality classes, the utilization
  :class:`~repro.serving.resilience.OverloadDetector`, circuit
  breakers over the engine's degradation seams and audit sinks, and
  per-tenant client retry budgets;
* :mod:`repro.serving.server` — the thread-pool
  :class:`~repro.serving.server.QueryServer` with same-document batch
  coalescing over :class:`~repro.serving.server.EngineCatalog`;
* :mod:`repro.serving.replay` — the mixed-tenant hospital+Adex replay
  harness behind ``repro replay`` and ``benchmarks/bench_serving.py``;
* :mod:`repro.serving.httpd` — the stdlib HTTP front end behind
  ``repro serve``.
"""

from repro.serving.admission import AdmissionController, TenantPolicy
from repro.serving.protocol import PROTOCOL_VERSION, QueryRequest, QueryResponse
from repro.serving.replay import mixed_workload, replay, standard_catalog
from repro.serving.resilience import (
    CRITICAL,
    CRITICALITIES,
    DEFAULT,
    SHEDDABLE,
    BreakerBoard,
    BreakerSink,
    CircuitBreaker,
    OverloadDetector,
    RetryBudget,
)
from repro.serving.server import EngineCatalog, QueryServer

__all__ = [
    "PROTOCOL_VERSION",
    "QueryRequest",
    "QueryResponse",
    "AdmissionController",
    "TenantPolicy",
    "EngineCatalog",
    "QueryServer",
    "standard_catalog",
    "mixed_workload",
    "replay",
    "CRITICAL",
    "DEFAULT",
    "SHEDDABLE",
    "CRITICALITIES",
    "OverloadDetector",
    "CircuitBreaker",
    "BreakerBoard",
    "BreakerSink",
    "RetryBudget",
]
