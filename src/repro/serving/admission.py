"""Per-tenant admission control for the serving layer.

The PR-5 governor bounds what one query may *spend once running*;
admission control bounds what one tenant may have *running or waiting*
at all.  Layered together they give the multi-tenant guarantee: a
tenant flooding the server saturates only its own concurrency slots
and queue, and every rejection is a typed, audited error — never a
silent drop or an unbounded queue.

Two bounds per tenant, both enforced at :meth:`AdmissionController.admit`:

``max_concurrent``
    Slots a tenant may occupy simultaneously (running queries).
    Requests beyond it wait — but only up to the queue deadline.
``max_queue_depth``
    Waiters a tenant may park behind its busy slots.  Beyond it the
    request is hard-rejected immediately with
    :class:`~repro.errors.AdmissionRejected` (``E_ADMISSION``) —
    queueing more work than the tenant can plausibly drain just turns
    deadline misses into memory growth.

A waiter that cannot get a slot before ``queue_deadline_seconds``
elapses (measured from *enqueue*, so time spent in the server's
internal queue counts) raises
:class:`~repro.errors.DeadlineExceeded` — deliberately the same
``E_DEADLINE`` code the governor uses, because to the client "timed
out waiting to run" and "timed out running" are the same contract.

On top of the hard per-tenant bounds sits **priority load shedding**
(see :mod:`repro.serving.resilience`): when the controller is built
with an :class:`~repro.serving.resilience.OverloadDetector`, a request
that would have to *wait* is first checked against the detector — if
the queue-wait utilization EWMA is past the threshold for the
request's criticality class, the request is shed immediately with
:class:`~repro.errors.RequestShed` (``E_SHED``), lowest class first
(``sheddable``, then ``default``; ``critical`` is never shed).  The
detector is fed by every admission outcome: admitted waits observe
``waited/deadline``, deadline misses and queue-full rejections observe
1.0 — so shedding starts as deadline misses approach and stops as the
queue drains.

Everything is stdlib threading; each tenant gets a
:class:`threading.Semaphore` for slots plus a counter of waiters kept
under the controller lock.  Metrics land in the ``serving.*`` and
``resilience.*`` namespaces of the ambient registry.
"""

from __future__ import annotations

from contextlib import contextmanager
from threading import Lock, Semaphore
from time import monotonic
from typing import Dict, Optional

from repro.errors import AdmissionRejected, DeadlineExceeded, RequestShed
from repro.obs.metrics import observe as _observe, record as _record
from repro.obs.trace import NULL_SPAN
from repro.robustness.faults import trip as fault_trip
from repro.serving.resilience import (
    CRITICALITIES,
    DEFAULT,
    OverloadDetector,
)

__all__ = ["AdmissionController", "TenantPolicy"]


class TenantPolicy(object):
    """Admission bounds for one tenant (or the default for all)."""

    __slots__ = ("max_concurrent", "max_queue_depth", "queue_deadline_seconds")

    def __init__(
        self,
        max_concurrent: int = 4,
        max_queue_depth: int = 16,
        queue_deadline_seconds: Optional[float] = None,
    ):
        if max_concurrent < 1:
            raise ValueError(
                "max_concurrent must be >= 1, got %r" % (max_concurrent,)
            )
        if max_queue_depth < 0:
            raise ValueError(
                "max_queue_depth must be >= 0, got %r" % (max_queue_depth,)
            )
        self.max_concurrent = max_concurrent
        self.max_queue_depth = max_queue_depth
        self.queue_deadline_seconds = queue_deadline_seconds

    def __repr__(self):
        return "TenantPolicy(max_concurrent=%d, max_queue_depth=%d, " \
            "queue_deadline_seconds=%r)" % (
                self.max_concurrent,
                self.max_queue_depth,
                self.queue_deadline_seconds,
            )


class _TenantState(object):
    __slots__ = ("policy", "slots", "waiting", "running")

    def __init__(self, policy: TenantPolicy):
        self.policy = policy
        self.slots = Semaphore(policy.max_concurrent)
        self.waiting = 0
        self.running = 0


class AdmissionController(object):
    """Admission gate shared by all server workers.

    Thread-safe; tenant states are created on first sight under the
    controller lock and live for the controller's lifetime (tenant
    cardinality is policy-bounded in this system, so no eviction).
    """

    def __init__(
        self,
        default: Optional[TenantPolicy] = None,
        overload: Optional[OverloadDetector] = None,
        **per_tenant,
    ):
        self._default = default or TenantPolicy()
        self._overrides: Dict[str, TenantPolicy] = dict(per_tenant)
        self._tenants: Dict[str, _TenantState] = {}
        self._lock = Lock()
        #: Load-shedding signal; ``None`` disables shedding entirely.
        self.overload = overload
        self._shed: Dict[str, int] = {cls: 0 for cls in CRITICALITIES}

    def set_policy(self, tenant: str, policy: TenantPolicy) -> None:
        """Install per-tenant bounds (before the tenant's first
        request; later calls only affect queue accounting, not the
        already-built semaphore)."""
        with self._lock:
            self._overrides[tenant] = policy
            self._tenants.pop(tenant, None)

    def _state(self, tenant: str) -> _TenantState:
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                policy = self._overrides.get(tenant, self._default)
                state = _TenantState(policy)
                self._tenants[tenant] = state
            return state

    # -- introspection ---------------------------------------------------

    def queue_depth(self, tenant: Optional[str] = None) -> int:
        """Waiters parked behind busy slots — one tenant's, or all."""
        with self._lock:
            if tenant is not None:
                state = self._tenants.get(tenant)
                return state.waiting if state else 0
            return sum(state.waiting for state in self._tenants.values())

    def running(self, tenant: Optional[str] = None) -> int:
        """Admitted requests currently holding a slot."""
        with self._lock:
            if tenant is not None:
                state = self._tenants.get(tenant)
                return state.running if state else 0
            return sum(state.running for state in self._tenants.values())

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant ``{waiting, running, max_concurrent,
        max_queue_depth}`` — one consistent read for debug endpoints."""
        with self._lock:
            return {
                tenant: {
                    "waiting": state.waiting,
                    "running": state.running,
                    "max_concurrent": state.policy.max_concurrent,
                    "max_queue_depth": state.policy.max_queue_depth,
                }
                for tenant, state in sorted(self._tenants.items())
            }

    def shed_counts(self) -> Dict[str, int]:
        """Requests shed so far, by criticality class."""
        with self._lock:
            return dict(self._shed)

    # -- the gate --------------------------------------------------------

    def _shed_check(self, tenant, state, criticality, span):
        """Raise :class:`~repro.errors.RequestShed` when the overload
        detector says requests of ``criticality`` that would have to
        wait must be dropped right now."""
        overload = self.overload
        if overload is None or not overload.should_shed(criticality):
            return
        with self._lock:
            self._shed[criticality] = self._shed.get(criticality, 0) + 1
        _record("serving.admission.shed")
        _record("resilience.shed", labels={"criticality": criticality})
        utilization = overload.utilization()
        span.set(
            outcome="shed",
            criticality=criticality,
            utilization=round(utilization, 4),
        )
        raise RequestShed(
            "tenant %r request shed (criticality %r, queue-wait "
            "utilization %.2f)" % (tenant, criticality, utilization),
            tenant=tenant,
            criticality=criticality,
            utilization=utilization,
            retry_after_seconds=overload.retry_after_seconds(),
        )

    @contextmanager
    def admit(
        self,
        tenant: str,
        enqueued_at: Optional[float] = None,
        tracer=None,
        criticality: str = DEFAULT,
    ):
        """Hold one of ``tenant``'s concurrency slots for the body.

        Raises :class:`~repro.errors.RequestShed` when the overload
        detector sheds this ``criticality`` class,
        :class:`~repro.errors.AdmissionRejected` when the tenant's
        queue is full, :class:`~repro.errors.DeadlineExceeded` when
        the queue deadline (measured from ``enqueued_at``, default
        now) lapses before a slot frees up.

        A ``tracer`` (see :class:`repro.obs.trace.Tracer`) records the
        time from enqueue to admission — or to rejection — as a
        ``queue_wait`` span.
        """
        fault_trip("admission.admit")
        state = self._state(tenant)
        policy = state.policy
        overload = self.overload
        if enqueued_at is None:
            enqueued_at = monotonic()

        span = NULL_SPAN if tracer is None else tracer.span(
            "queue_wait", tenant=tenant
        )
        admitted = False
        acquired = False
        try:
            with span:
                # Fast path: a free slot admits immediately — shedding
                # and queue bounds only govern requests that would
                # actually have to wait.
                acquired = state.slots.acquire(blocking=False)
                if not acquired:
                    self._shed_check(tenant, state, criticality, span)
                    with self._lock:
                        if state.waiting >= policy.max_queue_depth:
                            depth = state.waiting
                            _record("serving.admission.rejected")
                            span.set(outcome="rejected", queue_depth=depth)
                            if overload is not None:
                                overload.observe(1.0)
                            raise AdmissionRejected(
                                "tenant %r queue is full (%d waiting, "
                                "max_queue_depth=%d)"
                                % (tenant, depth, policy.max_queue_depth),
                                tenant=tenant,
                                queue_depth=depth,
                                limit=policy.max_queue_depth,
                                retry_after_seconds=(
                                    overload.retry_after_seconds()
                                    if overload is not None
                                    else None
                                ),
                            )
                        state.waiting += 1
                    try:
                        deadline = policy.queue_deadline_seconds
                        if deadline is None:
                            state.slots.acquire()
                            acquired = True
                        else:
                            remaining = deadline - (monotonic() - enqueued_at)
                            acquired = remaining > 0 and state.slots.acquire(
                                timeout=remaining
                            )
                            if not acquired:
                                waited = monotonic() - enqueued_at
                                _record("serving.admission.deadline")
                                span.set(
                                    outcome="deadline",
                                    waited_seconds=round(waited, 6),
                                )
                                if overload is not None:
                                    overload.observe(1.0)
                                raise DeadlineExceeded(
                                    "tenant %r request waited %.1f ms for a "
                                    "slot, past its %.1f ms queue deadline"
                                    % (tenant, waited * 1e3, deadline * 1e3),
                                    deadline_seconds=deadline,
                                    elapsed_seconds=waited,
                                )
                    finally:
                        with self._lock:
                            state.waiting -= 1
                # the slot is held from here on: flip `admitted` (the
                # release key) and the running gauge atomically so no
                # exception window can leak the slot or the count
                with self._lock:
                    state.running += 1
                    admitted = True

                waited = monotonic() - enqueued_at
                if overload is not None:
                    overload.observe_wait(
                        waited, policy.queue_deadline_seconds
                    )
                span.set(outcome="admitted", waited_seconds=round(waited, 6))
                _record("serving.admission.admitted")
                _observe("serving.queue_wait_seconds", waited)
            yield
        finally:
            if admitted:
                with self._lock:
                    state.running -= 1
                state.slots.release()
            elif acquired:
                # acquired but never flipped to admitted (an exception
                # in the instrumentation window): give the slot back
                # without touching the running gauge it never entered
                state.slots.release()
