"""A minimal HTTP front end over :class:`~repro.serving.server.QueryServer`.

Stdlib-only (:mod:`http.server`), three endpoints:

``POST /query``
    Body: a :class:`~repro.serving.protocol.QueryRequest` as JSON.
    Response: the :class:`~repro.serving.protocol.QueryResponse` as
    JSON — HTTP 200 for answered queries, 403 for security denials,
    429 for admission rejections, 504 for deadline misses, 400 for
    malformed bodies.  The body always carries the typed
    ``error_code``; the status is a convenience mapping of it.
``GET /metrics``
    Prometheus text exposition of the ambient metrics registry
    (including the ``serving_*`` series).
``GET /healthz``
    Liveness: ``{"ok": true, "documents": [...]}``.

This is deliberately a thin shell: all semantics (admission,
batching, audit) live in :class:`QueryServer`, so library users and
HTTP users get identical behaviour.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.serving.protocol import QueryRequest, QueryResponse
from repro.serving.server import QueryServer

__all__ = ["serve_http", "make_http_server"]

#: HTTP status conveying each error family; anything unlisted is 400.
_STATUS_BY_CODE = {
    "": 200,
    "E_ADMISSION": 429,
    "E_DEADLINE": 504,
    "E_BUDGET": 429,
    "E_LABEL_DENIED": 403,
    "E_SECURITY": 403,
}


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve"
    #: Set by :func:`make_http_server`.
    query_server: QueryServer = None

    # Silence per-request stderr logging; metrics cover observability.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):
        if self.path == "/healthz":
            self._send_json(
                200,
                {
                    "ok": True,
                    "documents": self.query_server.catalog.refs(),
                },
            )
        elif self.path == "/metrics":
            from repro.obs.export import prometheus_text
            from repro.obs.metrics import metrics_registry

            body = prometheus_text(metrics_registry()).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self._send_json(404, {"ok": False, "error": "not found"})

    def do_POST(self):
        if self.path != "/query":
            self._send_json(404, {"ok": False, "error": "not found"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            request = QueryRequest.from_dict(
                json.loads(self.rfile.read(length).decode("utf-8"))
            )
        except Exception as error:
            self._send_json(
                400, {"ok": False, "error": "malformed request: %s" % error}
            )
            return
        response: QueryResponse = self.query_server.query(request)
        status = _STATUS_BY_CODE.get(response.error_code, 400)
        self._send_json(status, response.to_dict())


def make_http_server(
    query_server: QueryServer, host: str = "127.0.0.1", port: int = 8000
) -> ThreadingHTTPServer:
    """Bind (but do not run) the HTTP front end."""
    handler = type("_BoundHandler", (_Handler,), {"query_server": query_server})
    return ThreadingHTTPServer((host, port), handler)


def serve_http(
    query_server: QueryServer,
    host: str = "127.0.0.1",
    port: int = 8000,
    ready: Optional[object] = None,
) -> None:
    """Run the HTTP front end until interrupted.  ``ready``, when a
    :class:`threading.Event`, is set once the socket is bound (test
    hook)."""
    httpd = make_http_server(query_server, host, port)
    if ready is not None:
        ready.set()
    try:
        httpd.serve_forever()
    finally:
        httpd.server_close()
