"""A minimal HTTP front end over :class:`~repro.serving.server.QueryServer`.

Stdlib-only (:mod:`http.server`), the endpoints:

``POST /query``
    Body: a :class:`~repro.serving.protocol.QueryRequest` as JSON.
    Response: the :class:`~repro.serving.protocol.QueryResponse` as
    JSON — HTTP 200 for answered queries, 403 for security denials,
    429 for admission rejections and load shedding (``E_ADMISSION`` /
    ``E_SHED`` / ``E_BUDGET``, always with a ``Retry-After`` header),
    504 for deadline misses (both queue-deadline expiry and engine
    deadlines ride ``E_DEADLINE``), 400 for malformed bodies.  The
    body always carries the typed ``error_code``; the status is a
    convenience mapping of it.
    An ``X-Repro-Trace`` request header (``<trace_id>`` or
    ``<trace_id>-<parent_span_id>``) joins the request to the
    caller's trace; the response always carries the effective
    ``trace_id`` both in the body and as an ``X-Repro-Trace``
    response header.  An ``X-Repro-Criticality`` request header
    (``critical`` / ``default`` / ``sheddable``) sets the request's
    load-shedding class when the body doesn't.
``GET /metrics``
    Prometheus text exposition of the ambient metrics registry
    (including the labeled ``serving_*`` histogram and ``slo_*``
    burn counters).
``GET /debug/traces``
    The flight recorder's retained traces, newest first, as JSON.
    Filters: ``?trace_id=`` (one exact trace), ``?tenant=``,
    ``?status=`` (ok/slow/error/denied/canary-violation), ``?n=``.
``GET /debug/slo``
    Per-tenant SLO compliance and fast/slow burn rates as JSON.
``GET /debug/workload``
    Per-tenant heavy-hitter query shapes (count, p50/p95, cache hit
    ratio, error/denial counts) from the workload profiler.
    Filters: ``?tenant=``, ``?n=`` (top-K per tenant).
``GET /debug/cachez``
    Cache/memory introspection per catalog engine: plan cache,
    NodeTables, DocumentIndexes, materialized views — entries, byte
    estimates, hit/eviction counters.
``GET /debug/vars``
    Process vars: version, uptime, worker/queue/admission state,
    cache byte totals, workload roll-up.
``GET /debug/resilience``
    Overload survival state: shedding (utilization EWMA, classes
    currently shed, shed counts by class), per-engine circuit-breaker
    boards, and drain status.
``GET /healthz``
    Liveness only — 200 while the process can answer at all (even
    mid-drain): ``{"ok": true, "documents": [...]}``.
``GET /readyz``
    Readiness — 200 when this instance should receive traffic, 503
    (with reasons) when starting, draining, stopped, or serving with
    an open circuit breaker.

This is deliberately a thin shell: all semantics (admission,
batching, tracing, audit) live in :class:`QueryServer`, so library
users and HTTP users get identical behaviour.
"""

from __future__ import annotations

import json
import math
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.obs.trace import TraceContext
from repro.robustness.faults import trip as fault_trip
from repro.serving.protocol import QueryRequest, QueryResponse
from repro.serving.server import QueryServer

__all__ = ["serve_http", "make_http_server"]

#: HTTP status conveying each error family; anything unlisted is 400.
_STATUS_BY_CODE = {
    "": 200,
    "E_ADMISSION": 429,
    "E_SHED": 429,
    "E_DEADLINE": 504,
    "E_BUDGET": 429,
    "E_LABEL_DENIED": 403,
    "E_SECURITY": 403,
}

#: Fallback Retry-After (seconds) when the response carries no hint.
_DEFAULT_RETRY_AFTER = 1


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve"
    #: Set by :func:`make_http_server`.
    query_server: QueryServer = None

    # Silence per-request stderr logging; metrics cover observability.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _send_json(
        self,
        status: int,
        payload: dict,
        trace_id: str = "",
        retry_after: Optional[float] = None,
    ) -> None:
        fault_trip("httpd.write")
        self._write_json(
            status, payload, trace_id=trace_id, retry_after=retry_after
        )

    def _write_json(
        self,
        status: int,
        payload: dict,
        trace_id: str = "",
        retry_after: Optional[float] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if trace_id:
            self.send_header("X-Repro-Trace", trace_id)
        if retry_after is not None:
            self.send_header(
                "Retry-After", str(max(1, int(math.ceil(retry_after))))
            )
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):
        parts = urlsplit(self.path)
        path, query_string = parts.path, parts.query
        if path == "/healthz":
            self._send_json(
                200,
                {
                    "ok": True,
                    "documents": self.query_server.catalog.refs(),
                },
            )
        elif path == "/readyz":
            ready, payload = self.query_server.ready_payload()
            self._send_json(200 if ready else 503, payload)
        elif path == "/debug/resilience":
            self._send_json(200, self.query_server.resilience_payload())
        elif path == "/debug/traces":
            self._send_json(200, self._traces_payload(query_string))
        elif path == "/debug/slo":
            self._send_json(200, self.query_server.slo_payload())
        elif path == "/debug/workload":
            self._send_json(200, self._workload_payload(query_string))
        elif path == "/debug/cachez":
            self._send_json(200, self.query_server.cache_payload())
        elif path == "/debug/vars":
            self._send_json(200, self.query_server.vars_payload())
        elif path == "/metrics":
            from repro.obs.export import prometheus_text
            from repro.obs.metrics import metrics_registry

            # fold live workload/cache state into the registry so the
            # scrape carries current gauges, not last-scrape values
            self.query_server.publish_metrics()
            body = prometheus_text(metrics_registry()).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self._send_json(404, {"ok": False, "error": "not found"})

    def _traces_payload(self, query_string: str) -> dict:
        """The ``/debug/traces`` response for one query string."""
        params = parse_qs(query_string or "")

        def first(key):
            values = params.get(key)
            return values[0] if values else None

        trace_id = first("trace_id")
        if trace_id:
            record = (
                self.query_server.flight.get(trace_id)
                if self.query_server.flight is not None
                else None
            )
            return {
                "enabled": self.query_server.flight is not None,
                "traces": [record.to_dict()] if record is not None else [],
            }
        try:
            n = int(first("n")) if first("n") else None
        except ValueError:
            n = None
        return self.query_server.trace_payload(
            n=n, tenant=first("tenant"), status=first("status")
        )

    def _workload_payload(self, query_string: str) -> dict:
        """The ``/debug/workload`` response for one query string."""
        params = parse_qs(query_string or "")

        def first(key):
            values = params.get(key)
            return values[0] if values else None

        try:
            n = int(first("n")) if first("n") else None
        except ValueError:
            n = None
        return self.query_server.workload_payload(
            tenant=first("tenant"), n=n
        )

    def do_POST(self):
        if self.path != "/query":
            self._send_json(404, {"ok": False, "error": "not found"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            request = QueryRequest.from_dict(
                json.loads(self.rfile.read(length).decode("utf-8"))
            )
        except Exception as error:
            self._send_json(
                400, {"ok": False, "error": "malformed request: %s" % error}
            )
            return
        header = self.headers.get("X-Repro-Trace", "")
        if header and not request.trace_id:
            context = TraceContext.from_header(header)
            request = request.with_(trace_id=context.trace_id)
        criticality = self.headers.get("X-Repro-Criticality", "")
        if criticality and not request.criticality:
            request = request.with_(criticality=criticality)
        response: QueryResponse = self.query_server.query(request)
        status = _STATUS_BY_CODE.get(response.error_code, 400)
        retry_after = None
        if status == 429:
            # back-pressure always tells the client when to come back
            retry_after = (
                response.retry_after_seconds or _DEFAULT_RETRY_AFTER
            )
        try:
            self._send_json(
                status,
                response.to_dict(),
                trace_id=response.trace_id,
                retry_after=retry_after,
            )
        except Exception:
            # the write seam failed (injected fault or a torn
            # connection): best-effort typed 500, then give up —
            # never let a write failure take the worker thread down
            try:
                self._write_json(
                    500,
                    {
                        "ok": False,
                        "error_code": "E_FAULT",
                        "error_message": "response write failed",
                        "request_id": request.request_id,
                    },
                    trace_id=response.trace_id,
                )
            except Exception:
                pass


def make_http_server(
    query_server: QueryServer, host: str = "127.0.0.1", port: int = 8000
) -> ThreadingHTTPServer:
    """Bind (but do not run) the HTTP front end."""
    handler = type("_BoundHandler", (_Handler,), {"query_server": query_server})
    return ThreadingHTTPServer((host, port), handler)


def serve_http(
    query_server: QueryServer,
    host: str = "127.0.0.1",
    port: int = 8000,
    ready: Optional[object] = None,
) -> None:
    """Run the HTTP front end until interrupted.  ``ready``, when a
    :class:`threading.Event`, is set once the socket is bound (test
    hook)."""
    httpd = make_http_server(query_server, host, port)
    if ready is not None:
        ready.set()
    try:
        httpd.serve_forever()
    finally:
        httpd.server_close()
