"""The frozen request/response protocol of the serving layer.

:class:`QueryRequest` and :class:`QueryResponse` are the *wire shape*
of one secure query: immutable dataclasses with ``to_dict`` /
``from_dict`` round-trips, versioned by :data:`PROTOCOL_VERSION`
independently of engine internals.  Both the batch API
(:meth:`~repro.core.engine.SecureQueryEngine.execute_batch`) and the
:class:`~repro.serving.server.QueryServer` speak exactly these values,
so a client serialized against version N keeps working while the
engine's report/options internals evolve.

Design notes:

* A request names its document by **reference** (a catalog key), not
  by value — the server resolves the ref against its
  :class:`~repro.serving.server.EngineCatalog`; library callers resolve
  it themselves and pass the document object to ``execute_request``.
* ``tenant`` defaults to the policy name (the paper's user classes are
  the natural tenants), but a deployment fronting many users per
  policy can set it independently — admission control keys on
  :attr:`QueryRequest.tenant_id`.
* A response **never** wraps an exception: failures are data
  (``error_code`` carries the stable :mod:`repro.errors` code, with
  exit-code and audit parity — see ``docs/serving.md``).
* Response ``results`` are strings: serialized XML for element
  results, raw text values for ``text()`` results — a JSON-safe shape
  that crosses process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.core.options import ExecutionOptions
from repro.errors import error_code as _error_code
from repro.serving.resilience import normalize_criticality

__all__ = ["PROTOCOL_VERSION", "QueryRequest", "QueryResponse"]

#: Version tag embedded in every serialized request/response.  Bump
#: only on incompatible shape changes; readers ignore unknown fields.
PROTOCOL_VERSION = 1


@dataclass(frozen=True)
class QueryRequest:
    """One secure query, as data.

    ``policy``
        The registered policy (user class) the query runs under.
    ``query``
        The XPath text over that policy's security view.
    ``document``
        Document *reference* — a catalog key the server resolves; may
        stay empty for direct library calls where the caller passes
        the document object alongside the request.
    ``tenant``
        Admission-control identity; empty means "the policy name"
        (read :attr:`tenant_id`, not this field).
    ``options``
        The :class:`~repro.core.options.ExecutionOptions` to run with
        (``None`` → engine defaults).
    ``request_id``
        Opaque client-chosen correlation id, echoed on the response.
    ``trace_id``
        Distributed-trace correlation id.  Usually empty on the wire —
        the server mints one at ingress (or adopts the
        ``X-Repro-Trace`` header) and echoes it on the response; a
        client may set it to join the request to its own trace.
    ``criticality``
        Load-shedding class (``critical`` / ``default`` /
        ``sheddable``, or the ``X-Repro-Criticality`` header).  Under
        overload the server sheds the lowest class first; empty or
        unknown values mean ``default`` (read
        :attr:`criticality_class`, not this field).
    """

    policy: str
    query: str
    document: str = ""
    tenant: str = ""
    options: Optional[ExecutionOptions] = None
    request_id: str = ""
    trace_id: str = ""
    criticality: str = ""

    @property
    def tenant_id(self) -> str:
        """The admission-control identity: ``tenant``, defaulting to
        the policy name."""
        return self.tenant or self.policy

    @property
    def criticality_class(self) -> str:
        """The effective shedding class: ``criticality`` normalized —
        empty and unknown values mean ``default``."""
        return normalize_criticality(self.criticality)

    def with_(self, **changes) -> "QueryRequest":
        """A copy with some fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        return {
            "v": PROTOCOL_VERSION,
            "policy": self.policy,
            "query": self.query,
            "document": self.document,
            "tenant": self.tenant,
            "options": self.options.to_dict() if self.options else None,
            "request_id": self.request_id,
            "trace_id": self.trace_id,
            "criticality": self.criticality,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryRequest":
        """Inverse of :meth:`to_dict`; unknown keys are ignored and
        missing optional keys take their defaults, so older clients
        keep working against newer servers and vice versa."""
        options = payload.get("options")
        return cls(
            policy=payload.get("policy", ""),
            query=payload.get("query", ""),
            document=payload.get("document", ""),
            tenant=payload.get("tenant", ""),
            options=(
                ExecutionOptions.from_dict(options) if options else None
            ),
            request_id=payload.get("request_id", ""),
            trace_id=payload.get("trace_id", ""),
            criticality=payload.get("criticality", ""),
        )


@dataclass(frozen=True)
class QueryResponse:
    """The answer (or typed failure) to one :class:`QueryRequest`.

    ``ok``
        Whether the query was answered.  When ``False``,
        ``error_code`` holds the stable :mod:`repro.errors` code
        (``E_DEADLINE``, ``E_ADMISSION``, ``E_LABEL_DENIED``, ...) —
        match on the code, never on the message.
    ``results``
        Tuple of strings: serialized XML for element results, raw
        values for ``text()`` results.  Empty on failure.
    ``report``
        The :class:`~repro.core.engine.QueryReport` as a plain dict
        (``None`` on failure) — kept as data so the response shape
        does not depend on engine classes.
    ``retry_after_seconds``
        Back-pressure hint on shed/rejected failures (``E_SHED`` /
        ``E_ADMISSION``): when a retry has a chance.  Surfaced over
        HTTP as the ``Retry-After`` header on 429 responses.
    """

    policy: str = ""
    query: str = ""
    ok: bool = True
    results: Tuple[str, ...] = field(default_factory=tuple)
    report: Optional[dict] = None
    error_code: str = ""
    error_message: str = ""
    request_id: str = ""
    tenant: str = ""
    trace_id: str = ""
    retry_after_seconds: Optional[float] = None

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_result(cls, request: QueryRequest, result) -> "QueryResponse":
        """Wrap a :class:`~repro.core.engine.QueryResult` for the wire."""
        from repro.xmlmodel.serialize import serialize

        return cls(
            policy=request.policy,
            query=request.query,
            ok=True,
            results=tuple(
                value if isinstance(value, str) else serialize(value)
                for value in result
            ),
            report=result.report.to_dict(),
            request_id=request.request_id,
            tenant=request.tenant_id,
            trace_id=request.trace_id,
        )

    @classmethod
    def from_error(
        cls, request: QueryRequest, error: BaseException
    ) -> "QueryResponse":
        """Wrap a failure as data, preserving the stable error code."""
        return cls(
            policy=request.policy,
            query=request.query,
            ok=False,
            results=(),
            report=None,
            error_code=_error_code(error),
            error_message=str(error),
            request_id=request.request_id,
            tenant=request.tenant_id,
            trace_id=request.trace_id,
            retry_after_seconds=getattr(error, "retry_after_seconds", None),
        )

    # -- wire shape ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "v": PROTOCOL_VERSION,
            "policy": self.policy,
            "query": self.query,
            "ok": self.ok,
            "results": list(self.results),
            "report": self.report,
            "error_code": self.error_code,
            "error_message": self.error_message,
            "request_id": self.request_id,
            "tenant": self.tenant,
            "trace_id": self.trace_id,
            "retry_after_seconds": self.retry_after_seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryResponse":
        return cls(
            policy=payload.get("policy", ""),
            query=payload.get("query", ""),
            ok=payload.get("ok", True),
            results=tuple(payload.get("results") or ()),
            report=payload.get("report"),
            error_code=payload.get("error_code", ""),
            error_message=payload.get("error_message", ""),
            request_id=payload.get("request_id", ""),
            tenant=payload.get("tenant", ""),
            trace_id=payload.get("trace_id", ""),
            retry_after_seconds=payload.get("retry_after_seconds"),
        )
