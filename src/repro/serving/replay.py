"""Mixed-tenant workload replay for the serving layer.

Builds the standard two-document catalog (the hospital example with
its nurse and doctor user classes, plus the paper's Section 6 Adex
workload) and replays a shuffled multi-tenant request stream against a
:class:`~repro.serving.server.QueryServer` from N concurrent client
threads, measuring end-to-end latency percentiles and throughput.

This is both the ``repro replay`` CLI command and the engine room of
``benchmarks/bench_serving.py`` — the benchmark checks the numbers in
and asserts on them, the CLI prints them.
"""

from __future__ import annotations

import random
from concurrent.futures import CancelledError
from concurrent.futures import TimeoutError as FutureTimeoutError
from threading import Thread
from time import monotonic
from typing import Dict, List, Optional

from repro.core.options import ExecutionOptions
from repro.errors import AdmissionRejected
from repro.serving.protocol import QueryRequest, QueryResponse
from repro.serving.resilience import RetryBudget
from repro.serving.server import EngineCatalog, QueryServer

__all__ = [
    "standard_catalog",
    "mixed_workload",
    "replay",
    "percentile",
    "summarize",
]

#: Error codes a client may retry (pure back-pressure — the request
#: itself was fine); everything else retries would just repeat.
RETRYABLE_CODES = frozenset({"E_SHED", "E_ADMISSION"})

#: Per-request wait bound for the replay client: a future unresolved
#: past this is reported as a transport error, never a hang.
CLIENT_TIMEOUT_SECONDS = 60.0

#: Document refs of the standard catalog.
HOSPITAL_REF = "hospital"
ADEX_REF = "adex"


def standard_catalog(seed: int = 0) -> EngineCatalog:
    """The hospital (nurse + doctor tenants) and Adex (buyer tenant)
    engines behind one catalog — two DTDs, three user classes."""
    from repro.workloads.adex import adex_document, adex_engine
    from repro.workloads.hospital import (
        doctor_spec,
        hospital_document,
        hospital_dtd,
        nurse_engine,
    )

    hospital = nurse_engine(ward="2")
    hospital.register_policy("doctor", doctor_spec(hospital_dtd()))
    adex = adex_engine()
    return (
        EngineCatalog()
        .add(HOSPITAL_REF, hospital, hospital_document(seed=seed))
        .add(ADEX_REF, adex, adex_document(seed=seed))
    )


def mixed_workload(
    repetitions: int = 4,
    seed: int = 0,
    options: Optional[ExecutionOptions] = None,
) -> List[QueryRequest]:
    """A shuffled multi-tenant request stream: every hospital query as
    nurse and as doctor, every Adex query as the buyer, repeated
    ``repetitions`` times and shuffled deterministically by ``seed``."""
    from repro.workloads.queries import ADEX_QUERY_TEXTS, HOSPITAL_QUERY_TEXTS

    requests: List[QueryRequest] = []
    for _ in range(repetitions):
        for text in HOSPITAL_QUERY_TEXTS.values():
            for policy in ("nurse", "doctor"):
                requests.append(
                    QueryRequest(
                        policy=policy,
                        query=text,
                        document=HOSPITAL_REF,
                        options=options,
                    )
                )
        for text in ADEX_QUERY_TEXTS.values():
            requests.append(
                QueryRequest(
                    policy="real-estate-buyer",
                    query=text,
                    document=ADEX_REF,
                    options=options,
                )
            )
    random.Random(seed).shuffle(requests)
    return requests


def percentile(samples: List[float], q: float) -> float:
    """The ``q``-th percentile (0-100) by linear interpolation."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


def summarize(latencies: List[float], elapsed: float) -> Dict[str, float]:
    """Latency percentiles (ms) and throughput for one replay run."""
    return {
        "requests": len(latencies),
        "elapsed_seconds": elapsed,
        "qps": len(latencies) / elapsed if elapsed > 0 else 0.0,
        "p50_ms": percentile(latencies, 50) * 1e3,
        "p95_ms": percentile(latencies, 95) * 1e3,
        "p99_ms": percentile(latencies, 99) * 1e3,
    }


def _client_query(server: QueryServer, request: QueryRequest) -> tuple:
    """One synchronous request that can *never* raise: transport-level
    failures (cancelled futures, dropped connections while the server
    drains mid-replay, client-side timeouts) come back as a typed
    error response plus a ``transport_error`` flag."""
    try:
        response = server.query(request, timeout=CLIENT_TIMEOUT_SECONDS)
        return response, False
    except (CancelledError, FutureTimeoutError) as error:
        dropped = AdmissionRejected(
            "request dropped by the server (%s) — likely a mid-replay "
            "drain or shutdown" % type(error).__name__,
            tenant=request.tenant_id,
        )
        return QueryResponse.from_error(request, dropped), True
    except Exception as error:
        return QueryResponse.from_error(request, error), True


def replay(
    server: QueryServer,
    requests: List[QueryRequest],
    clients: int = 16,
    retry_budget: Optional[RetryBudget] = None,
) -> Dict[str, object]:
    """Replay ``requests`` through ``server`` from ``clients`` threads.

    Each client thread submits its share synchronously (submit, wait,
    next) — the closed-loop model, so concurrency equals ``clients``.
    Returns the summary stats plus per-tenant latency breakdowns and
    the count of failed responses by error code.

    With a ``retry_budget`` (see
    :class:`~repro.serving.resilience.RetryBudget`) the client path
    retries shed/rejected responses (``E_SHED`` / ``E_ADMISSION``)
    once, but only while the per-tenant budget has tokens — the
    well-behaved-client model that cannot amplify an overload.

    Never tracebacks when the server drains or stops mid-replay:
    dropped requests become typed error responses, the summary is
    marked ``partial``, and each client stops submitting as soon as
    the server reports it is draining.
    """
    shares: List[List[QueryRequest]] = [[] for _ in range(clients)]
    for index, request in enumerate(requests):
        shares[index % clients].append(request)

    latencies: List[List[float]] = [[] for _ in range(clients)]
    responses: List[List[QueryResponse]] = [[] for _ in range(clients)]
    transport_errors = [0] * clients
    retries = [0] * clients
    skipped = [0] * clients

    def client(index: int) -> None:
        for request in shares[index]:
            if server.draining or server.stopped:
                # mid-replay drain: stop offering load, report the
                # remainder as skipped rather than hammering a dying
                # server with requests it will only reject
                skipped[index] += 1
                continue
            started = monotonic()
            response, dropped = _client_query(server, request)
            if dropped:
                transport_errors[index] += 1
            if retry_budget is not None:
                retry_budget.record_request(request.tenant_id)
                if (
                    not response.ok
                    and response.error_code in RETRYABLE_CODES
                    and not (server.draining or server.stopped)
                    and retry_budget.try_spend(request.tenant_id)
                ):
                    retries[index] += 1
                    response, dropped = _client_query(server, request)
                    if dropped:
                        transport_errors[index] += 1
            latencies[index].append(monotonic() - started)
            responses[index].append(response)

    threads = [
        Thread(target=client, args=(index,), name="repro-client-%d" % index)
        for index in range(clients)
    ]
    started = monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = monotonic() - started

    flat_latencies = [value for share in latencies for value in share]
    flat_responses = [value for share in responses for value in share]

    per_tenant: Dict[str, List[float]] = {}
    errors: Dict[str, int] = {}
    for response, latency in zip(flat_responses, flat_latencies):
        per_tenant.setdefault(response.tenant or response.policy, []).append(
            latency
        )
        if not response.ok:
            code = response.error_code or "E_UNKNOWN"
            errors[code] = errors.get(code, 0) + 1

    summary = summarize(flat_latencies, elapsed)
    summary["clients"] = clients
    summary["errors"] = errors
    summary["transport_errors"] = sum(transport_errors)
    summary["skipped"] = sum(skipped)
    summary["partial"] = bool(
        sum(transport_errors)
        or sum(skipped)
        or server.draining
        or server.stopped
    )
    if retry_budget is not None:
        summary["retries"] = sum(retries)
        summary["retry_budget"] = retry_budget.snapshot()
    summary["tenants"] = {
        tenant: {
            "requests": len(values),
            "p50_ms": percentile(values, 50) * 1e3,
            "p95_ms": percentile(values, 95) * 1e3,
        }
        for tenant, values in sorted(per_tenant.items())
    }
    if server.flight is not None:
        # tracing was on: surface the flight recorder's retention
        # stats and per-tenant burn rates alongside the latencies
        summary["flight"] = server.flight.stats()
    if server.slo is not None:
        summary["slo"] = {
            tenant: {
                "requests": stats["requests"],
                "breaches": stats["breaches"],
                "compliance": stats["compliance"],
                "fast_burn_rate": stats["fast"]["burn_rate"],
                "slow_burn_rate": stats["slow"]["burn_rate"],
            }
            for tenant, stats in server.slo.snapshot()["tenants"].items()
        }
    return summary
