"""Overload-and-failure survival for the serving layer.

Four small, composable pieces (see ``docs/serving.md`` "Overload &
lifecycle" and ``docs/robustness.md``):

**Criticality classes.**  Every request carries one of three
criticality classes — :data:`CRITICAL`, :data:`DEFAULT`,
:data:`SHEDDABLE` — set on :class:`~repro.serving.protocol.QueryRequest`
or via the ``X-Repro-Criticality`` HTTP header.  Under overload the
admission gate sheds the *lowest* class first; ``critical`` traffic is
never shed (only the hard per-tenant queue bounds can reject it).

**OverloadDetector.**  The shedding signal: an EWMA of queue-wait
utilization (observed wait over the queue deadline, 1.0 on a deadline
miss or queue-full rejection).  Requests that would have to wait are
shed with :class:`~repro.errors.RequestShed` (``E_SHED``) when the
EWMA crosses their class's threshold — ``sheddable`` at
``shed_sheddable_at``, ``default`` at the higher ``shed_default_at``.
The detector is deterministic given its observation sequence, which is
what the chaos suite leans on.

**CircuitBreaker.**  A thread-safe closed → open → half-open breaker
for seams that fail repeatedly: instead of re-probing a broken
accelerator (or audit sink) on *every* request, the breaker opens
after ``failure_threshold`` consecutive failures and short-circuits
callers straight to the fallback until a seeded-jitter exponential
backoff elapses; then exactly one probe runs half-open and either
re-closes the breaker or re-opens it with a longer backoff.
:class:`BreakerBoard` keys breakers by seam name (the engine wires one
over its degradation seams); :class:`BreakerSink` wraps an audit sink.

**RetryBudget.**  The client-side complement: a per-tenant token
bucket that caps retries to a fraction of successful traffic so shed
or rejected requests cannot amplify an overload into a retry storm.
``repro replay``'s client path honors it.

Everything is stdlib threading and accounts into the ``resilience.*``
metric namespace; state is surfaced at ``GET /debug/resilience``.
"""

from __future__ import annotations

from random import Random
from threading import Lock
from time import monotonic
from typing import Callable, Dict, Optional, Tuple

from repro.obs.events import Event, EventSink
from repro.obs.metrics import record as _record, set_gauge as _set_gauge

__all__ = [
    "CRITICAL",
    "DEFAULT",
    "SHEDDABLE",
    "CRITICALITIES",
    "normalize_criticality",
    "OverloadDetector",
    "CircuitBreaker",
    "BreakerBoard",
    "BreakerSink",
    "RetryBudget",
]

#: Criticality classes, most to least important.  Shedding order is
#: the reverse: ``sheddable`` first, ``critical`` never.
CRITICAL = "critical"
DEFAULT = "default"
SHEDDABLE = "sheddable"
CRITICALITIES: Tuple[str, ...] = (CRITICAL, DEFAULT, SHEDDABLE)


def normalize_criticality(value: Optional[str]) -> str:
    """The effective criticality class of a wire value: unknown or
    empty values mean :data:`DEFAULT` (never an error — a typo in a
    client header must not fail the request)."""
    if value in CRITICALITIES:
        return value
    return DEFAULT


class OverloadDetector(object):
    """Utilization-based shedding signal.

    ``observe_wait(waited, deadline)`` feeds one queue-wait sample:
    utilization is ``waited / deadline`` (``reference_seconds`` when
    the tenant has no queue deadline), clamped to 1.0; queue-deadline
    misses and queue-full rejections count as 1.0.  The EWMA
    (``alpha`` per sample) is compared against the per-class
    thresholds by :meth:`should_shed`.

    Deterministic: state is a pure function of the observation
    sequence, so seeded chaos runs replay exactly.
    """

    __slots__ = (
        "alpha",
        "shed_sheddable_at",
        "shed_default_at",
        "reference_seconds",
        "_ewma",
        "_samples",
        "_lock",
    )

    def __init__(
        self,
        alpha: float = 0.2,
        shed_sheddable_at: float = 0.5,
        shed_default_at: float = 0.85,
        reference_seconds: float = 1.0,
    ):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1], got %r" % (alpha,))
        if not 0.0 < shed_sheddable_at <= shed_default_at:
            raise ValueError(
                "thresholds must satisfy 0 < shed_sheddable_at <= "
                "shed_default_at, got %r / %r"
                % (shed_sheddable_at, shed_default_at)
            )
        self.alpha = alpha
        self.shed_sheddable_at = shed_sheddable_at
        self.shed_default_at = shed_default_at
        self.reference_seconds = reference_seconds
        self._ewma = 0.0
        self._samples = 0
        self._lock = Lock()

    def observe(self, utilization: float) -> None:
        """Feed one raw utilization sample in [0, 1]."""
        value = min(1.0, max(0.0, utilization))
        with self._lock:
            self._ewma += self.alpha * (value - self._ewma)
            self._samples += 1
        _set_gauge("resilience.overload.utilization", self._ewma)

    def observe_wait(
        self, waited_seconds: float, deadline_seconds: Optional[float] = None
    ) -> None:
        """Feed one queue-wait sample against its deadline (or the
        reference deadline when the tenant queues unbounded)."""
        reference = deadline_seconds or self.reference_seconds
        self.observe(waited_seconds / reference if reference > 0 else 0.0)

    def utilization(self) -> float:
        return self._ewma

    def should_shed(self, criticality: str) -> bool:
        """Whether a request of ``criticality`` that would have to
        wait should be shed right now.  ``critical`` is never shed."""
        if criticality == SHEDDABLE:
            return self._ewma >= self.shed_sheddable_at
        if criticality == CRITICAL:
            return False
        return self._ewma >= self.shed_default_at

    def shed_classes(self) -> Tuple[str, ...]:
        """The classes currently being shed, least critical first."""
        return tuple(
            cls for cls in (SHEDDABLE, DEFAULT) if self.should_shed(cls)
        )

    def retry_after_seconds(self) -> float:
        """The back-off hint for shed/rejected requests: scale the
        reference deadline by how overloaded we are (floor 0.1 s)."""
        return max(0.1, self.reference_seconds * self._ewma)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "utilization": self._ewma,
                "samples": self._samples,
                "shed_classes": list(self.shed_classes()),
                "shed_sheddable_at": self.shed_sheddable_at,
                "shed_default_at": self.shed_default_at,
                "alpha": self.alpha,
                "reference_seconds": self.reference_seconds,
            }

    def __repr__(self):
        return "OverloadDetector(utilization=%.3f, shedding=%s)" % (
            self._ewma,
            list(self.shed_classes()),
        )


#: Breaker states.
STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class CircuitBreaker(object):
    """Thread-safe closed/open/half-open circuit breaker.

    * **closed** — calls flow; ``failure_threshold`` *consecutive*
      failures open the breaker.
    * **open** — :meth:`allow` returns ``False`` (callers take their
      fallback without paying for the failing call) until the backoff
      elapses: ``reset_timeout_seconds * backoff_multiplier**(opens-1)``
      capped at ``max_backoff_seconds``, with seeded ±``jitter``
      fractional noise so a fleet of breakers doesn't re-probe in
      lockstep (the RNG is seeded — chaos runs replay exactly).
    * **half-open** — the first :meth:`allow` after the backoff admits
      exactly one probe; its :meth:`record_success` re-closes the
      breaker (and resets the backoff), its :meth:`record_failure`
      re-opens with the next longer backoff.

    The closed-state fast paths of :meth:`allow` and
    :meth:`record_success` are lock-free reads (a benignly racy extra
    call during a state transition is acceptable; transitions
    themselves always hold the lock).
    """

    __slots__ = (
        "name",
        "failure_threshold",
        "reset_timeout_seconds",
        "backoff_multiplier",
        "max_backoff_seconds",
        "jitter",
        "_clock",
        "_rng",
        "_lock",
        "_state",
        "_failures",
        "_opens",
        "_open_until",
        "opened",
        "reclosed",
        "probes",
        "short_circuits",
    )

    def __init__(
        self,
        name: str = "",
        failure_threshold: int = 3,
        reset_timeout_seconds: float = 0.5,
        backoff_multiplier: float = 2.0,
        max_backoff_seconds: float = 30.0,
        jitter: float = 0.1,
        seed: int = 0,
        clock: Callable[[], float] = monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                "failure_threshold must be >= 1, got %r" % (failure_threshold,)
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout_seconds = reset_timeout_seconds
        self.backoff_multiplier = backoff_multiplier
        self.max_backoff_seconds = max_backoff_seconds
        self.jitter = jitter
        self._clock = clock
        self._rng = Random(seed)
        self._lock = Lock()
        self._state = STATE_CLOSED
        self._failures = 0
        #: Consecutive opens since the last close (drives the backoff).
        self._opens = 0
        self._open_until = 0.0
        self.opened = 0
        self.reclosed = 0
        self.probes = 0
        self.short_circuits = 0

    @property
    def state(self) -> str:
        return self._state

    def allow(self) -> bool:
        """Whether the protected call may proceed right now."""
        if self._state == STATE_CLOSED:  # lock-free hot path
            return True
        with self._lock:
            if self._state == STATE_CLOSED:
                return True
            if (
                self._state == STATE_OPEN
                and self._clock() >= self._open_until
            ):
                self._state = STATE_HALF_OPEN
                self.probes += 1
                _record(
                    "resilience.breaker.probes", labels={"name": self.name}
                )
                return True
            # open (still backing off) or half-open (probe in flight)
            self.short_circuits += 1
            _record(
                "resilience.breaker.short_circuits",
                labels={"name": self.name},
            )
            return False

    def record_success(self) -> None:
        if self._state == STATE_CLOSED and self._failures == 0:
            return  # lock-free hot path
        with self._lock:
            self._failures = 0
            if self._state != STATE_CLOSED:
                self._state = STATE_CLOSED
                self._opens = 0
                self.reclosed += 1
                _record(
                    "resilience.breaker.reclosed", labels={"name": self.name}
                )

    def record_failure(self) -> None:
        with self._lock:
            if self._state == STATE_HALF_OPEN:
                self._open()
                return
            if self._state == STATE_OPEN:
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._open()

    def _open(self) -> None:
        """(Re-)open with the next exponential backoff.  Caller holds
        the lock."""
        self._opens += 1
        backoff = min(
            self.max_backoff_seconds,
            self.reset_timeout_seconds
            * self.backoff_multiplier ** (self._opens - 1),
        )
        backoff *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        self._state = STATE_OPEN
        self._failures = 0
        self._open_until = self._clock() + backoff
        self.opened += 1
        _record("resilience.breaker.opened", labels={"name": self.name})

    def snapshot(self) -> dict:
        with self._lock:
            remaining = (
                max(0.0, self._open_until - self._clock())
                if self._state == STATE_OPEN
                else 0.0
            )
            return {
                "state": self._state,
                "failures": self._failures,
                "consecutive_opens": self._opens,
                "backoff_remaining_seconds": round(remaining, 6),
                "opened": self.opened,
                "reclosed": self.reclosed,
                "probes": self.probes,
                "short_circuits": self.short_circuits,
            }

    def __repr__(self):
        return "CircuitBreaker(%r, state=%r, opened=%d)" % (
            self.name,
            self._state,
            self.opened,
        )


class BreakerBoard(object):
    """A registry of named :class:`CircuitBreaker` instances sharing
    one configuration — the engine keys one per degradation seam
    (``store.build``, ``index.build``, ``plan_cache.get``,
    ``plan_cache.put``), created on first failure-capable use."""

    def __init__(self, clock: Callable[[], float] = monotonic, **defaults):
        self._defaults = defaults
        self._clock = clock
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._lock = Lock()

    def breaker(self, name: str) -> CircuitBreaker:
        found = self._breakers.get(name)  # lock-free hot path
        if found is not None:
            return found
        with self._lock:
            found = self._breakers.get(name)
            if found is None:
                found = CircuitBreaker(
                    name=name, clock=self._clock, **self._defaults
                )
                self._breakers[name] = found
            return found

    def allow(self, name: str) -> bool:
        return self.breaker(name).allow()

    def success(self, name: str) -> None:
        self.breaker(name).record_success()

    def failure(self, name: str) -> None:
        self.breaker(name).record_failure()

    def state(self, name: str) -> str:
        return self.breaker(name).state

    def open_names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(
                sorted(
                    name
                    for name, breaker in self._breakers.items()
                    if breaker.state != STATE_CLOSED
                )
            )

    def snapshot(self) -> Dict[str, dict]:
        with self._lock:
            breakers = dict(self._breakers)
        return {
            name: breaker.snapshot()
            for name, breaker in sorted(breakers.items())
        }


class BreakerSink(EventSink):
    """An audit sink wrapper with a circuit breaker: a sink that fails
    repeatedly (dead disk, full pipe) is skipped outright until its
    backoff elapses, instead of paying a raise-and-drop on every event.

    Skipped events count into ``resilience.sink.skipped`` and the
    sink's own ``skipped`` counter; failures still propagate to the
    :class:`~repro.obs.events.EventPipeline` per-sink guard, which is
    what keeps any sink failure from ever failing a query.
    """

    __slots__ = ("inner", "breaker", "skipped")

    def __init__(
        self, inner: EventSink, breaker: Optional[CircuitBreaker] = None
    ):
        self.inner = inner
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            name="sink.%s" % type(inner).__name__
        )
        self.skipped = 0

    def emit(self, event: Event) -> None:
        if not self.breaker.allow():
            self.skipped += 1
            _record("resilience.sink.skipped")
            return
        try:
            self.inner.emit(event)
        except BaseException:
            self.breaker.record_failure()
            raise
        self.breaker.record_success()


class RetryBudget(object):
    """Per-tenant retry token bucket.

    Every completed request deposits ``ratio`` tokens for its tenant
    (capped at ``burst``); a retry withdraws one whole token.  With
    ``ratio=0.1`` retries can never exceed ~10% of traffic per tenant,
    which bounds the amplification a retrying client fleet can add to
    an already-overloaded server.  ``min_tokens`` seeds each tenant's
    bucket so cold tenants can still retry a transient failure.
    """

    __slots__ = ("ratio", "burst", "min_tokens", "_tokens", "_lock",
                 "spent", "denied")

    def __init__(
        self, ratio: float = 0.1, burst: float = 10.0, min_tokens: float = 1.0
    ):
        if ratio < 0:
            raise ValueError("ratio must be >= 0, got %r" % (ratio,))
        self.ratio = ratio
        self.burst = burst
        self.min_tokens = min_tokens
        self._tokens: Dict[str, float] = {}
        self._lock = Lock()
        self.spent = 0
        self.denied = 0

    def record_request(self, tenant: str) -> None:
        """Deposit for one completed request."""
        with self._lock:
            tokens = self._tokens.get(tenant, self.min_tokens)
            self._tokens[tenant] = min(self.burst, tokens + self.ratio)

    def try_spend(self, tenant: str) -> bool:
        """Withdraw one retry token; ``False`` means the budget is
        exhausted and the caller must not retry."""
        with self._lock:
            tokens = self._tokens.get(tenant, self.min_tokens)
            if tokens >= 1.0:
                self._tokens[tenant] = tokens - 1.0
                self.spent += 1
                _record("resilience.retry.spent")
                return True
            self.denied += 1
            _record("resilience.retry.denied")
            return False

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "ratio": self.ratio,
                "spent": self.spent,
                "denied": self.denied,
                "tokens": {
                    tenant: round(tokens, 3)
                    for tenant, tokens in sorted(self._tokens.items())
                },
            }
