"""The concurrent multi-tenant query server.

:class:`QueryServer` is a stdlib thread-pool front end over one or
more :class:`~repro.core.engine.SecureQueryEngine` instances.  The
contract:

* :meth:`QueryServer.submit` **never raises** — every request resolves
  to a :class:`~repro.serving.protocol.QueryResponse` future, failures
  included (typed error codes, exit-code and audit parity with the
  CLI).
* Per-tenant admission (:mod:`repro.serving.admission`) is applied
  around execution, so one flooding tenant exhausts only its own
  slots and queue.
* Workers **coalesce** same-document requests: each worker drains up
  to ``max_batch`` queued requests, groups them by document ref, and
  executes each group through
  :meth:`~repro.core.engine.SecureQueryEngine.execute_request` with a
  shared scan cache — the batched-execution path that shares postings
  scans across plans with a common label frontier (see
  ``docs/serving.md`` and ``BENCH_serving.json``).

Document refs are resolved through an :class:`EngineCatalog`: a ref
names ``(engine, document)``, which is what lets one server front the
hospital and Adex workloads (different DTDs, different engines) at
once while still coalescing within each.
"""

from __future__ import annotations

import itertools
import queue
from concurrent.futures import Future
from threading import Condition, Lock, Thread
from time import monotonic
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError, SecurityError
from repro.robustness.faults import trip as fault_trip
from repro.obs.events import ErrorEvent
from repro.obs.flight import FlightRecorder, TraceRecord
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    observe as _observe,
    record as _record,
    set_gauge as _set_gauge,
)
from repro.obs.slo import SLOTracker
from repro.obs.trace import NULL_SPAN, Tracer, new_trace_id
from repro.serving.admission import AdmissionController
from repro.serving.protocol import QueryRequest, QueryResponse

__all__ = ["EngineCatalog", "QueryServer"]


class EngineCatalog(object):
    """Resolves a request's document ref to ``(engine, document)``.

    Thread-safe for concurrent resolve vs. add; refs are
    immutable-once-added (re-adding a ref raises) so resolution
    results never change under an in-flight batch.
    """

    def __init__(self):
        self._entries: Dict[str, tuple] = {}
        self._lock = Lock()

    def add(self, ref: str, engine, document) -> "EngineCatalog":
        with self._lock:
            if ref in self._entries:
                raise SecurityError(
                    "document ref %r is already in the catalog" % (ref,)
                )
            self._entries[ref] = (engine, document)
        return self

    def resolve(self, ref: str) -> tuple:
        with self._lock:
            try:
                return self._entries[ref]
            except KeyError:
                raise SecurityError(
                    "unknown document ref %r (catalog has %s)"
                    % (ref, sorted(self._entries) or "no entries")
                )

    def refs(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def entries(self) -> Dict[str, tuple]:
        """A ref -> ``(engine, document)`` snapshot."""
        with self._lock:
            return dict(self._entries)

    def engines(self) -> List:
        """The distinct engines behind the catalog's refs (several
        refs may share one engine; each appears once, in first-ref
        order)."""
        entries = self.entries()
        seen = set()
        out = []
        for ref in sorted(entries):
            engine = entries[ref][0]
            if id(engine) not in seen:
                seen.add(id(engine))
                out.append(engine)
        return out

    def __contains__(self, ref: str) -> bool:
        with self._lock:
            return ref in self._entries


class _Pending(object):
    __slots__ = ("request", "future", "enqueued_at")

    def __init__(self, request: QueryRequest, future: Future, enqueued_at: float):
        self.request = request
        self.future = future
        self.enqueued_at = enqueued_at


_STOP = object()


class QueryServer(object):
    """Thread-pool server with admission control and batch coalescing.

    ``catalog``
        The :class:`EngineCatalog` resolving document refs.
    ``admission``
        The :class:`~repro.serving.admission.AdmissionController`
        (default: one with default tenant bounds).
    ``workers``
        Worker threads draining the shared request queue.
    ``max_batch``
        Most requests one worker drains per pass; same-document
        requests within a drain share one scan cache.
    ``tracing``
        Whether to trace requests end to end.  When on (the default)
        every request gets a ``trace_id`` minted at ingress (unless
        the client sent one), a span tree (``request`` → ``queue_wait``
        → ``batch`` → engine stages), tail-sampled retention in the
        :class:`~repro.obs.flight.FlightRecorder`, and per-tenant SLO
        accounting.  When off, the request path costs one attribute
        check — the engine still traces internally for its report.
    ``flight`` / ``slo``
        Override the default :class:`FlightRecorder` /
        :class:`~repro.obs.slo.SLOTracker` (sizing, SLO objective,
        seeded sampling for tests).  Ignored-by-default when
        ``tracing`` is off unless passed explicitly.
    ``profiling`` / ``workload``
        Workload intelligence (see :mod:`repro.obs.workload`).  With
        ``profiling`` (the default) the server owns one
        :class:`~repro.obs.workload.WorkloadProfiler` and installs it
        on every catalog engine at :meth:`start` that doesn't already
        have one, so a multi-engine catalog aggregates into a single
        per-tenant heavy-hitter report (``GET /debug/workload``,
        ``repro workload top``).  Pass ``workload`` to share or size
        the profiler yourself; ``profiling=False`` leaves engines
        unprofiled (one attribute check per query).
    """

    def __init__(
        self,
        catalog: EngineCatalog,
        admission: Optional[AdmissionController] = None,
        workers: int = 4,
        max_batch: int = 8,
        tracing: bool = True,
        flight: Optional[FlightRecorder] = None,
        slo: Optional[SLOTracker] = None,
        profiling: bool = True,
        workload=None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1, got %r" % (workers,))
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1, got %r" % (max_batch,))
        self.catalog = catalog
        self.admission = admission if admission is not None else AdmissionController()
        self.max_batch = max_batch
        self.tracing = bool(tracing)
        self.flight = flight if flight is not None else (
            FlightRecorder() if self.tracing else None
        )
        self.slo = slo if slo is not None else (
            SLOTracker() if self.tracing else None
        )
        if workload is None and profiling:
            from repro.obs.workload import WorkloadProfiler

            workload = WorkloadProfiler()
        self.workload = workload
        self._started_at: Optional[float] = None
        self._queue: "queue.Queue" = queue.Queue()
        self._ids = itertools.count(1)
        self._threads = [
            Thread(
                target=self._worker,
                name="repro-serve-%d" % index,
                daemon=True,
            )
            for index in range(workers)
        ]
        self._started = False
        self._stopped = False
        self._draining = False
        self._lifecycle = Lock()
        # in-flight accounting: submitted-but-unresolved requests;
        # drain() waits on the condition until it reaches zero
        self._inflight = 0
        self._inflight_cond = Condition()
        self._drain_report: Optional[dict] = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "QueryServer":
        with self._lifecycle:
            if self._started:
                return self
            self._started = True
            self._started_at = monotonic()
        if self.workload is not None:
            # one shared sketch across the catalog; an engine with its
            # own profiler (attached by the owner) keeps it
            for engine in self.catalog.engines():
                if engine.workload is None:
                    engine.enable_workload_profiler(profiler=self.workload)
        for thread in self._threads:
            thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the workers.  With ``drain`` (default) queued requests
        finish first; without, they resolve to ``E_ADMISSION``
        shutdown rejections."""
        with self._lifecycle:
            if self._stopped or not self._started:
                self._stopped = True
                return
            self._stopped = True
        if not drain:
            while True:
                try:
                    pending = self._queue.get_nowait()
                except queue.Empty:
                    break
                if pending is not _STOP:
                    self._reject_shutdown(pending)
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join()

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def stopped(self) -> bool:
        return self._stopped

    def begin_drain(self) -> None:
        """Stop intake immediately (``submit`` rejects, ``/readyz``
        turns 503) without waiting — the first half of :meth:`drain`,
        callable from a signal handler."""
        with self._lifecycle:
            self._draining = True

    def drain(self, deadline_seconds: float = 10.0) -> dict:
        """Gracefully wind down: stop intake, let the workers flush
        the queue and in-flight requests, and — once everything is
        resolved or ``deadline_seconds`` has elapsed — stop the
        workers.  Requests still queued at the deadline resolve to
        ``E_ADMISSION`` drain rejections; **every** submitted future
        is resolved by the time this returns.

        Always terminates: the wait is bounded by the deadline plus a
        one-second join grace for workers mid-request.  Returns (and
        stores, for ``GET /debug/resilience``) a report of what
        happened.
        """
        started = monotonic()
        self.begin_drain()
        _record("resilience.drain.started")
        deadline = started + max(0.0, deadline_seconds)
        with self._inflight_cond:
            while self._inflight > 0 and monotonic() < deadline:
                self._inflight_cond.wait(
                    timeout=min(0.05, max(0.001, deadline - monotonic()))
                )
        # past the deadline (or already idle): reject whatever is
        # still queued so no future is left hanging
        rejected = 0
        while True:
            try:
                pending = self._queue.get_nowait()
            except queue.Empty:
                break
            if pending is not _STOP:
                self._reject_shutdown(pending)
                rejected += 1
        with self._lifecycle:
            stop_workers = self._started and not self._stopped
            self._stopped = True
        if stop_workers:
            for _ in self._threads:
                self._queue.put(_STOP)
            for thread in self._threads:
                thread.join(
                    timeout=max(0.05, deadline - monotonic() + 1.0)
                )
        with self._inflight_cond:
            unresolved = self._inflight
        duration = monotonic() - started
        report = {
            "duration_seconds": round(duration, 6),
            "deadline_seconds": deadline_seconds,
            "within_deadline": duration <= deadline_seconds,
            "rejected": rejected,
            "unresolved": unresolved,
        }
        self._drain_report = report
        _record("resilience.drain.rejected", rejected)
        _set_gauge("resilience.drain.duration_seconds", duration)
        return report

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- submission ------------------------------------------------------

    def submit(self, request: QueryRequest) -> "Future[QueryResponse]":
        """Enqueue one request.  Never raises: malformed requests,
        post-shutdown and mid-drain submissions resolve the future to
        an error response like any other failure."""
        if self.tracing and not request.trace_id:
            request = request.with_(trace_id=new_trace_id())
        future: "Future[QueryResponse]" = Future()
        pending = _Pending(request, future, monotonic())
        _record("serving.requests")
        if self._stopped or self._draining:
            self._reject_shutdown(pending, track=False)
            return future
        with self._inflight_cond:
            self._inflight += 1
        self._queue.put(pending)
        _set_gauge("serving.queue_depth", self._queue.qsize())
        return future

    def query(
        self, request: QueryRequest, timeout: Optional[float] = None
    ) -> QueryResponse:
        """Submit and wait — the synchronous convenience spelling."""
        return self.submit(request).result(timeout=timeout)

    def next_request_id(self) -> str:
        """A server-unique request id for callers that don't mint
        their own."""
        return "r%d" % next(self._ids)

    # -- worker loop -----------------------------------------------------

    def _worker(self) -> None:
        while True:
            pending = self._queue.get()
            if pending is _STOP:
                return
            batch = [pending]
            while len(batch) < self.max_batch:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    # Put the sentinel back for a sibling and finish
                    # this batch first (drain semantics).
                    self._queue.put(_STOP)
                    break
                batch.append(extra)
            if len(batch) > 1:
                _record("serving.batches.coalesced")
            _observe("serving.batch_size", len(batch))
            _set_gauge("serving.queue_depth", self._queue.qsize())
            # a future cancelled while queued is abandoned here — it
            # must not occupy an admission slot or engine time, and it
            # must still leave the in-flight accounting balanced
            live: List[_Pending] = []
            for item in batch:
                if item.future.set_running_or_notify_cancel():
                    live.append(item)
                else:
                    _record("serving.cancelled")
                    self._finish(item, None)
            groups: Dict[str, List[_Pending]] = {}
            for item in live:
                groups.setdefault(item.request.document, []).append(item)
            for ref, items in groups.items():
                self._run_group(ref, items, batch_size=len(batch))

    def _run_group(
        self, ref: str, items: List[_Pending], batch_size: int = 1
    ) -> None:
        try:
            fault_trip("serving.resolve")
            engine, document = self.catalog.resolve(ref)
        except Exception as error:
            for item in items:
                self._finish(
                    item, QueryResponse.from_error(item.request, error)
                )
            return
        # One scan cache for the whole same-document group: postings
        # slices are pure functions of (store, label, frontier), so
        # plans sharing a label frontier reuse each other's scans.
        shared_scans: dict = {}
        for item in items:
            self._run_one(
                engine,
                document,
                shared_scans,
                item,
                batch_size=batch_size,
                group_size=len(items),
            )

    def _run_one(
        self,
        engine,
        document,
        shared_scans,
        item: _Pending,
        batch_size: int = 1,
        group_size: int = 1,
    ) -> None:
        request = item.request
        # Each request gets its own tracer (span trees are per-trace);
        # the engine must NOT be handed a disabled tracer — with no
        # tracer it builds its own enabled one, which QueryReport
        # timings depend on.
        tracer = Tracer() if self.tracing else None
        root_span = NULL_SPAN if tracer is None else tracer.span(
            "request",
            trace_id=request.trace_id,
            tenant=request.tenant_id,
            request_id=request.request_id,
        )
        started = monotonic()
        with root_span:
            try:
                # The slot is held per request, not per batch: a batch
                # acquiring several tenants' slots at once could deadlock
                # against a sibling worker acquiring them in another order.
                with self.admission.admit(
                    request.tenant_id,
                    enqueued_at=item.enqueued_at,
                    tracer=tracer,
                    criticality=request.criticality_class,
                ):
                    batch_span = NULL_SPAN if tracer is None else tracer.span(
                        "batch",
                        batch_size=batch_size,
                        group_size=group_size,
                        document=request.document,
                    )
                    with batch_span:
                        fault_trip("serving.execute")
                        response = engine.execute_request(
                            request,
                            document,
                            scan_cache=shared_scans,
                            tracer=tracer,
                        )
            except ReproError as error:
                # Admission failures happen outside the engine, so mirror
                # its audit behaviour here for event parity.
                if engine.events.active:
                    engine.events.emit(
                        ErrorEvent(
                            policy=request.policy,
                            query=request.query,
                            code=getattr(error, "code", ""),
                            message=str(error),
                            trace_id=request.trace_id,
                        )
                    )
                if self.workload is not None:
                    try:
                        from repro.xpath.fingerprint import query_fingerprint

                        self.workload.record_error(
                            request.tenant_id,
                            request.policy,
                            query_fingerprint(request.query),
                        )
                    except Exception:
                        _record("workload.failures")
                response = QueryResponse.from_error(request, error)
            except BaseException as error:  # never leak through a future
                response = QueryResponse.from_error(request, error)
            if not response.ok:
                root_span.set(error_code=response.error_code)
                _record("serving.errors")
                if response.error_code:
                    _record("serving.errors.%s" % response.error_code)
        latency = monotonic() - started
        tenant_labels = {"tenant": request.tenant_id}
        _observe(
            "serving.latency_seconds",
            latency,
            labels=tenant_labels,
            buckets=LATENCY_BUCKETS,
        )
        _observe(
            "serving.e2e_seconds",
            monotonic() - item.enqueued_at,
            labels=tenant_labels,
            buckets=LATENCY_BUCKETS,
        )
        breach = (
            self.slo.observe(request.tenant_id, latency, response.ok)
            if self.slo is not None
            else False
        )
        if self.flight is not None and tracer is not None and tracer.root:
            self.flight.record(
                TraceRecord.from_span(
                    tracer.root,
                    trace_id=request.trace_id,
                    request_id=request.request_id,
                    tenant=request.tenant_id,
                    policy=request.policy,
                    query=request.query,
                    document=request.document,
                    ok=response.ok,
                    error_code=response.error_code,
                    latency_seconds=latency,
                    slow=response.ok and breach,
                )
            )
        self._finish(item, response)

    # -- debug introspection ---------------------------------------------

    def trace_payload(
        self,
        n: Optional[int] = None,
        tenant: Optional[str] = None,
        status: Optional[str] = None,
    ) -> dict:
        """The ``GET /debug/traces`` payload (flight-recorder stats
        plus newest-first retained traces)."""
        if self.flight is None:
            return {"enabled": False, "stats": {}, "traces": []}
        payload = self.flight.to_dict(n=n, tenant=tenant, status=status)
        payload["enabled"] = True
        return payload

    def slo_payload(self) -> dict:
        """The ``GET /debug/slo`` payload (objective plus per-tenant
        burn rates)."""
        if self.slo is None:
            return {"enabled": False, "objective": None, "tenants": {}}
        payload = self.slo.snapshot()
        payload["enabled"] = True
        return payload

    def workload_payload(
        self, tenant: Optional[str] = None, n: Optional[int] = None
    ) -> dict:
        """The ``GET /debug/workload`` payload (per-tenant heavy
        hitters with count/latency-percentile/cache-hit stats)."""
        if self.workload is None:
            return {"enabled": False, "capacity": 0, "tenants": {}}
        payload = self.workload.report(tenant=tenant, n=n)
        payload["enabled"] = True
        return payload

    def cache_payload(self) -> dict:
        """The ``GET /debug/cachez`` payload: one
        :func:`~repro.obs.introspect.engine_report` per distinct
        catalog engine (keyed by the refs it serves) plus a byte
        total across them."""
        by_ref: Dict[int, List[str]] = {}
        entries = self.catalog.entries()
        for ref, (engine, _) in sorted(entries.items()):
            by_ref.setdefault(id(engine), []).append(ref)
        engines = {}
        total = 0
        for engine in self.catalog.engines():
            report = engine.introspect()
            total += report.get("total_bytes", 0)
            engines["+".join(by_ref.get(id(engine), ["?"]))] = report
        return {"engines": engines, "total_bytes": total}

    def vars_payload(self) -> dict:
        """The ``GET /debug/vars`` payload: build/runtime identity and
        the numbers an operator checks first (uptime, worker count,
        queue depths, cache byte totals, workload roll-up)."""
        import repro

        uptime = (
            monotonic() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        cache_bytes = 0
        for engine in self.catalog.engines():
            cache_bytes += engine.introspect().get("total_bytes", 0)
        return {
            "version": repro.__version__,
            "uptime_seconds": uptime,
            "workers": len(self._threads),
            "max_batch": self.max_batch,
            "tracing": self.tracing,
            "profiling": self.workload is not None,
            "documents": self.catalog.refs(),
            "queue_depth": self._queue.qsize(),
            "admission": self.admission.snapshot(),
            "cache_bytes": cache_bytes,
            "workload": (
                self.workload.stats() if self.workload is not None else {}
            ),
        }

    def ready_payload(self) -> Tuple[bool, dict]:
        """The ``GET /readyz`` payload: whether this instance should
        receive traffic, with the reasons when it shouldn't.  Gates on
        lifecycle (started / draining / stopped), catalog readiness,
        and engine circuit-breaker state — an instance with an open
        breaker is serving degraded and reports not-ready so load
        balancers prefer healthy peers."""
        reasons: List[str] = []
        if not self._started:
            reasons.append("not started")
        if self._draining:
            reasons.append("draining")
        if self._stopped:
            reasons.append("stopped")
        refs = self.catalog.refs()
        if not refs:
            reasons.append("empty catalog")
        open_breakers: List[str] = []
        for engine in self.catalog.engines():
            board = getattr(engine, "breakers", None)
            if board is not None:
                open_breakers.extend(board.open_names())
        if open_breakers:
            reasons.append(
                "open circuit breakers: %s" % ", ".join(sorted(open_breakers))
            )
        ready = not reasons
        return ready, {
            "ready": ready,
            "reasons": reasons,
            "documents": refs,
            "draining": self._draining,
            "open_breakers": sorted(open_breakers),
        }

    def resilience_payload(self) -> dict:
        """The ``GET /debug/resilience`` payload: shedding state and
        counts, per-engine breaker boards, and drain status — the
        overload story in one read."""
        overload = self.admission.overload
        by_ref: Dict[int, List[str]] = {}
        for ref, (engine, _) in sorted(self.catalog.entries().items()):
            by_ref.setdefault(id(engine), []).append(ref)
        breakers: Dict[str, dict] = {}
        for engine in self.catalog.engines():
            board = getattr(engine, "breakers", None)
            if board is not None:
                key = "+".join(by_ref.get(id(engine), ["?"]))
                breakers[key] = board.snapshot()
        return {
            "shedding": (
                dict(overload.snapshot(), enabled=True)
                if overload is not None
                else {"enabled": False}
            ),
            "shed": self.admission.shed_counts(),
            "breakers": breakers,
            "drain": {
                "draining": self._draining,
                "stopped": self._stopped,
                "inflight": self._inflight,
                "report": self._drain_report,
            },
        }

    def publish_metrics(self) -> None:
        """Refresh the ``workload.*`` / ``cache.*`` gauges in the
        process-wide registry from live state (called by the HTTP
        front end before rendering ``/metrics``)."""
        from repro.obs.export import publish_cache_report, publish_workload

        publish_workload(self.workload)
        for engine in self.catalog.engines():
            publish_cache_report(engine.introspect())

    # -- helpers ---------------------------------------------------------

    def _finish(
        self, item: _Pending, response: Optional[QueryResponse]
    ) -> None:
        """Resolve one submitted request exactly once: set the future
        (unless cancelled, or ``response`` is ``None`` for an
        abandoned-future skip) and balance the in-flight count."""
        if response is not None and not item.future.cancelled():
            try:
                item.future.set_result(response)
            except Exception:
                pass  # lost the race with a concurrent cancel
        with self._inflight_cond:
            self._inflight -= 1
            self._inflight_cond.notify_all()

    def _reject_shutdown(self, item: _Pending, track: bool = True) -> None:
        from repro.errors import AdmissionRejected

        _record("serving.admission.rejected")
        reason = "draining" if self._draining and not self._stopped \
            else "stopped"
        response = QueryResponse.from_error(
            item.request,
            AdmissionRejected(
                "server is %s" % reason,
                tenant=item.request.tenant_id,
                retry_after_seconds=1.0,
            ),
        )
        if track:
            self._finish(item, response)
        elif not item.future.cancelled():
            # rejected at submit time, before entering the in-flight
            # count — resolve without decrementing it
            item.future.set_result(response)
