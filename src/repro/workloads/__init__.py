"""Workloads: the paper's running hospital example (Sections 1-5) and
the reconstructed Adex classified-advertising workload of the
experimental study (Section 6)."""

from repro.workloads.hospital import (
    hospital_dtd,
    nurse_spec,
    nurse_engine,
    hospital_document,
)
from repro.workloads.adex import (
    adex_dtd,
    adex_spec,
    adex_engine,
    adex_document,
)
from repro.workloads.catalog import (
    catalog_dtd,
    flat_spec,
    catalog_document,
    catalog_engine,
)
from repro.workloads.queries import (
    ADEX_QUERIES,
    HOSPITAL_QUERIES,
    adex_query,
)
from repro.workloads.documents import dataset, DATASET_SCALES

__all__ = [
    "hospital_dtd",
    "nurse_spec",
    "nurse_engine",
    "hospital_document",
    "adex_dtd",
    "adex_spec",
    "adex_engine",
    "adex_document",
    "catalog_dtd",
    "flat_spec",
    "catalog_document",
    "catalog_engine",
    "ADEX_QUERIES",
    "HOSPITAL_QUERIES",
    "adex_query",
    "dataset",
    "DATASET_SCALES",
]
