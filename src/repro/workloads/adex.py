"""Reconstruction of the Adex workload of Section 6.

The paper's experiments use the Adex DTD [23], a standard of the
Newspaper Association of America for electronic exchange of classified
advertisements.  The original DTD is not redistributable/available
offline, so this module reconstructs a DTD with every element the
paper names and every structural property its experiments rely on
(see DESIGN.md, Substitutions):

* ``buyer-info`` has *required* ``company-id`` and ``contact-info``
  children — the co-existence constraint behind Q3's optimization;
* ``real-estate`` is a *disjunction* of ``house`` and ``apartment`` —
  the exclusive constraint behind Q4's optimization;
* ``r-e.warranty`` exists under ``house`` but not ``apartment`` — the
  non-existence pruning behind Q2;
* ``ad-instance`` also carries ``employment`` and ``automotive``
  categories, so the Section 6 policy ("children of the root
  annotated N; real-estate and buyer-info annotated Y") genuinely
  hides data.
"""

from __future__ import annotations

from typing import Optional

from repro.dtd.dtd import DTD
from repro.dtd.generator import DocumentGenerator
from repro.dtd.parser import parse_dtd
from repro.core.engine import SecureQueryEngine
from repro.core.spec import AccessSpec

#: The reconstructed Adex document DTD, in the paper's normal form.
ADEX_DTD_TEXT = """
<!ELEMENT adex (head, body)>
<!ELEMENT head (buyer-info*)>
<!ELEMENT buyer-info (company-id, contact-info)>
<!ELEMENT company-id (#PCDATA)>
<!ELEMENT contact-info (person-name, street, city, phone)>
<!ELEMENT person-name (#PCDATA)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT body (ad-instance*)>
<!ELEMENT ad-instance (real-estate | employment | automotive)>
<!ELEMENT employment (job-title, salary)>
<!ELEMENT job-title (#PCDATA)>
<!ELEMENT salary (#PCDATA)>
<!ELEMENT automotive (make, model, auto-price)>
<!ELEMENT make (#PCDATA)>
<!ELEMENT model (#PCDATA)>
<!ELEMENT auto-price (#PCDATA)>
<!ELEMENT real-estate (house | apartment)>
<!ELEMENT house (r-e.asking-price, r-e.unit-type, r-e.warranty, r-e.location)>
<!ELEMENT apartment (r-e.asking-price, r-e.unit-type, r-e.rent, r-e.location)>
<!ELEMENT r-e.asking-price (#PCDATA)>
<!ELEMENT r-e.unit-type (#PCDATA)>
<!ELEMENT r-e.warranty (#PCDATA)>
<!ELEMENT r-e.rent (#PCDATA)>
<!ELEMENT r-e.location (#PCDATA)>
"""


def adex_dtd() -> DTD:
    """The reconstructed Adex document DTD."""
    return parse_dtd(ADEX_DTD_TEXT)


def adex_spec(dtd: Optional[DTD] = None) -> AccessSpec:
    """The Section 6 security policy: "a user ... is permitted to
    access only data related to real estate advertisements and data
    related to buyers", created "by simply annotating the children of
    the root element adex as N and both the real-estate and buyer-info
    descendants as Y"."""
    dtd = adex_dtd() if dtd is None else dtd
    spec = AccessSpec(dtd, name="real-estate-buyer")
    spec.annotate("adex", "head", "N")
    spec.annotate("adex", "body", "N")
    spec.annotate("head", "buyer-info", "Y")
    spec.annotate("ad-instance", "real-estate", "Y")
    return spec


def adex_document(
    seed: int = 0,
    buyers: int = 50,
    ads: int = 200,
):
    """Generate a conforming Adex document with roughly the requested
    numbers of buyers and ad instances.

    The paper varies IBM XML Generator's *maximum branching factor* to
    produce its four documents; the two parameters here control the
    same two star productions (``head -> buyer-info*`` and
    ``body -> ad-instance*``)."""
    dtd = adex_dtd()
    generator = DocumentGenerator(
        dtd,
        seed=seed,
        max_branch=2,
        value_pools={
            "company-id": [str(1000 + i) for i in range(200)],
            "r-e.unit-type": ["condo", "duplex", "studio", "loft"],
            "r-e.warranty": ["1y", "2y", "5y", "none"],
        },
    )
    root = generator.generate()
    # Resize the two scale-bearing stars deterministically.
    head = root.first_child("head")
    body = root.first_child("body")
    _resize(generator, head, "buyer-info", buyers)
    _resize(generator, body, "ad-instance", ads)
    return root


def _resize(generator: DocumentGenerator, parent, child_label: str, count: int):
    """Regenerate ``parent``'s starred children to exactly ``count``."""
    parent.children = [
        child
        for child in parent.children
        if not (child.is_element and child.label == child_label)
    ]
    for _ in range(count):
        parent.append(
            generator._generate_element(child_label, generator.max_depth - 2)
        )


def adex_engine() -> SecureQueryEngine:
    """An engine with the Section 6 policy registered."""
    dtd = adex_dtd()
    engine = SecureQueryEngine(dtd)
    engine.register_policy("real-estate-buyer", adex_spec(dtd))
    return engine
