"""A recursive workload: a parts catalog with nested assemblies.

Exercises Section 4.2 (recursive view DTDs and height-bounded
unfolding) outside the toy DTD of Fig. 7: hiding the ``children``
wrapper elements leaves a *recursive* security view where ``//part``
corresponds to the regular document path ``(assembly/children)*/part``.
"""

from __future__ import annotations

from typing import Optional

from repro.dtd.dtd import DTD
from repro.dtd.generator import DocumentGenerator
from repro.dtd.parser import parse_dtd
from repro.core.engine import SecureQueryEngine
from repro.core.spec import AccessSpec

CATALOG_DTD_TEXT = """
<!ELEMENT catalog (assembly*)>
<!ELEMENT assembly (part, children)>
<!ELEMENT children (assembly*)>
<!ELEMENT part (#PCDATA)>
"""


def catalog_dtd() -> DTD:
    return parse_dtd(CATALOG_DTD_TEXT)


def flat_spec(dtd: Optional[DTD] = None) -> AccessSpec:
    """Hide the ``children`` wrapper elements; assemblies and parts
    stay visible, so users see assemblies nested directly under each
    other."""
    dtd = catalog_dtd() if dtd is None else dtd
    spec = AccessSpec(dtd, name="flat")
    spec.annotate("assembly", "children", "N")
    spec.annotate("children", "assembly", "Y")
    return spec


def catalog_document(seed: int = 0, max_depth: int = 9, max_branch: int = 2):
    """A random catalog; depth controls how deep assemblies nest."""
    generator = DocumentGenerator(
        catalog_dtd(), seed=seed, max_branch=max_branch, max_depth=max_depth
    )
    return generator.generate()


def catalog_engine() -> SecureQueryEngine:
    dtd = catalog_dtd()
    engine = SecureQueryEngine(dtd)
    engine.register_policy("flat", flat_spec(dtd))
    return engine
