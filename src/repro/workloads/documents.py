"""Datasets D1-D4 for the Table 1 reproduction.

The paper generates four Adex documents of 3.2, 16.7, 51.55 and 77.0
MB by varying IBM XML Generator's maximum branching factor.  The
reproduction generates four documents with the same geometric size
progression (ratios roughly 1 : 5 : 16 : 24), scaled down so the pure
Python evaluator finishes in laptop time.  Scale with the
``REPRO_BENCH_SCALE`` environment variable (a float multiplier,
default 1.0) when more fidelity is wanted.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

from repro.workloads.adex import adex_document

#: (buyers, ads) per dataset at scale 1.0.  Node counts come out near
#: 7k / 36k / 110k / 165k — the paper's 1 : 5 : 16 : 24 progression.
DATASET_SCALES: Dict[str, Tuple[int, int]] = {
    "D1": (60, 240),
    "D2": (300, 1200),
    "D3": (930, 3700),
    "D4": (1400, 5550),
}

_CACHE: Dict[Tuple[str, float], object] = {}


def bench_scale() -> float:
    """The dataset scale multiplier (``REPRO_BENCH_SCALE``)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def dataset(name: str, scale: float = None):
    """Generate (and cache per process) dataset ``name`` of D1-D4."""
    scale = bench_scale() if scale is None else scale
    key = (name, scale)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    buyers, ads = DATASET_SCALES[name]
    document = adex_document(
        seed=ord(name[-1]),
        buyers=max(1, int(buyers * scale)),
        ads=max(1, int(ads * scale)),
    )
    _CACHE[key] = document
    return document


def dataset_sizes(scale: float = None) -> Dict[str, int]:
    """Node counts of the four datasets (generates them)."""
    return {name: dataset(name, scale).size() for name in DATASET_SCALES}
