"""The running hospital example (Fig. 1 / Examples 1.1, 3.1-3.4).

A hospital document lists departments; each department has clinical
trials, patient information, and medical staff.  The nurse policy
(Fig. 4) grants access to patient and staff data of one ward while
hiding everything about clinical-trial participation and treatment
forms (except bills and medication).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.dtd.dtd import DTD
from repro.dtd.generator import DocumentGenerator
from repro.dtd.parser import parse_dtd
from repro.core.engine import SecureQueryEngine
from repro.core.spec import AccessSpec

#: The document DTD of Fig. 1, in the paper's normal form.
HOSPITAL_DTD_TEXT = """
<!ELEMENT hospital (dept*)>
<!ELEMENT dept (clinicalTrial, patientInfo, staffInfo)>
<!ELEMENT clinicalTrial (patientInfo)>
<!ELEMENT patientInfo (patient*)>
<!ELEMENT patient (name, wardNo, treatment)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT wardNo (#PCDATA)>
<!ELEMENT treatment (trial | regular)>
<!ELEMENT trial (bill)>
<!ELEMENT regular (bill, medication)>
<!ELEMENT bill (#PCDATA)>
<!ELEMENT medication (#PCDATA)>
<!ELEMENT staffInfo (staff*)>
<!ELEMENT staff (doctor | nurse)>
<!ELEMENT doctor (#PCDATA)>
<!ELEMENT nurse (#PCDATA)>
"""

#: Default pool of ward numbers used by the generator, so the
#: ``$wardNo`` qualifier has meaningful selectivity.
WARD_NUMBERS = ("1", "2", "3", "4")


def hospital_dtd() -> DTD:
    """The hospital document DTD of Fig. 1."""
    return parse_dtd(HOSPITAL_DTD_TEXT)


def nurse_spec(dtd: Optional[DTD] = None) -> AccessSpec:
    """The nurse access specification of Example 3.1 / Fig. 4.

    The specification is parameterized by ``$wardNo``; bind it before
    deriving a view (``spec.bind(wardNo="2")``) or pass the parameter
    to :meth:`SecureQueryEngine.register_policy`.
    """
    dtd = hospital_dtd() if dtd is None else dtd
    spec = AccessSpec(dtd, name="nurse")
    spec.annotate("hospital", "dept", "[*/patient/wardNo = $wardNo]")
    spec.annotate("dept", "clinicalTrial", "N")
    spec.annotate("clinicalTrial", "patientInfo", "Y")
    spec.annotate("treatment", "trial", "N")
    spec.annotate("treatment", "regular", "N")
    spec.annotate("trial", "bill", "Y")
    spec.annotate("regular", "bill", "Y")
    spec.annotate("regular", "medication", "Y")
    return spec


def doctor_spec(dtd: Optional[DTD] = None) -> AccessSpec:
    """A second policy for contrast: doctors see everything except
    staff records (so the multi-policy machinery has two user classes
    to serve)."""
    dtd = hospital_dtd() if dtd is None else dtd
    spec = AccessSpec(dtd, name="doctor")
    spec.annotate("dept", "staffInfo", "N")
    return spec


def hospital_document(
    seed: int = 0,
    max_branch: int = 4,
    wards: Sequence[str] = WARD_NUMBERS,
    value_pools: Optional[Dict[str, Sequence[str]]] = None,
):
    """Generate a conforming hospital document."""
    dtd = hospital_dtd()
    pools: Dict[str, Sequence[str]] = {"wardNo": list(wards)}
    if value_pools:
        pools.update(value_pools)
    generator = DocumentGenerator(
        dtd, seed=seed, max_branch=max_branch, value_pools=pools
    )
    return generator.generate()


def nurse_engine(ward: str = "2") -> SecureQueryEngine:
    """An engine with the nurse policy registered for one ward."""
    dtd = hospital_dtd()
    engine = SecureQueryEngine(dtd)
    engine.register_policy("nurse", nurse_spec(dtd), wardNo=ward)
    return engine
