"""The query workloads of the experimental study (Section 6) plus an
auxiliary suite over the hospital example.

The four Adex queries, as the paper states them:

* Q1 ``//buyer-info/contact-info`` — contact information of all buyers;
* Q2 ``//house/r-e.warranty | //apartment/r-e.warranty`` — warranties of
  houses and apartments (the apartment branch prunes: apartments have
  no warranty sub-element);
* Q3 ``//buyer-info[//company-id and //contact-info]`` — buyers with
  both a company id and contact info (folds to true by co-existence);
* Q4 — the exclusive-constraint query that the optimizer reduces to
  the empty query.  The paper prints the *input* as
  ``//house[//r-e.asking-price and //r-e.unit-type]`` and the
  *rewritten* form as
  ``real-estate[house/r-e.asking-price and apartment/r-e.unit-type]``;
  no single DTD makes both true of the same query, so we pose Q4 in
  the rewritten shape (over the view) — the behaviour the experiment
  measures (optimizer proves emptiness via the exclusive constraint,
  evaluation avoided) is exactly preserved.  See DESIGN.md.
"""

from __future__ import annotations

from typing import Dict

from repro.xpath.ast import Path
from repro.xpath.parser import parse_xpath

#: Section 6 queries over the Adex security view, keyed Q1-Q4.
ADEX_QUERY_TEXTS: Dict[str, str] = {
    "Q1": "//buyer-info/contact-info",
    "Q2": "//house/r-e.warranty | //apartment/r-e.warranty",
    "Q3": "//buyer-info[//company-id and //contact-info]",
    "Q4": "//real-estate[house/r-e.asking-price and apartment/r-e.unit-type]",
}

#: The paper's rewritten forms (asserted by the integration tests).
ADEX_EXPECTED_REWRITES: Dict[str, str] = {
    "Q1": "/adex/head/buyer-info/contact-info",
    "Q2": "/adex/body/ad-instance/real-estate/house/r-e.warranty",
    "Q3": "/adex/head/buyer-info[company-id and contact-info]",
    "Q4": (
        "/adex/body/ad-instance/real-estate"
        "[house/r-e.asking-price and apartment/r-e.unit-type]"
    ),
}

#: The paper's optimized forms ("-" marks no further improvement).
ADEX_EXPECTED_OPTIMIZED: Dict[str, str] = {
    "Q1": "-",
    "Q2": "-",
    "Q3": "/adex/head/buyer-info",
    "Q4": "0",
}


def adex_query(name: str) -> Path:
    """Parse one of Q1-Q4."""
    return parse_xpath(ADEX_QUERY_TEXTS[name])


ADEX_QUERIES: Dict[str, Path] = {
    name: parse_xpath(text) for name, text in ADEX_QUERY_TEXTS.items()
}

#: Queries over the nurse view of the hospital example, used by tests
#: and the auxiliary benchmarks.
HOSPITAL_QUERY_TEXTS: Dict[str, str] = {
    "patients": "//patient/name",
    "bills": "//patient//bill",
    "medicated": "//patient[treatment/dummy2]/name",
    "ward-names": "dept/patientInfo/patient/name",
    "staff": "//staffInfo/staff/*",
    "inference-p1": "//dept//patientInfo/patient/name",
    "inference-p2": "//dept/patientInfo/patient/name",
}

HOSPITAL_QUERIES: Dict[str, Path] = {
    name: parse_xpath(text) for name, text in HOSPITAL_QUERY_TEXTS.items()
}
