"""XML document model, parser, and serializer.

This subpackage is a self-contained, from-scratch substrate: an ordered
tree model with element and text nodes (the data model of the paper's
Section 2), a parser for the XML subset the library emits, and
serializers.  The package is named ``xmlmodel`` rather than ``xml`` to
avoid shadowing the standard library.
"""

from repro.xmlmodel.nodes import XMLElement, XMLText, new_document, subtree_copy
from repro.xmlmodel.parser import parse_document, parse_fragment
from repro.xmlmodel.serialize import serialize, pretty_print
from repro.xmlmodel.index import DocumentIndex, build_index
from repro.xmlmodel.store import NodeTable, build_node_table

__all__ = [
    "XMLElement",
    "XMLText",
    "new_document",
    "subtree_copy",
    "parse_document",
    "parse_fragment",
    "serialize",
    "pretty_print",
    "DocumentIndex",
    "build_index",
    "NodeTable",
    "build_node_table",
]
