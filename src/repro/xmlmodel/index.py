"""Document indexing for fast descendant-axis evaluation.

A classic XML-database structure: one preorder (Euler-tour) interval
per element plus per-label position lists.  ``descendants_with_label``
then answers "all ``l``-descendants of ``v``" with two binary searches
instead of a subtree scan — the access pattern that dominates ``//``
evaluation (and thus the naive baseline of Section 6).

The index is immutable with respect to the document: rebuild it after
structural updates (document mutation is out of the paper's scope; the
engine's ``invalidate`` hook covers the cached case).
"""

from __future__ import annotations

import bisect
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import metrics_enabled, observe, record


class DocumentIndex:
    """Preorder intervals + per-label position lists for one tree."""

    def __init__(self, root):
        self.root = root
        #: id(element) -> (preorder position, end of subtree interval)
        self.intervals: Dict[int, Tuple[int, int]] = {}
        #: label -> ascending preorder positions of elements
        self.positions_by_label: Dict[str, List[int]] = {}
        #: preorder position -> element
        self.element_at: Dict[int, object] = {}
        started = perf_counter() if metrics_enabled() else None
        self._build(root)
        if started is not None:
            record("document_index.builds")
            observe("document_index.build_seconds", perf_counter() - started)
            observe("document_index.elements", len(self.intervals))

    def _build(self, root) -> None:
        counter = 0
        # iterative preorder with post-visit hooks to close intervals
        stack = [(root, False)]
        open_stack: List[int] = []
        while stack:
            node, closing = stack.pop()
            if closing:
                start = open_stack.pop()
                self.intervals[id(node)] = (start, counter)
                continue
            start = counter
            counter += 1
            open_stack.append(start)
            self.element_at[start] = node
            self.positions_by_label.setdefault(node.label, []).append(start)
            stack.append((node, True))
            for child in reversed(node.children):
                if child.is_element:
                    stack.append((child, False))

    # -- queries -----------------------------------------------------------

    def size(self) -> int:
        return len(self.intervals)

    def nbytes(self) -> int:
        """Estimated resident bytes of the index's own structures
        (``sys.getsizeof`` for the containers plus per-entry interval
        tuples and per-label position lists; indexed element objects
        belong to the document and are not counted)."""
        import sys

        total = sys.getsizeof(self.intervals)
        total += sum(
            sys.getsizeof(interval) for interval in self.intervals.values()
        )
        total += sys.getsizeof(self.element_at)
        total += sys.getsizeof(self.positions_by_label)
        total += sum(
            sys.getsizeof(label) + sys.getsizeof(positions)
            + 28 * len(positions)  # the position ints themselves
            for label, positions in self.positions_by_label.items()
        )
        return total

    def position(self, element) -> Optional[int]:
        interval = self.intervals.get(id(element))
        return None if interval is None else interval[0]

    def covers(self, element) -> bool:
        """Is the element part of the indexed tree?"""
        return id(element) in self.intervals

    def is_descendant(self, ancestor, element) -> bool:
        """Proper-or-self descendant test in O(1)."""
        outer = self.intervals.get(id(ancestor))
        inner = self.intervals.get(id(element))
        if outer is None or inner is None:
            return False
        return outer[0] <= inner[0] and inner[1] <= outer[1]

    def descendants_with_label(self, element, label: str) -> List:
        """All *proper* descendants of ``element`` carrying ``label``,
        in document order.  O(log n + answer)."""
        interval = self.intervals.get(id(element))
        if interval is None:
            return []
        start, end = interval
        positions = self.positions_by_label.get(label, ())
        low = bisect.bisect_right(positions, start)  # exclude self
        high = bisect.bisect_left(positions, end)
        return [self.element_at[position] for position in positions[low:high]]

    def all_with_label(self, label: str) -> List:
        """Every element with ``label``, in document order."""
        return [
            self.element_at[position]
            for position in self.positions_by_label.get(label, ())
        ]

    def document_order_sort(self, elements: List) -> List:
        """Sort indexed elements into document order, degrading
        deterministically for entries the index does not cover.

        A non-indexed entry (text nodes are the common case — the
        index only covers elements) is *anchored* at its nearest
        indexed ancestor and placed directly after that ancestor's
        indexed occurrences; entries with no indexed ancestor at all
        sort to the end.  Ties (several entries sharing an anchor, or
        several orphans) keep their input order, so the result is a
        pure function of (index, input sequence) — never an arbitrary
        interleave."""
        decorated = []
        for sequence, element in enumerate(elements):
            interval = self.intervals.get(id(element))
            if interval is not None:
                decorated.append((interval[0], 0, sequence, element))
                continue
            anchor = self._nearest_indexed_ancestor(element)
            if anchor is None:
                decorated.append((len(self.element_at), 2, sequence, element))
            else:
                decorated.append((anchor, 1, sequence, element))
        decorated.sort(key=lambda entry: entry[:3])
        return [element for _, _, _, element in decorated]

    def _nearest_indexed_ancestor(self, element) -> Optional[int]:
        """Preorder position of the closest indexed proper ancestor
        (``None`` when the node's ancestor chain never meets the
        indexed tree)."""
        node = getattr(element, "parent", None)
        while node is not None:
            interval = self.intervals.get(id(node))
            if interval is not None:
                return interval[0]
            node = getattr(node, "parent", None)
        return None


def build_index(root) -> DocumentIndex:
    """Convenience constructor."""
    return DocumentIndex(root)
