"""Ordered XML tree model.

The model matches the paper's Section 2: a document is an ordered tree
whose internal nodes are *elements* labeled with an element type and
whose leaves may be *text nodes* carrying PCDATA.  Elements additionally
carry an attribute dictionary (the paper ignores attributes except for
the naive baseline of Section 6, which stores per-element accessibility
in an ``accessibility`` attribute).

Nodes know their parent, so upward navigation (needed by the
accessibility semantics of Section 3.2, which quantifies over ancestors)
is O(depth).
"""

from __future__ import annotations

from sys import intern
from typing import Dict, Iterator, List, Optional


class XMLText:
    """A text (PCDATA) leaf node."""

    __slots__ = ("value", "parent")

    def __init__(self, value: str, parent: "Optional[XMLElement]" = None):
        self.value = value
        self.parent = parent

    @property
    def is_element(self) -> bool:
        return False

    @property
    def is_text(self) -> bool:
        return True

    def string_value(self) -> str:
        return self.value

    def __repr__(self) -> str:
        shown = self.value if len(self.value) <= 24 else self.value[:21] + "..."
        return "XMLText(%r)" % shown


class XMLElement:
    """An element node with ordered children and attributes."""

    __slots__ = ("label", "children", "attributes", "parent")

    def __init__(
        self,
        label: str,
        children: Optional[List["XMLNode"]] = None,
        attributes: Optional[Dict[str, str]] = None,
        parent: "Optional[XMLElement]" = None,
    ):
        # labels are interned once at construction: every element of a
        # type shares one string object, so the label comparisons in
        # the evaluator/plan hot loops hit CPython's identity fast path
        self.label = intern(label)
        self.children: List[XMLNode] = []
        self.attributes: Dict[str, str] = dict(attributes) if attributes else {}
        self.parent = parent
        if children:
            for child in children:
                self.append(child)

    # -- construction -------------------------------------------------

    def append(self, node: "XMLNode") -> "XMLNode":
        """Append ``node`` as the last child and set its parent."""
        node.parent = self
        self.children.append(node)
        return node

    def extend(self, nodes) -> None:
        for node in nodes:
            self.append(node)

    def add_element(self, label: str, **attributes) -> "XMLElement":
        """Create, append, and return a new child element."""
        return self.append(XMLElement(label, attributes=attributes or None))

    def add_text(self, value: str) -> XMLText:
        """Create, append, and return a new text child."""
        return self.append(XMLText(value))

    # -- classification -----------------------------------------------

    @property
    def is_element(self) -> bool:
        return True

    @property
    def is_text(self) -> bool:
        return False

    # -- navigation ---------------------------------------------------

    def element_children(self) -> "List[XMLElement]":
        return [child for child in self.children if child.is_element]

    def text_children(self) -> List[XMLText]:
        return [child for child in self.children if child.is_text]

    def child_elements(self, label: str) -> "List[XMLElement]":
        return [
            child
            for child in self.children
            if child.is_element and child.label == label
        ]

    def first_child(self, label: str) -> "Optional[XMLElement]":
        for child in self.children:
            if child.is_element and child.label == label:
                return child
        return None

    def ancestors(self) -> "Iterator[XMLElement]":
        """Yield proper ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "XMLElement":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def iter(self) -> "Iterator[XMLNode]":
        """Yield self and all descendants in document order."""
        stack: List[XMLNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            if node.is_element:
                stack.extend(reversed(node.children))

    def iter_elements(self) -> "Iterator[XMLElement]":
        """Yield self and all descendant elements in document order."""
        for node in self.iter():
            if node.is_element:
                yield node

    def descendants_or_self(self) -> "Iterator[XMLElement]":
        return self.iter_elements()

    def find_all(self, label: str) -> "List[XMLElement]":
        """All descendant-or-self elements with the given label, in
        document order."""
        return [node for node in self.iter_elements() if node.label == label]

    # -- measurement ---------------------------------------------------

    def size(self) -> int:
        """Number of nodes (elements and text) in the subtree."""
        return sum(1 for _ in self.iter())

    def element_count(self) -> int:
        return sum(1 for _ in self.iter_elements())

    def height(self) -> int:
        """Height of the subtree counted in element levels; a leaf
        element has height 1."""
        best = 1
        stack = [(self, 1)]
        while stack:
            node, depth = stack.pop()
            if depth > best:
                best = depth
            for child in node.children:
                if child.is_element:
                    stack.append((child, depth + 1))
        return best

    def depth(self) -> int:
        """1-based depth of this element (the root has depth 1)."""
        return 1 + sum(1 for _ in self.ancestors())

    # -- values ---------------------------------------------------------

    def string_value(self) -> str:
        """Concatenation of all descendant text, in document order
        (the XPath string-value of an element)."""
        parts = []
        for node in self.iter():
            if node.is_text:
                parts.append(node.value)
        return "".join(parts)

    def get(self, attribute: str, default: Optional[str] = None) -> Optional[str]:
        return self.attributes.get(attribute, default)

    def set(self, attribute: str, value: str) -> None:
        self.attributes[attribute] = value

    # -- comparison -----------------------------------------------------

    def structurally_equal(self, other: "XMLNode") -> bool:
        """Deep structural equality: labels, attributes, text, order.

        Used heavily by tests to compare materialized views against
        rewritten-query results.
        """
        return _structurally_equal(self, other)

    def __repr__(self) -> str:
        return "XMLElement(%r, %d children)" % (self.label, len(self.children))


#: Union type alias for readability in signatures.
XMLNode = object  # XMLElement | XMLText; kept loose for 3.9 compatibility


def _structurally_equal(a, b) -> bool:
    if a.is_text or b.is_text:
        return a.is_text and b.is_text and a.value == b.value
    if a.label != b.label or a.attributes != b.attributes:
        return False
    if len(a.children) != len(b.children):
        return False
    return all(
        _structurally_equal(x, y) for x, y in zip(a.children, b.children)
    )


def new_document(root_label: str) -> XMLElement:
    """Create a fresh document consisting of a single root element."""
    return XMLElement(root_label)


def subtree_copy(node, parent: Optional[XMLElement] = None):
    """Deep-copy a node (element or text) and its subtree.

    The copy's parent is set to ``parent`` (or ``None``), making it a
    free-standing tree.  Used by the view-materialization semantics when
    accessible subtrees are copied from the document into the view.
    """
    if node.is_text:
        return XMLText(node.value, parent)
    copy = XMLElement(node.label, attributes=node.attributes or None, parent=parent)
    for child in node.children:
        copy.children.append(subtree_copy(child, copy))
    return copy


def document_order_index(root: XMLElement) -> Dict[int, int]:
    """Map ``id(node) -> position`` for every node under ``root`` in
    document order.  Useful for sorting node sets produced by XPath
    evaluation back into document order."""
    return {id(node): i for i, node in enumerate(root.iter())}
