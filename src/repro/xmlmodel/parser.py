"""From-scratch parser for the XML subset this library uses.

Supported: elements, attributes (single- or double-quoted), text
content with the five standard entity references plus decimal/hex
character references, comments, processing instructions (skipped), an
optional XML declaration, an optional DOCTYPE declaration (skipped; DTD
text is parsed separately by :mod:`repro.dtd.parser`), and CDATA
sections.  Namespaces are not interpreted (colons are allowed in
names).  Mixed content is preserved verbatim except that, as in the
paper's data model, purely-whitespace text between elements is dropped
unless ``keep_whitespace`` is set.

The parser is iterative (an explicit open-element stack), so document
depth is bounded by memory, not the interpreter recursion limit.  For
untrusted input, :func:`parse_document` accepts optional hard limits
(``max_bytes``, ``max_depth``, ``max_attributes``); exceeding one
raises :class:`repro.errors.XMLLimitError` (``E_PARSE_XML_LIMIT``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import XMLLimitError, XMLParseError
from repro.xmlmodel.nodes import XMLElement, XMLText

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}

_NAME_START = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:"
)
_NAME_CHARS = _NAME_START | set("0123456789.-")


class _Scanner:
    """Cursor over the input with line/column tracking for errors."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    def location(self) -> Tuple[int, int]:
        line = self.text.count("\n", 0, self.pos) + 1
        last_nl = self.text.rfind("\n", 0, self.pos)
        column = self.pos - last_nl
        return line, column

    def error(self, message: str) -> XMLParseError:
        line, column = self.location()
        return XMLParseError(message, line, column)

    def limit_error(self, message: str) -> XMLLimitError:
        line, column = self.location()
        return XMLLimitError(message, line, column)

    def eof(self) -> bool:
        return self.pos >= self.length

    def peek(self, n: int = 1) -> str:
        return self.text[self.pos : self.pos + n]

    def advance(self, n: int = 1) -> None:
        self.pos += n

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise self.error("expected %r" % literal)
        self.pos += len(literal)

    def read_name(self) -> str:
        start = self.pos
        if self.pos >= self.length or self.text[self.pos] not in _NAME_START:
            raise self.error("expected a name")
        self.pos += 1
        while self.pos < self.length and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        return self.text[start : self.pos]

    def read_until(self, literal: str) -> str:
        end = self.text.find(literal, self.pos)
        if end < 0:
            raise self.error("unterminated construct; expected %r" % literal)
        chunk = self.text[self.pos : end]
        self.pos = end + len(literal)
        return chunk


def _decode_entities(raw: str, scanner: _Scanner) -> str:
    if "&" not in raw:
        return raw
    out: List[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i)
        if end < 0:
            raise scanner.error("unterminated entity reference")
        name = raw[i + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise scanner.error("unknown entity reference &%s;" % name)
        i = end + 1
    return "".join(out)


def _skip_misc(scanner: _Scanner) -> None:
    """Skip whitespace, comments, PIs, XML decl, and DOCTYPE."""
    while True:
        scanner.skip_whitespace()
        if scanner.peek(4) == "<!--":
            scanner.advance(4)
            scanner.read_until("-->")
        elif scanner.peek(2) == "<?":
            scanner.advance(2)
            scanner.read_until("?>")
        elif scanner.peek(9).upper() == "<!DOCTYPE":
            _skip_doctype(scanner)
        else:
            return


def _skip_doctype(scanner: _Scanner) -> None:
    scanner.advance(9)
    depth = 0
    while not scanner.eof():
        ch = scanner.peek()
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == ">" and depth <= 0:
            scanner.advance()
            return
        scanner.advance()
    raise scanner.error("unterminated DOCTYPE")


def _parse_attributes(
    scanner: _Scanner, max_attributes: Optional[int] = None
) -> dict:
    attributes = {}
    while True:
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch in (">", "/") or ch == "":
            return attributes
        if (
            max_attributes is not None
            and len(attributes) >= max_attributes
        ):
            raise scanner.limit_error(
                "element has more than %d attributes" % max_attributes
            )
        name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error("attribute value must be quoted")
        scanner.advance()
        raw = scanner.read_until(quote)
        if name in attributes:
            raise scanner.error("duplicate attribute %r" % name)
        attributes[name] = _decode_entities(raw, scanner)


def _parse_open_tag(scanner: _Scanner, max_attributes: Optional[int]):
    """Parse ``<label attrs...`` through its closing ``>`` or ``/>``;
    returns ``(element, self_closed)``."""
    scanner.expect("<")
    label = scanner.read_name()
    attributes = _parse_attributes(scanner, max_attributes)
    element = XMLElement(label, attributes=attributes or None)
    scanner.skip_whitespace()
    if scanner.peek(2) == "/>":
        scanner.advance(2)
        return element, True
    scanner.expect(">")
    return element, False


def _parse_element(
    scanner: _Scanner,
    keep_whitespace: bool,
    max_depth: Optional[int] = None,
    max_attributes: Optional[int] = None,
) -> XMLElement:
    """Parse one element (and its whole subtree) iteratively: an
    explicit stack of open elements, so input depth can never overflow
    the interpreter recursion limit."""
    root, closed = _parse_open_tag(scanner, max_attributes)
    if closed:
        return root
    stack: List[XMLElement] = [root]
    buffer: List[str] = []  # pending text of stack[-1]

    def flush_text() -> None:
        if not buffer:
            return
        text = _decode_entities("".join(buffer), scanner)
        buffer.clear()
        if text.strip() or keep_whitespace:
            stack[-1].add_text(text)

    while stack:
        if scanner.eof():
            raise scanner.error(
                "unexpected end of input inside <%s>" % stack[-1].label
            )
        if scanner.text[scanner.pos] != "<":
            # a text run: everything up to the next markup start
            end = scanner.text.find("<", scanner.pos)
            if end < 0:
                buffer.append(scanner.text[scanner.pos :])
                scanner.pos = scanner.length
            else:
                buffer.append(scanner.text[scanner.pos : end])
                scanner.pos = end
            continue
        if scanner.peek(2) == "</":
            flush_text()
            scanner.advance(2)
            element = stack.pop()
            closing = scanner.read_name()
            if closing != element.label:
                raise scanner.error(
                    "mismatched closing tag </%s> for <%s>"
                    % (closing, element.label)
                )
            scanner.skip_whitespace()
            scanner.expect(">")
            continue
        if scanner.peek(4) == "<!--":
            scanner.advance(4)
            scanner.read_until("-->")
            continue
        if scanner.peek(9) == "<![CDATA[":
            scanner.advance(9)
            buffer.append(scanner.read_until("]]>").replace("&", "&amp;"))
            continue
        if scanner.peek(2) == "<?":
            scanner.advance(2)
            scanner.read_until("?>")
            continue
        flush_text()
        if max_depth is not None and len(stack) + 1 > max_depth:
            raise scanner.limit_error(
                "element nesting exceeds the depth limit (%d)" % max_depth
            )
        child, closed = _parse_open_tag(scanner, max_attributes)
        stack[-1].append(child)
        if not closed:
            stack.append(child)
    return root


def parse_document(
    text: str,
    keep_whitespace: bool = False,
    max_bytes: Optional[int] = None,
    max_depth: Optional[int] = None,
    max_attributes: Optional[int] = None,
) -> XMLElement:
    """Parse an XML document and return its root element.

    Raises :class:`repro.errors.XMLParseError` with line/column
    information on malformed input.

    The optional limits harden parsing of untrusted input: documents
    larger than ``max_bytes`` characters, nested deeper than
    ``max_depth`` elements (the root counts as depth 1), or carrying
    more than ``max_attributes`` attributes on one element raise
    :class:`repro.errors.XMLLimitError` (``E_PARSE_XML_LIMIT``).
    """
    for name, value in (
        ("max_bytes", max_bytes),
        ("max_depth", max_depth),
        ("max_attributes", max_attributes),
    ):
        if value is not None and (
            isinstance(value, bool) or not isinstance(value, int) or value < 1
        ):
            raise ValueError(
                "%s must be a positive integer (or None), got %r"
                % (name, value)
            )
    if max_bytes is not None and len(text) > max_bytes:
        raise XMLLimitError(
            "document is %d characters; the limit is %d"
            % (len(text), max_bytes)
        )
    scanner = _Scanner(text)
    _skip_misc(scanner)
    if scanner.eof() or scanner.peek() != "<":
        raise scanner.error("document has no root element")
    root = _parse_element(
        scanner,
        keep_whitespace,
        max_depth=max_depth,
        max_attributes=max_attributes,
    )
    _skip_misc(scanner)
    if not scanner.eof():
        raise scanner.error("content after the root element")
    return root


def parse_fragment(text: str, keep_whitespace: bool = False) -> List[XMLElement]:
    """Parse a sequence of sibling elements (no single-root requirement)."""
    wrapper = parse_document(
        "<fragment-wrapper>%s</fragment-wrapper>" % text, keep_whitespace
    )
    for child in wrapper.children:
        child.parent = None
    return list(wrapper.children)
