"""From-scratch parser for the XML subset this library uses.

Supported: elements, attributes (single- or double-quoted), text
content with the five standard entity references plus decimal/hex
character references, comments, processing instructions (skipped), an
optional XML declaration, an optional DOCTYPE declaration (skipped; DTD
text is parsed separately by :mod:`repro.dtd.parser`), and CDATA
sections.  Namespaces are not interpreted (colons are allowed in
names).  Mixed content is preserved verbatim except that, as in the
paper's data model, purely-whitespace text between elements is dropped
unless ``keep_whitespace`` is set.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import XMLParseError
from repro.xmlmodel.nodes import XMLElement, XMLText

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}

_NAME_START = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:"
)
_NAME_CHARS = _NAME_START | set("0123456789.-")


class _Scanner:
    """Cursor over the input with line/column tracking for errors."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    def location(self) -> Tuple[int, int]:
        line = self.text.count("\n", 0, self.pos) + 1
        last_nl = self.text.rfind("\n", 0, self.pos)
        column = self.pos - last_nl
        return line, column

    def error(self, message: str) -> XMLParseError:
        line, column = self.location()
        return XMLParseError(message, line, column)

    def eof(self) -> bool:
        return self.pos >= self.length

    def peek(self, n: int = 1) -> str:
        return self.text[self.pos : self.pos + n]

    def advance(self, n: int = 1) -> None:
        self.pos += n

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise self.error("expected %r" % literal)
        self.pos += len(literal)

    def read_name(self) -> str:
        start = self.pos
        if self.pos >= self.length or self.text[self.pos] not in _NAME_START:
            raise self.error("expected a name")
        self.pos += 1
        while self.pos < self.length and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        return self.text[start : self.pos]

    def read_until(self, literal: str) -> str:
        end = self.text.find(literal, self.pos)
        if end < 0:
            raise self.error("unterminated construct; expected %r" % literal)
        chunk = self.text[self.pos : end]
        self.pos = end + len(literal)
        return chunk


def _decode_entities(raw: str, scanner: _Scanner) -> str:
    if "&" not in raw:
        return raw
    out: List[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i)
        if end < 0:
            raise scanner.error("unterminated entity reference")
        name = raw[i + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise scanner.error("unknown entity reference &%s;" % name)
        i = end + 1
    return "".join(out)


def _skip_misc(scanner: _Scanner) -> None:
    """Skip whitespace, comments, PIs, XML decl, and DOCTYPE."""
    while True:
        scanner.skip_whitespace()
        if scanner.peek(4) == "<!--":
            scanner.advance(4)
            scanner.read_until("-->")
        elif scanner.peek(2) == "<?":
            scanner.advance(2)
            scanner.read_until("?>")
        elif scanner.peek(9).upper() == "<!DOCTYPE":
            _skip_doctype(scanner)
        else:
            return


def _skip_doctype(scanner: _Scanner) -> None:
    scanner.advance(9)
    depth = 0
    while not scanner.eof():
        ch = scanner.peek()
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == ">" and depth <= 0:
            scanner.advance()
            return
        scanner.advance()
    raise scanner.error("unterminated DOCTYPE")


def _parse_attributes(scanner: _Scanner) -> dict:
    attributes = {}
    while True:
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch in (">", "/") or ch == "":
            return attributes
        name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error("attribute value must be quoted")
        scanner.advance()
        raw = scanner.read_until(quote)
        if name in attributes:
            raise scanner.error("duplicate attribute %r" % name)
        attributes[name] = _decode_entities(raw, scanner)


def _parse_element(scanner: _Scanner, keep_whitespace: bool) -> XMLElement:
    scanner.expect("<")
    label = scanner.read_name()
    attributes = _parse_attributes(scanner)
    element = XMLElement(label, attributes=attributes or None)
    scanner.skip_whitespace()
    if scanner.peek(2) == "/>":
        scanner.advance(2)
        return element
    scanner.expect(">")
    _parse_content(scanner, element, keep_whitespace)
    closing = scanner.read_name()
    if closing != label:
        raise scanner.error(
            "mismatched closing tag </%s> for <%s>" % (closing, label)
        )
    scanner.skip_whitespace()
    scanner.expect(">")
    return element


def _parse_content(
    scanner: _Scanner, element: XMLElement, keep_whitespace: bool
) -> None:
    """Parse children of ``element`` up to (and consuming) ``</``."""
    buffer: List[str] = []

    def flush_text() -> None:
        if not buffer:
            return
        text = _decode_entities("".join(buffer), scanner)
        buffer.clear()
        if text.strip() or keep_whitespace:
            element.add_text(text)

    while True:
        if scanner.eof():
            raise scanner.error("unexpected end of input inside <%s>" % element.label)
        ch = scanner.peek()
        if ch == "<":
            if scanner.peek(2) == "</":
                flush_text()
                scanner.advance(2)
                return
            if scanner.peek(4) == "<!--":
                scanner.advance(4)
                scanner.read_until("-->")
                continue
            if scanner.peek(9) == "<![CDATA[":
                scanner.advance(9)
                buffer.append(scanner.read_until("]]>").replace("&", "&amp;"))
                continue
            if scanner.peek(2) == "<?":
                scanner.advance(2)
                scanner.read_until("?>")
                continue
            flush_text()
            element.append(_parse_element(scanner, keep_whitespace))
        else:
            buffer.append(ch)
            scanner.advance()


def parse_document(text: str, keep_whitespace: bool = False) -> XMLElement:
    """Parse an XML document and return its root element.

    Raises :class:`repro.errors.XMLParseError` with line/column
    information on malformed input.
    """
    scanner = _Scanner(text)
    _skip_misc(scanner)
    if scanner.eof() or scanner.peek() != "<":
        raise scanner.error("document has no root element")
    root = _parse_element(scanner, keep_whitespace)
    _skip_misc(scanner)
    if not scanner.eof():
        raise scanner.error("content after the root element")
    return root


def parse_fragment(text: str, keep_whitespace: bool = False) -> List[XMLElement]:
    """Parse a sequence of sibling elements (no single-root requirement)."""
    wrapper = parse_document(
        "<fragment-wrapper>%s</fragment-wrapper>" % text, keep_whitespace
    )
    for child in wrapper.children:
        child.parent = None
    return list(wrapper.children)
