"""Serialization of XML trees back to text."""

from __future__ import annotations

from typing import List

_ESCAPES_TEXT = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]
_ESCAPES_ATTR = _ESCAPES_TEXT + [('"', "&quot;")]


def escape_text(value: str) -> str:
    for raw, escaped in _ESCAPES_TEXT:
        value = value.replace(raw, escaped)
    return value


def escape_attribute(value: str) -> str:
    for raw, escaped in _ESCAPES_ATTR:
        value = value.replace(raw, escaped)
    return value


def _open_tag(element) -> str:
    if not element.attributes:
        return "<%s>" % element.label
    attrs = " ".join(
        '%s="%s"' % (name, escape_attribute(value))
        for name, value in sorted(element.attributes.items())
    )
    return "<%s %s>" % (element.label, attrs)


def serialize(node) -> str:
    """Serialize a node (element or text) compactly, with no added
    whitespace, so that ``parse_document(serialize(t))`` round-trips."""
    parts: List[str] = []
    _serialize_into(node, parts)
    return "".join(parts)


def _serialize_into(node, parts: List[str]) -> None:
    # iterative: literal closing tags interleave with nodes on the
    # stack, so arbitrarily deep trees serialize without recursion
    stack: List = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            parts.append(item)
            continue
        if item.is_text:
            parts.append(escape_text(item.value))
            continue
        if not item.children:
            if item.attributes:
                parts.append(_open_tag(item)[:-1] + "/>")
            else:
                parts.append("<%s/>" % item.label)
            continue
        parts.append(_open_tag(item))
        stack.append("</%s>" % item.label)
        for child in reversed(item.children):
            stack.append(child)


def pretty_print(node, indent: str = "  ") -> str:
    """Human-readable serialization with one element per line.

    Elements whose only children are text nodes are kept on one line.
    """
    parts: List[str] = []
    _pretty_into(node, parts, 0, indent)
    return "\n".join(parts)


def _pretty_into(node, parts: List[str], level: int, indent: str) -> None:
    # iterative twin of _serialize_into, carrying the indent level
    stack: List = [(node, level)]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            parts.append(item)
            continue
        current, depth = item
        pad = indent * depth
        if current.is_text:
            parts.append(pad + escape_text(current.value))
            continue
        if not current.children:
            if current.attributes:
                parts.append(pad + _open_tag(current)[:-1] + "/>")
            else:
                parts.append(pad + "<%s/>" % current.label)
            continue
        if all(child.is_text for child in current.children):
            text = "".join(
                escape_text(child.value) for child in current.children
            )
            parts.append(
                "%s%s%s</%s>" % (pad, _open_tag(current), text, current.label)
            )
            continue
        parts.append(pad + _open_tag(current))
        stack.append("%s</%s>" % (pad, current.label))
        for child in reversed(current.children):
            stack.append((child, depth + 1))
