"""Serialization of XML trees back to text."""

from __future__ import annotations

from typing import List

_ESCAPES_TEXT = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]
_ESCAPES_ATTR = _ESCAPES_TEXT + [('"', "&quot;")]


def escape_text(value: str) -> str:
    for raw, escaped in _ESCAPES_TEXT:
        value = value.replace(raw, escaped)
    return value


def escape_attribute(value: str) -> str:
    for raw, escaped in _ESCAPES_ATTR:
        value = value.replace(raw, escaped)
    return value


def _open_tag(element) -> str:
    if not element.attributes:
        return "<%s>" % element.label
    attrs = " ".join(
        '%s="%s"' % (name, escape_attribute(value))
        for name, value in sorted(element.attributes.items())
    )
    return "<%s %s>" % (element.label, attrs)


def serialize(node) -> str:
    """Serialize a node (element or text) compactly, with no added
    whitespace, so that ``parse_document(serialize(t))`` round-trips."""
    parts: List[str] = []
    _serialize_into(node, parts)
    return "".join(parts)


def _serialize_into(node, parts: List[str]) -> None:
    if node.is_text:
        parts.append(escape_text(node.value))
        return
    if not node.children:
        if node.attributes:
            parts.append(_open_tag(node)[:-1] + "/>")
        else:
            parts.append("<%s/>" % node.label)
        return
    parts.append(_open_tag(node))
    for child in node.children:
        _serialize_into(child, parts)
    parts.append("</%s>" % node.label)


def pretty_print(node, indent: str = "  ") -> str:
    """Human-readable serialization with one element per line.

    Elements whose only children are text nodes are kept on one line.
    """
    parts: List[str] = []
    _pretty_into(node, parts, 0, indent)
    return "\n".join(parts)


def _pretty_into(node, parts: List[str], level: int, indent: str) -> None:
    pad = indent * level
    if node.is_text:
        parts.append(pad + escape_text(node.value))
        return
    if not node.children:
        if node.attributes:
            parts.append(pad + _open_tag(node)[:-1] + "/>")
        else:
            parts.append(pad + "<%s/>" % node.label)
        return
    if all(child.is_text for child in node.children):
        text = "".join(escape_text(child.value) for child in node.children)
        parts.append("%s%s%s</%s>" % (pad, _open_tag(node), text, node.label))
        return
    parts.append(pad + _open_tag(node))
    for child in node.children:
        _pretty_into(child, parts, level + 1, indent)
    parts.append("%s</%s>" % (pad, node.label))
