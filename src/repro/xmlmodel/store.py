"""Columnar document store: the :class:`NodeTable`.

The object tree of :mod:`repro.xmlmodel.nodes` is the reference data
model, but pointer-chasing over Python objects is the wrong shape for
the serving hot path: every axis step touches one node at a time and
pays attribute lookups, method dispatch, and identity bookkeeping per
visit.  ``NodeTable`` flattens one document into parallel arrays built
in a single preorder pass — the classic pre/post interval encoding
that makes structural joins possible:

* rows are numbered in document order (preorder); *every* node gets a
  row, elements and text leaves alike, so a row id doubles as a
  document-order sort key;
* ``end[r]`` closes the subtree interval: the descendants of row ``r``
  are exactly the rows in ``(r, end[r])``, and descendant-axis steps
  become interval joins instead of subtree walks;
* ``parent[r]`` / ``depth[r]`` give upward navigation without touching
  node objects;
* ``label_ids[r]`` holds an interned integer label (text rows carry
  the reserved ``#text`` label), so label predicates are integer
  compares;
* ``postings[label_id]`` is the ascending row list of one label — the
  partitioned posting lists that descendant kernels slice with two
  binary searches per context interval;
* ``first_child[r]`` / ``next_sibling[r]`` encode the child axis as a
  linked scan over rows (``-1`` terminates).

The table is immutable with respect to the document, exactly like
:class:`~repro.xmlmodel.index.DocumentIndex`: rebuild after structural
updates (the engine caches both per document and drops both in
``invalidate``).  ``nodes[r]`` maps a row back to the original node
object, so columnar results are the *same* objects the interpreter
returns.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import metrics_enabled, observe, record

#: Reserved label for text rows; "#" cannot start an XML name, so the
#: label can never collide with an element type.
TEXT_LABEL = "#text"


class NodeTable:
    """Parallel-array (columnar) encoding of one document tree."""

    __slots__ = (
        "root",
        "size",
        "end",
        "parent",
        "depth",
        "label_ids",
        "first_child",
        "next_sibling",
        "labels",
        "label_index",
        "postings",
        "nodes",
        "text_label_id",
        "_row_of",
    )

    def __init__(self, root):
        self.root = root
        self.labels: List[str] = []
        self.label_index: Dict[str, int] = {}
        self.text_label_id = self._intern(TEXT_LABEL)
        self.end = array("q")
        self.parent = array("q")
        self.depth = array("q")
        self.label_ids = array("q")
        self.first_child = array("q")
        self.next_sibling = array("q")
        self.postings: List[array] = [array("q")]
        self.nodes: List[object] = []
        self._row_of: Dict[int, int] = {}
        started = perf_counter() if metrics_enabled() else None
        self._build(root)
        self.size = len(self.nodes)
        if started is not None:
            record("node_table.builds")
            observe("node_table.build_seconds", perf_counter() - started)
            observe("node_table.rows", self.size)

    # -- construction --------------------------------------------------

    def _intern(self, label: str) -> int:
        label_id = self.label_index.get(label)
        if label_id is None:
            label_id = len(self.labels)
            self.labels.append(label)
            self.label_index[label] = label_id
        return label_id

    def _build(self, root) -> None:
        end = self.end
        parent = self.parent
        depth = self.depth
        label_ids = self.label_ids
        first_child = self.first_child
        next_sibling = self.next_sibling
        postings = self.postings
        nodes = self.nodes
        row_of = self._row_of
        text_label_id = self.text_label_id

        # iterative preorder: (node, parent_row, depth); a second stack
        # of open rows closes subtree intervals on the way back up
        stack: List[Tuple[object, int, int]] = [(root, -1, 0)]
        last_child: Dict[int, int] = {}
        while stack:
            node, parent_row, node_depth = stack.pop()
            if node is None:  # close marker: parent_row is the row
                end[parent_row] = len(nodes)
                continue
            row = len(nodes)
            nodes.append(node)
            row_of[id(node)] = row
            parent.append(parent_row)
            depth.append(node_depth)
            first_child.append(-1)
            next_sibling.append(-1)
            end.append(row + 1)  # leaves close immediately
            if parent_row >= 0:
                previous = last_child.get(parent_row, -1)
                if previous < 0:
                    first_child[parent_row] = row
                else:
                    next_sibling[previous] = row
                last_child[parent_row] = row
            if node.is_element:
                label_id = self._intern(node.label)
                label_ids.append(label_id)
                while len(postings) <= label_id:
                    postings.append(array("q"))
                postings[label_id].append(row)
                children = node.children
                if children:
                    stack.append((None, row, 0))  # close marker
                    for child in reversed(children):
                        stack.append((child, row, node_depth + 1))
            else:
                label_ids.append(text_label_id)
                postings[text_label_id].append(row)

    # -- row <-> node mapping ------------------------------------------

    def covers(self, node) -> bool:
        """Is the node part of the encoded tree?"""
        return id(node) in self._row_of

    def row(self, node) -> Optional[int]:
        """The document-order row of a node (``None`` if foreign)."""
        return self._row_of.get(id(node))

    def node_at(self, row: int):
        return self.nodes[row]

    # -- structure queries ---------------------------------------------

    def element_count(self) -> int:
        return self.size - len(self.postings[self.text_label_id])

    def is_element_row(self, row: int) -> bool:
        return self.label_ids[row] != self.text_label_id

    def interval(self, row: int) -> Tuple[int, int]:
        """The half-open subtree interval ``[row, end)`` of a row."""
        return row, self.end[row]

    def label_id(self, label: str) -> Optional[int]:
        """The interned id of a label (``None`` if the label does not
        occur in the document)."""
        return self.label_index.get(label)

    def posting(self, label: str):
        """Ascending rows carrying ``label`` (empty for unknown)."""
        label_id = self.label_index.get(label)
        return self.postings[label_id] if label_id is not None else ()

    def string_value(self, row: int) -> str:
        """The XPath string-value of a row: its own text for text rows,
        the concatenated descendant text in document order otherwise.
        Answered from the ``#text`` posting list with two binary
        searches instead of a subtree walk."""
        if self.label_ids[row] == self.text_label_id:
            return self.nodes[row].value
        texts = self.postings[self.text_label_id]
        low = bisect_left(texts, row)
        high = bisect_left(texts, self.end[row])
        nodes = self.nodes
        return "".join(nodes[texts[i]].value for i in range(low, high))

    def descendant_rows_with_label(self, row: int, label: str) -> List[int]:
        """Rows of *proper* descendants of ``row`` carrying ``label``,
        ascending.  O(log n + answer)."""
        label_id = self.label_index.get(label)
        if label_id is None:
            return []
        posting = self.postings[label_id]
        low = bisect_right(posting, row)
        high = bisect_left(posting, self.end[row])
        return list(posting[low:high])

    def nbytes(self) -> int:
        """Estimated resident bytes of the table's own structures:
        exact for the fixed-width columns and postings
        (``itemsize * len``), container-overhead estimates
        (``sys.getsizeof``) for the label list, the row map, and the
        node back-pointer list.  The node *objects* belong to the
        document, not the table, and are not counted."""
        import sys

        columns = (
            self.end,
            self.parent,
            self.depth,
            self.label_ids,
            self.first_child,
            self.next_sibling,
        )
        total = sum(column.itemsize * len(column) for column in columns)
        total += sum(
            posting.itemsize * len(posting) for posting in self.postings
        )
        total += sys.getsizeof(self.nodes)
        total += sys.getsizeof(self._row_of)
        total += sys.getsizeof(self.labels)
        total += sum(sys.getsizeof(label) for label in self.labels)
        total += sys.getsizeof(self.label_index)
        return total

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return "NodeTable(%d rows, %d labels)" % (
            self.size,
            len(self.labels),
        )


def build_node_table(root) -> NodeTable:
    """Convenience constructor."""
    return NodeTable(root)
