"""XPath substrate: the paper's fragment ``C`` of XPath.

    p ::= epsilon | l | * | p/p | //p | p U p | p[q]
    q ::= p | p = c | q and q | q or q | not q

plus a handful of pragmatic extensions used by the library itself:
``text()`` steps (needed to materialize ``str`` productions),
attribute tests ``@a`` / ``@a = c`` in qualifiers (needed by the naive
baseline of Section 6), ``$param`` constants (the paper's ``$wardNo``),
the empty query ``0``, and absolute paths (leading ``/`` or ``//``).
"""

from repro.xpath.ast import (
    Absolute,
    Descendant,
    Empty,
    EpsilonPath,
    Label,
    Param,
    Path,
    QAnd,
    QAttr,
    QAttrEquals,
    QBool,
    QEquals,
    QNot,
    QOr,
    QPath,
    Qualified,
    Qualifier,
    Slash,
    TextStep,
    Union,
    Wildcard,
    descendant,
    qand,
    qnot,
    qor,
    qualified,
    slash,
    union,
)
from repro.xpath.fingerprint import (
    Fingerprint,
    fingerprint_shape,
    query_fingerprint,
)
from repro.xpath.parser import parse_xpath, parse_qualifier
from repro.xpath.evaluator import XPathEvaluator, evaluate, evaluate_qualifier
from repro.xpath.plan import CompiledPlan, PlanRuntime, compile_path
from repro.xpath.subqueries import ascending_subqueries

__all__ = [
    "Path",
    "Empty",
    "EpsilonPath",
    "Label",
    "Wildcard",
    "TextStep",
    "Slash",
    "Descendant",
    "Union",
    "Qualified",
    "Absolute",
    "Qualifier",
    "QPath",
    "QEquals",
    "QAttr",
    "QAttrEquals",
    "QAnd",
    "QOr",
    "QNot",
    "QBool",
    "Param",
    "slash",
    "descendant",
    "union",
    "qualified",
    "qand",
    "qor",
    "qnot",
    "parse_xpath",
    "parse_qualifier",
    "XPathEvaluator",
    "evaluate",
    "evaluate_qualifier",
    "CompiledPlan",
    "PlanRuntime",
    "compile_path",
    "ascending_subqueries",
    "Fingerprint",
    "fingerprint_shape",
    "query_fingerprint",
]
