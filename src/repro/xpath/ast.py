"""Abstract syntax trees for the XPath fragment ``C``.

All nodes are immutable and use *structural* equality/hashing, which
lets the dynamic-programming algorithms (Figures 6 and 10 of the
paper) memoize on ``(sub-query, DTD node)`` pairs and lets the smart
constructors deduplicate union branches.

Smart constructors (:func:`slash`, :func:`union`, :func:`descendant`,
:func:`qualified`, :func:`qand`, :func:`qor`, :func:`qnot`) implement
the paper's algebra of the empty query — ``0 U p = p`` and
``p/0/p' = 0`` — plus boolean constant folding, so rewritten queries
come out already simplified of trivial redundancy.
"""

from __future__ import annotations

from sys import intern as _intern
from typing import Iterator, List, Tuple


class Param:
    """A named constant parameter, e.g. ``$wardNo`` (Example 3.1).

    Parameters are placeholders for constants; they must be substituted
    (via :meth:`Path.substitute` /
    :meth:`repro.core.spec.AccessSpec.bind`) before evaluation.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other):
        return isinstance(other, Param) and self.name == other.name

    def __hash__(self):
        return hash(("Param", self.name))

    def __repr__(self):
        return "Param(%r)" % self.name

    def __str__(self):
        return "$" + self.name


class _Node:
    """Shared machinery for paths and qualifiers."""

    __slots__ = ("_hash",)

    def _key(self) -> tuple:
        raise NotImplementedError

    def children(self) -> tuple:
        """Immediate sub-queries (paths and qualifiers)."""
        return ()

    def __eq__(self, other):
        if self is other:
            return True
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self):
        cached = getattr(self, "_hash", None)
        if cached is None:
            cached = hash((type(self).__name__, self._key()))
            object.__setattr__(self, "_hash", cached)
        return cached

    def size(self) -> int:
        """|p|: the number of AST nodes."""
        return 1 + sum(child.size() for child in self.children())

    def iter_nodes(self) -> Iterator["_Node"]:
        """Postorder traversal of the parse tree."""
        for child in self.children():
            for node in child.iter_nodes():
                yield node
        yield self

    def __repr__(self):
        return "%s<%s>" % (type(self).__name__, self)


class Path(_Node):
    """Base class of path expressions."""

    __slots__ = ()

    @property
    def is_empty(self) -> bool:
        return isinstance(self, Empty)

    def substitute(self, bindings: dict) -> "Path":
        """Replace :class:`Param` constants using ``bindings``
        (name -> string).  Raises ``KeyError`` on unbound parameters
        encountered; parameters simply absent from the query are
        ignored."""
        return _substitute_path(self, bindings)

    def parameters(self) -> set:
        """Names of all parameters occurring in the expression."""
        found = set()
        for node in self.iter_nodes():
            if isinstance(node, QEquals) and isinstance(node.value, Param):
                found.add(node.value.name)
            if isinstance(node, QAttrEquals) and isinstance(node.value, Param):
                found.add(node.value.name)
        return found


class Qualifier(_Node):
    """Base class of qualifier expressions."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Path constructors
# ---------------------------------------------------------------------------


class Empty(Path):
    """The special empty query ``0`` (written ``∅`` in the paper)."""

    __slots__ = ()

    def _key(self):
        return ()

    def __str__(self):
        return "0"


class EpsilonPath(Path):
    """The empty path ``epsilon`` (XPath ``.``): selects the context node."""

    __slots__ = ()

    def _key(self):
        return ()

    def __str__(self):
        return "."


class Label(Path):
    """A label step ``l``: selects children with element type ``l``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        # interned to match XMLElement labels (also interned), so the
        # evaluator's per-child label compare is an identity check
        self.name = _intern(name)

    def _key(self):
        return (self.name,)

    def __str__(self):
        return self.name


class Wildcard(Path):
    """The wildcard step ``*``: selects all element children."""

    __slots__ = ()

    def _key(self):
        return ()

    def __str__(self):
        return "*"


class Parent(Path):
    """``..`` — the parent step (library extension; the paper lists
    upward axes as future work).  Supported by the evaluator, the
    optimizer (conservatively), and the naive baseline; queries over
    security views cannot use it (Algorithm rewrite has no sound
    translation for upward navigation through sigma annotations and
    raises a :class:`~repro.errors.RewriteError`)."""

    __slots__ = ()

    def _key(self):
        return ()

    def __str__(self):
        return ".."


class TextStep(Path):
    """``text()``: selects text-node children (library extension used to
    materialize ``str`` productions)."""

    __slots__ = ()

    def _key(self):
        return ()

    def __str__(self):
        return "text()"


class Slash(Path):
    """Concatenation ``p1/p2`` (child composition)."""

    __slots__ = ("left", "right")

    def __init__(self, left: Path, right: Path):
        self.left = left
        self.right = right

    def _key(self):
        return (self.left, self.right)

    def children(self):
        return (self.left, self.right)

    def __str__(self):
        left = _wrap_for_slash(self.left)
        if isinstance(self.right, Descendant):
            return "%s//%s" % (left, _wrap_for_slash(self.right.inner))
        return "%s/%s" % (left, _wrap_for_slash(self.right))


class Descendant(Path):
    """``//p``: evaluates ``p`` at every descendant-or-self element."""

    __slots__ = ("inner",)

    def __init__(self, inner: Path):
        self.inner = inner

    def _key(self):
        return (self.inner,)

    def children(self):
        return (self.inner,)

    def __str__(self):
        # standalone serialization uses the explicit-context form so a
        # reparse stays relative (a bare leading '//' would anchor at
        # the document node); inside a Slash the parent prints 'a//b'
        return ".//%s" % _wrap_for_slash(self.inner)


class Union(Path):
    """N-ary union ``p1 U p2 U ...`` (at least two branches; use
    :func:`union` to build one, which normalizes away trivial cases)."""

    __slots__ = ("branches",)

    def __init__(self, branches):
        self.branches = tuple(branches)
        if len(self.branches) < 2:
            from repro.errors import XPathError

            # a library error, not ValueError: Union construction sits
            # on the query path (parse and rewrite both build unions),
            # so failures must stay catchable as ReproError
            raise XPathError("Union requires >= 2 branches; use union()")

    def _key(self):
        return self.branches

    def children(self):
        return self.branches

    def __str__(self):
        return "(%s)" % " | ".join(str(branch) for branch in self.branches)


class Qualified(Path):
    """``p[q]``: the nodes selected by ``p`` at which ``q`` holds."""

    __slots__ = ("path", "qualifier")

    def __init__(self, path: Path, qualifier: Qualifier):
        self.path = path
        self.qualifier = qualifier

    def _key(self):
        return (self.path, self.qualifier)

    def children(self):
        return (self.path, self.qualifier)

    def __str__(self):
        return "%s[%s]" % (_wrap_for_slash(self.path), self.qualifier)


class Absolute(Path):
    """A path anchored at the (virtual) document node above the root
    element, produced by a leading ``/`` or ``//``."""

    __slots__ = ("inner",)

    def __init__(self, inner: Path):
        self.inner = inner

    def _key(self):
        return (self.inner,)

    def children(self):
        return (self.inner,)

    def __str__(self):
        if isinstance(_leftmost_step(self.inner), Descendant):
            # the leading '//' already implies the document anchor
            return _absolute_inner_str(self.inner)
        return "/%s" % self.inner


# ---------------------------------------------------------------------------
# Qualifier constructors
# ---------------------------------------------------------------------------


class QBool(Qualifier):
    """A constant qualifier (result of optimization)."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = value

    def _key(self):
        return (self.value,)

    def __str__(self):
        return "true()" if self.value else "false()"


class QPath(Qualifier):
    """Existence test ``[p]``: true iff ``p`` selects some node."""

    __slots__ = ("path",)

    def __init__(self, path: Path):
        self.path = path

    def _key(self):
        return (self.path,)

    def children(self):
        return (self.path,)

    def __str__(self):
        return str(self.path)


class QEquals(Qualifier):
    """Equality test ``[p = c]``: true iff ``p`` selects a node whose
    string value equals the constant ``c`` (or parameter)."""

    __slots__ = ("path", "value")

    def __init__(self, path: Path, value):
        self.path = path
        self.value = value

    def _key(self):
        return (self.path, self.value)

    def children(self):
        return (self.path,)

    def __str__(self):
        if isinstance(self.value, Param):
            return "%s = %s" % (self.path, self.value)
        return '%s = "%s"' % (self.path, self.value)


class QAttr(Qualifier):
    """Attribute existence ``[@a]`` or ``[p/@a]`` (library extension:
    the naive baseline needs ``[@accessibility = "1"]``, and attribute
    tests compose with relative paths)."""

    __slots__ = ("name", "path")

    def __init__(self, name: str, path: Path = None):
        self.name = name
        self.path = EPSILON if path is None else path

    def _key(self):
        return (self.name, self.path)

    def children(self):
        return (self.path,)

    def __str__(self):
        if isinstance(self.path, EpsilonPath):
            return "@" + self.name
        return "%s/@%s" % (self.path, self.name)


class QAttrEquals(Qualifier):
    """Attribute equality ``[@a = c]`` / ``[p/@a = c]``."""

    __slots__ = ("name", "value", "path")

    def __init__(self, name: str, value, path: Path = None):
        self.name = name
        self.value = value
        self.path = EPSILON if path is None else path

    def _key(self):
        return (self.name, self.value, self.path)

    def children(self):
        return (self.path,)

    def __str__(self):
        prefix = (
            "@" + self.name
            if isinstance(self.path, EpsilonPath)
            else "%s/@%s" % (self.path, self.name)
        )
        if isinstance(self.value, Param):
            return "%s = %s" % (prefix, self.value)
        return '%s = "%s"' % (prefix, self.value)


class QAnd(Qualifier):
    __slots__ = ("left", "right")

    def __init__(self, left: Qualifier, right: Qualifier):
        self.left = left
        self.right = right

    def _key(self):
        return (self.left, self.right)

    def children(self):
        return (self.left, self.right)

    def __str__(self):
        return "%s and %s" % (
            _wrap_for_bool(self.left),
            _wrap_for_bool(self.right),
        )


class QOr(Qualifier):
    __slots__ = ("left", "right")

    def __init__(self, left: Qualifier, right: Qualifier):
        self.left = left
        self.right = right

    def _key(self):
        return (self.left, self.right)

    def children(self):
        return (self.left, self.right)

    def __str__(self):
        return "%s or %s" % (
            _wrap_for_bool(self.left),
            _wrap_for_bool(self.right),
        )


class QNot(Qualifier):
    __slots__ = ("inner",)

    def __init__(self, inner: Qualifier):
        self.inner = inner

    def _key(self):
        return (self.inner,)

    def children(self):
        return (self.inner,)

    def __str__(self):
        return "not(%s)" % self.inner


# ---------------------------------------------------------------------------
# Shared singletons
# ---------------------------------------------------------------------------

EMPTY = Empty()
EPSILON = EpsilonPath()
WILDCARD = Wildcard()
TEXT = TextStep()
PARENT = Parent()
TRUE = QBool(True)
FALSE = QBool(False)


# ---------------------------------------------------------------------------
# Smart constructors (the paper's empty-query algebra)
# ---------------------------------------------------------------------------


def slash(left: Path, right: Path) -> Path:
    """``left/right`` with ``p/0 = 0/p = 0``, epsilon elimination, and
    left-associative normalization (the parser's associativity)."""
    if left.is_empty or right.is_empty:
        return EMPTY
    if isinstance(left, EpsilonPath):
        return right
    if isinstance(right, EpsilonPath):
        return left
    if isinstance(right, Slash):
        return slash(slash(left, right.left), right.right)
    return Slash(left, right)


def path_seq(steps) -> Path:
    """Left-fold a sequence of steps with :func:`slash`."""
    result: Path = EPSILON
    for step in steps:
        result = slash(result, step)
    return result


def descendant(inner: Path) -> Path:
    """``//inner`` with ``//0 = 0``, ``//(//p) = //p`` (idempotence),
    and ``//(p1/p2) = (//p1)/p2`` so Descendant only ever wraps a
    single step (canonical, unambiguous serialization)."""
    if inner.is_empty:
        return EMPTY
    if isinstance(inner, Descendant):
        return inner
    if isinstance(inner, Slash):
        return Slash(descendant(inner.left), inner.right)
    return Descendant(inner)


def union(branches) -> Path:
    """N-ary union: flattens nested unions, drops empty branches, and
    deduplicates structurally while preserving order (``0 U p = p``)."""
    flat: List[Path] = []
    seen = set()
    for branch in branches:
        parts = branch.branches if isinstance(branch, Union) else (branch,)
        for part in parts:
            if part.is_empty or part in seen:
                continue
            seen.add(part)
            flat.append(part)
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return Union(flat)


def qualified(path: Path, qualifier: Qualifier) -> Path:
    """``path[qualifier]`` with constant folding.

    Qualifiers attach to the *last step*: ``(p1/p2)[q] = p1/(p2[q])``
    and ``(//p)[q] = //(p[q])`` (a qualifier filters result nodes, so
    pushing it inward is always sound).  This canonicalization keeps
    serialized queries in the paper's step-qualifier notation.
    """
    if path.is_empty:
        return EMPTY
    if isinstance(qualifier, QBool):
        return path if qualifier.value else EMPTY
    if isinstance(path, Slash):
        return Slash(path.left, qualified(path.right, qualifier))
    if isinstance(path, Descendant):
        return descendant(qualified(path.inner, qualifier))
    if isinstance(path, Absolute):
        return Absolute(qualified(path.inner, qualifier))
    return Qualified(path, qualifier)


def qand(left: Qualifier, right: Qualifier) -> Qualifier:
    if isinstance(left, QBool):
        return right if left.value else FALSE
    if isinstance(right, QBool):
        return left if right.value else FALSE
    if left == right:
        return left
    return QAnd(left, right)


def qor(left: Qualifier, right: Qualifier) -> Qualifier:
    if isinstance(left, QBool):
        return TRUE if left.value else right
    if isinstance(right, QBool):
        return TRUE if right.value else left
    if left == right:
        return left
    return QOr(left, right)


def qnot(inner: Qualifier) -> Qualifier:
    if isinstance(inner, QBool):
        return QBool(not inner.value)
    if isinstance(inner, QNot):
        return inner.inner
    return QNot(inner)


def qpath(path: Path) -> Qualifier:
    """``[p]`` with ``[0] = false`` and ``[.] = true``."""
    if path.is_empty:
        return FALSE
    if isinstance(path, EpsilonPath):
        return TRUE
    return QPath(path)


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------


def _leftmost_step(path: Path) -> Path:
    """The first step of a path (descends left through Slash chains)."""
    current = path
    while isinstance(current, Slash):
        current = current.left
    return current


def _absolute_inner_str(path: Path) -> str:
    """Serialize the inner path of an absolute query whose leftmost
    step is a Descendant: the anchoring '//' subsumes the step's own
    './/' spelling."""
    if isinstance(path, Descendant):
        return "//%s" % _wrap_for_slash(path.inner)
    if isinstance(path, Slash):
        left = _absolute_inner_str(path.left)
        if isinstance(path.right, Descendant):
            return "%s//%s" % (left, _wrap_for_slash(path.right.inner))
        return "%s/%s" % (left, _wrap_for_slash(path.right))
    return str(path)


def _wrap_for_slash(path: Path) -> str:
    if isinstance(path, Union):
        return str(path)  # Union already parenthesizes itself
    return str(path)


def _wrap_for_bool(qualifier: Qualifier) -> str:
    if isinstance(qualifier, (QAnd, QOr)):
        return "(%s)" % qualifier
    return str(qualifier)


def _substitute_path(path: Path, bindings: dict) -> Path:
    if isinstance(path, (Empty, EpsilonPath, Label, Wildcard, TextStep, Parent)):
        return path
    if isinstance(path, Slash):
        return slash(
            _substitute_path(path.left, bindings),
            _substitute_path(path.right, bindings),
        )
    if isinstance(path, Descendant):
        return descendant(_substitute_path(path.inner, bindings))
    if isinstance(path, Union):
        return union(
            _substitute_path(branch, bindings) for branch in path.branches
        )
    if isinstance(path, Qualified):
        return qualified(
            _substitute_path(path.path, bindings),
            substitute_qualifier(path.qualifier, bindings),
        )
    if isinstance(path, Absolute):
        return Absolute(_substitute_path(path.inner, bindings))
    raise TypeError("unknown path node %r" % path)


def substitute_qualifier(qualifier: Qualifier, bindings: dict) -> Qualifier:
    """Parameter substitution inside qualifiers."""
    if isinstance(qualifier, QBool):
        return qualifier
    if isinstance(qualifier, QPath):
        return qpath(_substitute_path(qualifier.path, bindings))
    if isinstance(qualifier, QEquals):
        value = qualifier.value
        if isinstance(value, Param):
            value = bindings[value.name]
        return QEquals(_substitute_path(qualifier.path, bindings), value)
    if isinstance(qualifier, QAttr):
        return QAttr(qualifier.name, _substitute_path(qualifier.path, bindings))
    if isinstance(qualifier, QAttrEquals):
        value = qualifier.value
        if isinstance(value, Param):
            value = bindings[value.name]
        return QAttrEquals(
            qualifier.name, value, _substitute_path(qualifier.path, bindings)
        )
    if isinstance(qualifier, QAnd):
        return qand(
            substitute_qualifier(qualifier.left, bindings),
            substitute_qualifier(qualifier.right, bindings),
        )
    if isinstance(qualifier, QOr):
        return qor(
            substitute_qualifier(qualifier.left, bindings),
            substitute_qualifier(qualifier.right, bindings),
        )
    if isinstance(qualifier, QNot):
        return qnot(substitute_qualifier(qualifier.inner, bindings))
    raise TypeError("unknown qualifier node %r" % qualifier)


def label_path(*names: str) -> Path:
    """Convenience: ``label_path("a", "b")`` builds ``a/b``."""
    return path_seq(Label(name) for name in names)
