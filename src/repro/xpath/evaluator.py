"""Set-semantics evaluation of the XPath fragment ``C`` over XML trees.

``v[[p]]`` — the paper's notation — is the set of nodes reachable from
context node ``v`` via ``p``; qualifiers ``[q]`` hold at ``v`` iff the
relevant node set is nonempty (Section 2).  The evaluator is a plain
recursive interpreter over node lists (deduplicated by identity,
discovery order).  Pass ``ordered=True`` to sort results back into
document order.

The evaluator counts the number of node touches in ``visits``; the
benchmark harness reports this machine-independent work measure
alongside wall-clock times.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import XPathEvaluationError
from repro.xpath.ast import (
    Absolute,
    Descendant,
    Empty,
    EpsilonPath,
    Label,
    Param,
    Parent,
    Path,
    QAnd,
    QAttr,
    QAttrEquals,
    QBool,
    QEquals,
    QNot,
    QOr,
    QPath,
    Qualified,
    Qualifier,
    Slash,
    TextStep,
    Union,
    Wildcard,
)


class _VirtualDocumentNode:
    """The document node sitting above the root element; context for
    absolute paths (leading ``/`` or ``//``)."""

    __slots__ = ("label", "children", "attributes", "parent")

    is_element = True
    is_text = False

    def __init__(self, root):
        self.label = "#document"
        self.children = [root]
        self.attributes = {}
        self.parent = None

    def string_value(self) -> str:
        return self.children[0].string_value()


class XPathEvaluator:
    """Evaluates fragment-``C`` expressions.

    One evaluator instance may be reused across queries; ``visits``
    accumulates until :meth:`reset_counters` is called.

    Pass a :class:`repro.xmlmodel.index.DocumentIndex` to enable the
    indexed fast path for ``//label`` patterns (two binary searches
    instead of a subtree scan).  Queries over nodes outside the indexed
    tree silently fall back to scanning.

    Pass a :class:`repro.robustness.governor.Budget` to enforce a
    deadline and work budgets cooperatively: every ``_eval`` dispatch
    checkpoints, and the unbounded descendant walk ticks per node, so
    runaway queries terminate with a typed error instead of hanging.
    """

    def __init__(self, index=None, budget=None):
        self.visits = 0
        self.index = index
        self.budget = budget

    def reset_counters(self) -> None:
        self.visits = 0

    # -- public API -----------------------------------------------------

    def evaluate(self, path: Path, context, ordered: bool = False) -> List:
        """Evaluate ``path`` at a context node (or list of nodes).

        Returns a duplicate-free list of result nodes.  With
        ``ordered=True`` the list is sorted into document order (an
        extra full-tree pass)."""
        contexts = context if isinstance(context, list) else [context]
        results = self._eval(path, contexts)
        results = [
            node for node in results if not isinstance(node, _VirtualDocumentNode)
        ]
        if ordered and results:
            results = _document_order(results)
        return results

    def evaluate_qualifier(self, qualifier: Qualifier, node) -> bool:
        """Evaluate a qualifier at one context node."""
        return self._test(qualifier, node)

    # -- path dispatch -----------------------------------------------------

    def _eval(self, path: Path, contexts: List) -> List:
        budget = self.budget
        if budget is not None:
            budget.checkpoint(self.visits, len(contexts))
        if isinstance(path, Empty):
            return []
        if isinstance(path, EpsilonPath):
            return contexts
        if isinstance(path, Label):
            return self._step_label(contexts, path.name)
        if isinstance(path, Wildcard):
            return self._step_wildcard(contexts)
        if isinstance(path, TextStep):
            return self._step_text(contexts)
        if isinstance(path, Parent):
            return self._step_parent(contexts)
        if isinstance(path, Slash):
            return self._eval(path.right, self._eval(path.left, contexts))
        if isinstance(path, Descendant):
            if self.index is not None:
                fast = self._descendant_fast_path(path.inner, contexts)
                if fast is not None:
                    return fast
            return self._eval(path.inner, self._descendants_or_self(contexts))
        if isinstance(path, Union):
            merged: List = []
            seen = set()
            for branch in path.branches:
                for node in self._eval(branch, contexts):
                    if id(node) not in seen:
                        seen.add(id(node))
                        merged.append(node)
            return merged
        if isinstance(path, Qualified):
            selected = self._eval(path.path, contexts)
            return [
                node
                for node in selected
                if not node.is_text and self._test(path.qualifier, node)
            ]
        if isinstance(path, Absolute):
            roots = []
            seen = set()
            for node in contexts:
                root = node if node.parent is None else _find_root(node)
                if id(root) not in seen:
                    seen.add(id(root))
                    roots.append(root)
            shims = [_VirtualDocumentNode(root) for root in roots]
            return self._eval(path.inner, shims)
        raise XPathEvaluationError("unknown path node %r" % path)

    # -- steps -----------------------------------------------------------------

    def _step_label(self, contexts: List, name: str) -> List:
        results: List = []
        seen = set()
        for node in contexts:
            if node.is_text:
                continue
            for child in node.children:
                self.visits += 1
                if (
                    child.is_element
                    and child.label == name
                    and id(child) not in seen
                ):
                    seen.add(id(child))
                    results.append(child)
        return results

    def _step_wildcard(self, contexts: List) -> List:
        results: List = []
        seen = set()
        for node in contexts:
            if node.is_text:
                continue
            for child in node.children:
                self.visits += 1
                if child.is_element and id(child) not in seen:
                    seen.add(id(child))
                    results.append(child)
        return results

    def _step_parent(self, contexts: List) -> List:
        results: List = []
        seen = set()
        for node in contexts:
            parent = node.parent
            self.visits += 1
            if (
                parent is not None
                and not isinstance(parent, _VirtualDocumentNode)
                and id(parent) not in seen
            ):
                seen.add(id(parent))
                results.append(parent)
        return results

    def _step_text(self, contexts: List) -> List:
        results: List = []
        seen = set()
        for node in contexts:
            if node.is_text:
                continue
            for child in node.children:
                self.visits += 1
                if child.is_text and id(child) not in seen:
                    seen.add(id(child))
                    results.append(child)
        return results

    def _descendant_fast_path(self, inner, contexts: List):
        """Indexed evaluation of ``//label`` (optionally qualified):
        None when the pattern or the contexts do not qualify."""
        label, qualifiers = _peel_label(inner)
        if label is None:
            return None
        ordered = []
        seen = set()
        for node in contexts:
            if node.is_text:
                continue
            if isinstance(node, _VirtualDocumentNode):
                # the document node sits above the indexed root: its
                # label-descendants are the root's, plus the root itself
                root = node.children[0]
                if not self.index.covers(root):
                    return None
                hits = self.index.descendants_with_label(root, label)
                if root.label == label:
                    hits = [root] + hits
            elif not self.index.covers(node):
                return None  # context outside the indexed tree
            else:
                hits = self.index.descendants_with_label(node, label)
            for element in hits:
                position = self.index.position(element)
                if position not in seen:
                    seen.add(position)
                    ordered.append((position, element))
        self.visits += len(ordered)
        ordered.sort(key=lambda pair: pair[0])
        results = [element for _, element in ordered]
        for qualifier in qualifiers:
            results = [
                element
                for element in results
                if self._test(qualifier, element)
            ]
        return results

    def _descendants_or_self(self, contexts: List) -> List:
        """All descendant-or-self *elements*, duplicate-free.  Text
        nodes are reached through an explicit ``text()`` step."""
        budget = self.budget
        results: List = []
        seen = set()
        for origin in contexts:
            if origin.is_text:
                continue
            if id(origin) in seen:
                continue
            stack = [origin]
            while stack:
                node = stack.pop()
                if id(node) in seen:
                    continue
                seen.add(id(node))
                results.append(node)
                self.visits += 1
                if budget is not None:
                    budget.tick()
                for child in reversed(node.children):
                    if child.is_element:
                        stack.append(child)
        return results

    # -- qualifiers ---------------------------------------------------------------

    def _test(self, qualifier: Qualifier, node) -> bool:
        if isinstance(qualifier, QBool):
            return qualifier.value
        if isinstance(qualifier, QPath):
            return bool(self._eval(qualifier.path, [node]))
        if isinstance(qualifier, QEquals):
            value = qualifier.value
            if isinstance(value, Param):
                raise XPathEvaluationError(
                    "unbound parameter $%s during evaluation" % value.name
                )
            for selected in self._eval(qualifier.path, [node]):
                self.visits += 1
                if selected.string_value() == value:
                    return True
            return False
        if isinstance(qualifier, QAttr):
            for selected in self._eval(qualifier.path, [node]):
                self.visits += 1
                if selected.is_element and qualifier.name in selected.attributes:
                    return True
            return False
        if isinstance(qualifier, QAttrEquals):
            value = qualifier.value
            if isinstance(value, Param):
                raise XPathEvaluationError(
                    "unbound parameter $%s during evaluation" % value.name
                )
            for selected in self._eval(qualifier.path, [node]):
                self.visits += 1
                if (
                    selected.is_element
                    and selected.attributes.get(qualifier.name) == value
                ):
                    return True
            return False
        if isinstance(qualifier, QAnd):
            return self._test(qualifier.left, node) and self._test(
                qualifier.right, node
            )
        if isinstance(qualifier, QOr):
            return self._test(qualifier.left, node) or self._test(
                qualifier.right, node
            )
        if isinstance(qualifier, QNot):
            return not self._test(qualifier.inner, node)
        raise XPathEvaluationError("unknown qualifier node %r" % qualifier)


def _find_root(node):
    current = node
    while current.parent is not None:
        current = current.parent
    return current


def _document_order(results: List) -> List:
    root = _find_root(results[0])
    order = {}
    for index, node in enumerate(root.iter()):
        order[id(node)] = index
    return sorted(results, key=lambda node: order.get(id(node), -1))


def _peel_label(inner):
    """Decompose ``Label`` / ``Label[q1][q2]...`` into (label name,
    qualifiers); (None, ()) when the shape does not match."""
    qualifiers = []
    current = inner
    while isinstance(current, Qualified):
        qualifiers.append(current.qualifier)
        current = current.path
    if isinstance(current, Label):
        return current.name, tuple(reversed(qualifiers))
    return None, ()


def evaluate(path: Path, context, ordered: bool = False, index=None, budget=None) -> List:
    """Module-level convenience wrapper."""
    return XPathEvaluator(index=index, budget=budget).evaluate(
        path, context, ordered=ordered
    )


def evaluate_qualifier(qualifier: Qualifier, node) -> bool:
    return XPathEvaluator().evaluate_qualifier(qualifier, node)
