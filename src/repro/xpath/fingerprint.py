"""Canonical query fingerprints: the *shape* of an XPath query.

Workload analytics (see :mod:`repro.obs.workload`) needs to group
queries by structure, not by text: ``//patient[wardNo = "1"]`` and
``//patient[wardNo = "7"]`` are the same query shape with different
constants, and a view-selection policy should see them as one heavy
hitter, not two singletons.  A :class:`Fingerprint` is therefore
computed from the **normalized AST**: every comparison constant (and
every still-unbound ``$parameter``) is masked to the placeholder
``$_`` and the masked tree is serialized through the AST's canonical
``str()`` form — the same serialization the plan cache keys on, so
structurally equal queries always share one shape string.

The digest is a stable 64-bit BLAKE2b hex string of the shape, so
fingerprints computed in different processes (a serving fleet, an
offline log aggregator) agree.  Python's own ``hash()`` is
per-process-salted and deliberately not used.

The engine computes the fingerprint once at plan-compile time and
stores it on the :class:`~repro.core.plancache.CompiledQuery`, so the
serving hot path pays a plan-cache dict lookup — never a re-parse.
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Union as TypingUnion

from repro.xpath.ast import (
    Absolute,
    Descendant,
    Empty,
    EpsilonPath,
    Label,
    Param,
    Parent,
    Path,
    QAnd,
    QAttr,
    QAttrEquals,
    QBool,
    QEquals,
    QNot,
    QOr,
    QPath,
    Qualified,
    Qualifier,
    Slash,
    TextStep,
    Union,
    Wildcard,
)

__all__ = ["Fingerprint", "query_fingerprint", "fingerprint_shape"]

#: The placeholder every comparison constant normalizes to.
_MASK = Param("_")

#: Shape used when a query string cannot be parsed at all (the error
#: accounting path still wants a stable bucket for it).
UNPARSED_SHAPE = "!unparsed"


class Fingerprint:
    """One query shape: the masked canonical serialization plus its
    stable hex digest.  ``str()`` (and equality/hashing) use the
    digest, so a fingerprint drops into event fields, metric labels,
    and dict keys as a short opaque id."""

    __slots__ = ("digest", "shape")

    def __init__(self, digest: str, shape: str):
        self.digest = digest
        self.shape = shape

    def __str__(self) -> str:
        return self.digest

    def __eq__(self, other):
        if isinstance(other, Fingerprint):
            return self.digest == other.digest
        if isinstance(other, str):
            return self.digest == other
        return NotImplemented

    def __hash__(self):
        return hash(self.digest)

    def __repr__(self):
        return "Fingerprint(%s, %r)" % (self.digest, self.shape)


def _digest(shape: str) -> str:
    return blake2b(shape.encode("utf-8"), digest_size=8).hexdigest()


def _mask_path(path: Path) -> Path:
    if isinstance(
        path, (Empty, EpsilonPath, Label, Wildcard, TextStep, Parent)
    ):
        return path
    if isinstance(path, Slash):
        return Slash(_mask_path(path.left), _mask_path(path.right))
    if isinstance(path, Descendant):
        return Descendant(_mask_path(path.inner))
    if isinstance(path, Union):
        return Union([_mask_path(branch) for branch in path.branches])
    if isinstance(path, Qualified):
        return Qualified(
            _mask_path(path.path), _mask_qualifier(path.qualifier)
        )
    if isinstance(path, Absolute):
        return Absolute(_mask_path(path.inner))
    raise TypeError("unknown path node %r" % path)


def _mask_qualifier(qualifier: Qualifier) -> Qualifier:
    if isinstance(qualifier, QBool):
        return qualifier
    if isinstance(qualifier, QPath):
        return QPath(_mask_path(qualifier.path))
    if isinstance(qualifier, QEquals):
        return QEquals(_mask_path(qualifier.path), _MASK)
    if isinstance(qualifier, QAttr):
        return QAttr(qualifier.name, _mask_path(qualifier.path))
    if isinstance(qualifier, QAttrEquals):
        return QAttrEquals(qualifier.name, _MASK, _mask_path(qualifier.path))
    if isinstance(qualifier, QAnd):
        return QAnd(
            _mask_qualifier(qualifier.left), _mask_qualifier(qualifier.right)
        )
    if isinstance(qualifier, QOr):
        return QOr(
            _mask_qualifier(qualifier.left), _mask_qualifier(qualifier.right)
        )
    if isinstance(qualifier, QNot):
        return QNot(_mask_qualifier(qualifier.inner))
    raise TypeError("unknown qualifier node %r" % qualifier)


def fingerprint_shape(path: Path) -> str:
    """The canonical constant-masked serialization of a parsed query."""
    return str(_mask_path(path))


def query_fingerprint(query: TypingUnion[str, Path]) -> Fingerprint:
    """The :class:`Fingerprint` of a query (string or parsed AST).

    Strings are parsed first; a string that fails to parse still gets
    a deterministic fingerprint (shape :data:`UNPARSED_SHAPE` plus the
    digest of the raw text), so error accounting can bucket malformed
    queries without raising from the accounting path itself.
    """
    if isinstance(query, str):
        from repro.errors import ReproError
        from repro.xpath.parser import parse_xpath

        try:
            query = parse_xpath(query)
        except ReproError:
            return Fingerprint(_digest("!unparsed:" + query), UNPARSED_SHAPE)
    shape = fingerprint_shape(query)
    return Fingerprint(_digest(shape), shape)
