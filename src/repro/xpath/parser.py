"""Tokenizer and recursive-descent parser for the XPath fragment ``C``.

Grammar (union has the lowest precedence; qualifiers bind postfix):

    query     := path ( '|' path )*
    path      := ( '/' | '//' )? steps          -- leading slash: absolute
    steps     := step ( ('/' | '//') step )*
    step      := primary qualifier*
    primary   := NAME | '*' | '.' | '0' | 'text()' | '(' query ')'
    qualifier := '[' boolean ']'
    boolean   := bterm ( 'or' bterm )*
    bterm     := bfactor ( 'and' bfactor )*
    bfactor   := 'not' '(' boolean ')' | '(' boolean ')' | comparison
    comparison:= ( query | '@' NAME ) ( '=' constant )?
    constant  := STRING | NUMBER | '$' NAME

The unicode operators used in the paper (``∪``, ``∧``, ``∨``, ``¬``,
``ε``, ``∅``) are accepted as aliases.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    Absolute,
    Descendant,
    EMPTY,
    EPSILON,
    Label,
    PARENT,
    Param,
    Path,
    QAttr,
    QAttrEquals,
    QEquals,
    Qualifier,
    TEXT,
    WILDCARD,
    qand,
    qnot,
    qor,
    qpath,
    qualified,
    slash,
    union,
)

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789.-")

# token kinds
_T_NAME = "name"
_T_STRING = "string"
_T_NUMBER = "number"
_T_PARAM = "param"
_T_PUNCT = "punct"
_T_EOF = "eof"

_ALIASES = {
    "∪": "|",  # ∪
    "∧": "and",  # ∧
    "∨": "or",  # ∨
    "¬": "not",  # ¬
    "ε": ".",  # ε
    "∅": "0",  # ∅
}


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    tokens: List[Tuple[str, str, int]] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch in _ALIASES:
            alias = _ALIASES[ch]
            if alias in ("and", "or", "not"):
                tokens.append((_T_NAME, alias, i))
            else:
                tokens.append((_T_PUNCT, alias, i))
            i += 1
            continue
        if text.startswith("//", i):
            tokens.append((_T_PUNCT, "//", i))
            i += 2
            continue
        if ch in "/*[]()|=@":
            tokens.append((_T_PUNCT, ch, i))
            i += 1
            continue
        if ch == ".":
            if text.startswith("..", i):
                tokens.append((_T_PUNCT, "..", i))
                i += 2
                continue
            tokens.append((_T_PUNCT, ".", i))
            i += 1
            continue
        if ch == "$":
            start = i + 1
            j = start
            while j < length and text[j] in _NAME_CHARS:
                j += 1
            if j == start:
                raise XPathSyntaxError("expected a parameter name", i)
            tokens.append((_T_PARAM, text[start:j], i))
            i = j
            continue
        if ch in ("'", '"'):
            end = text.find(ch, i + 1)
            if end < 0:
                raise XPathSyntaxError("unterminated string literal", i)
            tokens.append((_T_STRING, text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit():
            j = i
            while j < length and (text[j].isdigit() or text[j] == "."):
                j += 1
            tokens.append((_T_NUMBER, text[i:j], i))
            i = j
            continue
        if ch in _NAME_START:
            j = i
            while j < length and text[j] in _NAME_CHARS:
                j += 1
            tokens.append((_T_NAME, text[i:j], i))
            i = j
            continue
        raise XPathSyntaxError("unexpected character %r" % ch, i)
    tokens.append((_T_EOF, "", length))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0
        # Inside qualifiers, a leading '//' is *relative* to the
        # context node (the paper's fragment has no absolute paths;
        # Q3's [//company-id] means "a company-id descendant").  At the
        # top level a leading '/' or '//' anchors at the document node.
        self.qualifier_depth = 0

    # -- token helpers -----------------------------------------------------

    def current(self) -> Tuple[str, str, int]:
        return self.tokens[self.pos]

    def at(self, kind: str, value: Optional[str] = None) -> bool:
        token_kind, token_value, _ = self.current()
        if token_kind != kind:
            return False
        return value is None or token_value == value

    def at_punct(self, value: str) -> bool:
        return self.at(_T_PUNCT, value)

    def at_keyword(self, word: str) -> bool:
        return self.at(_T_NAME, word)

    def take(self) -> Tuple[str, str, int]:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect_punct(self, value: str) -> None:
        if not self.at_punct(value):
            _, found, offset = self.current()
            raise XPathSyntaxError(
                "expected %r, found %r" % (value, found or "<eof>"), offset
            )
        self.take()

    def error(self, message: str) -> XPathSyntaxError:
        _, _, offset = self.current()
        return XPathSyntaxError(message, offset)

    # -- grammar -------------------------------------------------------------

    def parse_query(self) -> Path:
        branches = [self.parse_path()]
        while self.at_punct("|"):
            self.take()
            branches.append(self.parse_path())
        return union(branches) if len(branches) > 1 else branches[0]

    def parse_path(self) -> Path:
        # Leading slash makes the path absolute (outside qualifiers).
        if self.at_punct("//"):
            self.take()
            step = self.parse_step()
            rest = self.parse_more_steps(Descendant(step))
            if self.qualifier_depth:
                return rest
            return Absolute(rest)
        if self.at_punct("/"):
            self.take()
            step = self.parse_step()
            rest = self.parse_more_steps(step)
            return Absolute(rest)
        step = self.parse_step()
        return self.parse_more_steps(step)

    def parse_more_steps(self, accumulated: Path) -> Path:
        while True:
            if self.at_punct("//"):
                self.take()
                accumulated = slash(accumulated, Descendant(self.parse_step()))
            elif self.at_punct("/"):
                # stop before '/@attr' so qualifier comparisons can
                # attach the attribute test to the path prefix
                if self.tokens[self.pos + 1][:2] == (_T_PUNCT, "@"):
                    return accumulated
                self.take()
                accumulated = slash(accumulated, self.parse_step())
            else:
                return accumulated

    def parse_step(self) -> Path:
        primary = self.parse_primary()
        while self.at_punct("["):
            self.take()
            self.qualifier_depth += 1
            try:
                condition = self.parse_boolean()
            finally:
                self.qualifier_depth -= 1
            self.expect_punct("]")
            primary = qualified(primary, condition)
        return primary

    def parse_primary(self) -> Path:
        kind, value, _ = self.current()
        if kind == _T_PUNCT and value == "*":
            self.take()
            return WILDCARD
        if kind == _T_PUNCT and value == ".":
            self.take()
            return EPSILON
        if kind == _T_PUNCT and value == "..":
            self.take()
            return PARENT
        if kind == _T_PUNCT and value == "(":
            self.take()
            inner = self.parse_query()
            self.expect_punct(")")
            return inner
        if kind == _T_NUMBER and value == "0":
            self.take()
            return EMPTY
        if kind == _T_NAME:
            if value == "text" and self.tokens[self.pos + 1][:2] == (
                _T_PUNCT,
                "(",
            ):
                self.take()
                self.take()
                self.expect_punct(")")
                return TEXT
            self.take()
            return Label(value)
        raise self.error("expected a step, found %r" % (value or "<eof>"))

    # Boolean qualifiers -------------------------------------------------------

    def parse_boolean(self) -> Qualifier:
        result = self.parse_bterm()
        while self.at_keyword("or"):
            self.take()
            result = qor(result, self.parse_bterm())
        return result

    def parse_bterm(self) -> Qualifier:
        result = self.parse_bfactor()
        while self.at_keyword("and"):
            self.take()
            result = qand(result, self.parse_bfactor())
        return result

    def parse_bfactor(self) -> Qualifier:
        if self.at_keyword("not"):
            self.take()
            self.expect_punct("(")
            inner = self.parse_boolean()
            self.expect_punct(")")
            return qnot(inner)
        if self.at_punct("("):
            # Could be a parenthesized boolean or a parenthesized path.
            # Try boolean first by scanning for and/or/not at this depth;
            # simplest correct approach: attempt path parse, fall back.
            return self._parse_paren_bfactor()
        return self.parse_comparison()

    def _parse_paren_bfactor(self) -> Qualifier:
        saved = self.pos
        try:
            comparison = self.parse_comparison()
        except XPathSyntaxError:
            comparison = None
            self.pos = saved
        if comparison is not None and (
            self.at_punct("]")
            or self.at_punct(")")
            or self.at_keyword("and")
            or self.at_keyword("or")
            or self.at(_T_EOF)
        ):
            return comparison
        self.pos = saved
        self.expect_punct("(")
        inner = self.parse_boolean()
        self.expect_punct(")")
        return inner

    def parse_comparison(self) -> Qualifier:
        if self.at_punct("@"):
            return self._parse_attribute_test(None)
        if self.at_keyword("true") and self.tokens[self.pos + 1][:2] == (
            _T_PUNCT,
            "(",
        ):
            self.take()
            self.take()
            self.expect_punct(")")
            from repro.xpath.ast import TRUE

            return TRUE
        if self.at_keyword("false") and self.tokens[self.pos + 1][:2] == (
            _T_PUNCT,
            "(",
        ):
            self.take()
            self.take()
            self.expect_punct(")")
            from repro.xpath.ast import FALSE

            return FALSE
        path = self.parse_query()
        if self.at_punct("/") and self.tokens[self.pos + 1][:2] == (
            _T_PUNCT,
            "@",
        ):
            self.take()  # '/'
            return self._parse_attribute_test(path)
        if self.at_punct("="):
            self.take()
            return QEquals(path, self.parse_constant())
        return qpath(path)

    def _parse_attribute_test(self, prefix) -> Qualifier:
        self.expect_punct("@")
        kind, name, _ = self.current()
        if kind != _T_NAME:
            raise self.error("expected an attribute name after '@'")
        self.take()
        if self.at_punct("="):
            self.take()
            return QAttrEquals(name, self.parse_constant(), prefix)
        return QAttr(name, prefix)

    def parse_constant(self):
        kind, value, _ = self.current()
        if kind == _T_STRING:
            self.take()
            return value
        if kind == _T_NUMBER:
            self.take()
            return value
        if kind == _T_PARAM:
            self.take()
            return Param(value)
        raise self.error("expected a constant after '='")


def parse_xpath(text: str) -> Path:
    """Parse an XPath expression of the fragment ``C``."""
    parser = _Parser(text)
    result = parser.parse_query()
    if not parser.at(_T_EOF):
        _, found, offset = parser.current()
        raise XPathSyntaxError("trailing input %r" % found, offset)
    return result


def parse_qualifier(text: str) -> Qualifier:
    """Parse a bare qualifier expression, with or without brackets."""
    stripped = text.strip()
    if stripped.startswith("[") and stripped.endswith("]"):
        stripped = stripped[1:-1]
    parser = _Parser(stripped)
    parser.qualifier_depth = 1
    result = parser.parse_boolean()
    if not parser.at(_T_EOF):
        _, found, offset = parser.current()
        raise XPathSyntaxError("trailing input %r" % found, offset)
    return result
