"""Compiled query plans: executable operator trees for fragment ``C``.

The interpreter in :mod:`repro.xpath.evaluator` re-dispatches on AST
node types at every step of every evaluation.  On the serving path the
same rewritten/optimized query runs over and over (the engine's plan
cache amortizes rewriting per policy, not per request), so this module
compiles a :class:`~repro.xpath.ast.Path` once into a tree of step
*operators* whose dispatch is resolved ahead of time.

Every operator carries **two** execution methods:

* ``run(rt, contexts)`` — the object-tree backend: node-at-a-time over
  linked ``XMLElement`` objects, bit-for-bit compatible with the
  interpreter (results, discovery order, *and* the ``visits`` counter);
* ``run_rows(rt, rows)`` — the columnar backend: set-at-a-time over
  sorted row-id frontiers of a
  :class:`~repro.xmlmodel.store.NodeTable`.  Child and descendant
  steps are merge/interval joins against label posting lists,
  ``//label`` chains collapse into successive posting slices over
  merged disjoint intervals, unions are sorted merges, and a frontier
  is always sorted and duplicate-free — so results arrive in document
  order with no per-node identity bookkeeping.

Design constraints:

* **Semantics parity.**  Each ``run`` operator mirrors the
  corresponding interpreter branch exactly — including duplicate
  elimination by node identity, discovery order, and the ``visits``
  work counter the benchmark harness relies on.  ``CompiledPlan.execute``
  and ``XPathEvaluator.evaluate`` return identical node lists *and*
  identical visit counts for the same input.  The columnar backend
  returns the *same node objects in the same (document) order*; its
  ``visits`` counter measures columnar work (rows scanned/emitted), so
  it is comparable across columnar runs but not with the interpreter.
* **Index awareness.**  A plan is compiled once and executed against
  many documents.  Whether a :class:`~repro.xmlmodel.index.DocumentIndex`
  or a :class:`~repro.xmlmodel.store.NodeTable` is available is a
  property of the *execution*, not the plan: the descendant operator
  precomputes its ``//label`` fast-path shape at compile time and
  consults the runtime's index/store when one is attached, falling
  back to a subtree walk otherwise (or when a context node lies
  outside the indexed tree).
* **Shared accounting.**  A single :class:`PlanRuntime` may be passed
  through several ``execute`` calls (the engine's projected evaluation
  runs one plan per view target); ``visits`` accumulates across them.

Row-space conventions of the columnar backend: frontiers are ascending
duplicate-free lists of row ids; the virtual document node above the
root (context of absolute paths) is the pseudo-row ``-1``, whose
subtree interval is the whole table and whose only child is row 0.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Optional

from repro.errors import XPathEvaluationError
from repro.obs.metrics import record as _metric_record
from repro.obs.profile import ProfileCollector, ProfileNode
from repro.xpath.ast import (
    Absolute,
    Descendant,
    Empty,
    EpsilonPath,
    Label,
    Param,
    Parent,
    Path,
    QAnd,
    QAttr,
    QAttrEquals,
    QBool,
    QEquals,
    QNot,
    QOr,
    QPath,
    Qualified,
    Qualifier,
    Slash,
    TextStep,
    Union,
    Wildcard,
)
from repro.xpath.evaluator import (
    _VirtualDocumentNode,
    _document_order,
    _peel_label,
)


class PlanRuntime:
    """Per-execution state: the optional document index, the optional
    columnar :class:`~repro.xmlmodel.store.NodeTable`, the optional
    per-operator profile collector, and the accumulated visit counter.

    Attaching a ``store`` selects the columnar backend for every
    execution whose context nodes the store covers; the object-tree
    backend remains the fallback for foreign contexts.  Attaching a
    ``profile`` (an :class:`~repro.obs.profile.ProfileCollector`)
    makes every operator report frontier sizes, chosen kernels, and
    qualifier short-circuits at batch granularity; with ``profile``
    left ``None`` the only instrumentation cost is one attribute check
    per operator invocation.

    Attaching a ``budget`` (a :class:`~repro.robustness.governor.Budget`)
    makes every operator run a cooperative limit checkpoint at the
    same batch granularity (plus a strided per-node wall-clock check
    inside the unbounded descendant walks), raising typed
    ``E_DEADLINE``/``E_BUDGET`` errors; left ``None``, the cost is the
    same single attribute check as an absent profile.

    Attaching a ``scan_cache`` (a plain dict, shared across the
    runtimes of one batch) memoizes the columnar postings scans: a
    child or ``//label`` step keyed by ``(kind, label, frontier)``
    returns its previous output frontier without touching the posting
    lists again.  Sound because a posting slice is a pure function of
    the store, the label, and the input frontier — plans from
    *different* queries that reach the same label with the same
    frontier (the common ``//a/...`` prefix case in a batch) share one
    scan.  The cache holds row ids, which are deterministic for a
    given document (preorder), so entries stay valid even across a
    NodeTable rebuild of the same document mid-batch."""

    __slots__ = ("index", "store", "visits", "profile", "budget",
                 "scan_cache")

    def __init__(self, index=None, store=None, profile=None, budget=None,
                 scan_cache=None):
        self.index = index
        self.store = store
        self.visits = 0
        self.profile = profile
        self.budget = budget
        self.scan_cache = scan_cache

    def reset_counters(self) -> None:
        self.visits = 0


#: Pseudo-row of the virtual document node in columnar frontiers.
VIRTUAL_ROW = -1

#: Posting-vs-frontier crossover for the child-axis merge join: scan
#: the posting list (output already sorted) while it is at most this
#: many times larger than the frontier, else walk child links per
#: frontier row and sort the (small) result.
_CHILD_JOIN_FANOUT = 4


# ---------------------------------------------------------------------------
# Path operators
# ---------------------------------------------------------------------------


class _Op:
    __slots__ = ()

    def run(self, rt: PlanRuntime, contexts: List) -> List:
        raise NotImplementedError

    def run_rows(self, rt: PlanRuntime, rows: List[int]) -> List[int]:
        """Columnar execution: map a sorted duplicate-free frontier of
        :class:`~repro.xmlmodel.store.NodeTable` rows to the sorted
        duplicate-free result frontier."""
        raise NotImplementedError


def _strip_virtual(rows: List[int]) -> List[int]:
    """Drop the leading pseudo-row ``-1`` (frontiers are sorted, so it
    can only sit at position 0)."""
    return rows[1:] if rows and rows[0] == VIRTUAL_ROW else rows


class EmptyOp(_Op):
    __slots__ = ()

    def run(self, rt, contexts):
        return []

    def run_rows(self, rt, rows):
        return []


class SelfOp(_Op):
    """``.`` — the epsilon path."""

    __slots__ = ()

    def run(self, rt, contexts):
        return contexts

    def run_rows(self, rt, rows):
        return rows


class LabelOp(_Op):
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def run(self, rt, contexts):
        name = self.name
        results: List = []
        seen = set()
        for node in contexts:
            if node.is_text:
                continue
            for child in node.children:
                rt.visits += 1
                if (
                    child.is_element
                    and child.label == name
                    and id(child) not in seen
                ):
                    seen.add(id(child))
                    results.append(child)
        budget = rt.budget
        if budget is not None:
            budget.checkpoint(rt.visits, len(results))
        if rt.profile is not None:
            rt.profile.record(
                self, len(contexts), len(results), kernel="object-walk"
            )
        return results

    def run_rows(self, rt, rows):
        """Child step as a merge join between the frontier and the
        label's posting list: while the posting is small relative to
        the frontier, one pass over the posting with a parent-membership
        probe yields the (already sorted) answer; for large postings
        the kernel walks child links per frontier row instead.

        With a batch ``scan_cache`` attached, the whole step memoizes
        on ``("child", label, frontier)`` — plans of different queries
        sharing a label frontier pay for one scan."""
        cache = rt.scan_cache
        cache_key = None
        if cache is not None:
            cache_key = ("child", self.name, tuple(rows))
            hit = cache.get(cache_key)
            if hit is not None:
                _metric_record("batch.scan_cache_hits")
                budget = rt.budget
                if budget is not None:
                    budget.checkpoint(rt.visits, len(hit))
                if rt.profile is not None:
                    rt.profile.record(
                        self, len(rows), len(hit), kernel="scan-cache-hit"
                    )
                return hit
        store = rt.store
        rows_in = len(rows)
        label_id = store.label_index.get(self.name)
        if label_id is None or not rows:
            if rt.profile is not None:
                rt.profile.record(self, rows_in, 0, kernel="posting-miss")
            return []
        out: List[int] = []
        if rows[0] == VIRTUAL_ROW:
            rt.visits += 1
            if store.label_ids[0] == label_id:
                out.append(0)
            rows = rows[1:]
            if not rows:
                if rt.profile is not None:
                    rt.profile.record(
                        self, rows_in, len(out), kernel="root-probe"
                    )
                return out
        posting = store.postings[label_id]
        if len(posting) <= _CHILD_JOIN_FANOUT * len(rows) + 16:
            kernel = "posting-merge-join"
            members = set(rows)
            parent = store.parent
            append = out.append
            for row in posting:
                if parent[row] in members:
                    append(row)
            rt.visits += len(posting)
        else:
            kernel = "child-link-walk"
            first_child = store.first_child
            next_sibling = store.next_sibling
            label_ids = store.label_ids
            hits: List[int] = []
            for row in rows:
                child = first_child[row]
                while child != -1:
                    rt.visits += 1
                    if label_ids[child] == label_id:
                        hits.append(child)
                    child = next_sibling[child]
            hits.sort()
            out.extend(hits)
        budget = rt.budget
        if budget is not None:
            budget.checkpoint(rt.visits, len(out))
        if rt.profile is not None:
            rt.profile.record(self, rows_in, len(out), kernel=kernel)
        if cache_key is not None:
            cache[cache_key] = out
        return out


class WildcardOp(_Op):
    __slots__ = ()

    def run(self, rt, contexts):
        results: List = []
        seen = set()
        for node in contexts:
            if node.is_text:
                continue
            for child in node.children:
                rt.visits += 1
                if child.is_element and id(child) not in seen:
                    seen.add(id(child))
                    results.append(child)
        budget = rt.budget
        if budget is not None:
            budget.checkpoint(rt.visits, len(results))
        if rt.profile is not None:
            rt.profile.record(
                self, len(contexts), len(results), kernel="object-walk"
            )
        return results

    def run_rows(self, rt, rows):
        store = rt.store
        rows_in = len(rows)
        out: List[int] = []
        if rows and rows[0] == VIRTUAL_ROW:
            rt.visits += 1
            out.append(0)
            rows = rows[1:]
        first_child = store.first_child
        next_sibling = store.next_sibling
        label_ids = store.label_ids
        text_label_id = store.text_label_id
        hits: List[int] = []
        for row in rows:
            child = first_child[row]
            while child != -1:
                rt.visits += 1
                if label_ids[child] != text_label_id:
                    hits.append(child)
                child = next_sibling[child]
        hits.sort()
        out.extend(hits)
        budget = rt.budget
        if budget is not None:
            budget.checkpoint(rt.visits, len(out))
        if rt.profile is not None:
            rt.profile.record(self, rows_in, len(out), kernel="child-link-walk")
        return out


class TextOp(_Op):
    __slots__ = ()

    def run(self, rt, contexts):
        results: List = []
        seen = set()
        for node in contexts:
            if node.is_text:
                continue
            for child in node.children:
                rt.visits += 1
                if child.is_text and id(child) not in seen:
                    seen.add(id(child))
                    results.append(child)
        budget = rt.budget
        if budget is not None:
            budget.checkpoint(rt.visits, len(results))
        if rt.profile is not None:
            rt.profile.record(
                self, len(contexts), len(results), kernel="object-walk"
            )
        return results

    def run_rows(self, rt, rows):
        store = rt.store
        rows_in = len(rows)
        rows = _strip_virtual(rows)  # the virtual node has no text child
        first_child = store.first_child
        next_sibling = store.next_sibling
        label_ids = store.label_ids
        text_label_id = store.text_label_id
        hits: List[int] = []
        for row in rows:
            child = first_child[row]
            while child != -1:
                rt.visits += 1
                if label_ids[child] == text_label_id:
                    hits.append(child)
                child = next_sibling[child]
        hits.sort()
        budget = rt.budget
        if budget is not None:
            budget.checkpoint(rt.visits, len(hits))
        if rt.profile is not None:
            rt.profile.record(self, rows_in, len(hits), kernel="child-link-walk")
        return hits


class ParentOp(_Op):
    __slots__ = ()

    def run(self, rt, contexts):
        results: List = []
        seen = set()
        for node in contexts:
            parent = node.parent
            rt.visits += 1
            if (
                parent is not None
                and not isinstance(parent, _VirtualDocumentNode)
                and id(parent) not in seen
            ):
                seen.add(id(parent))
                results.append(parent)
        budget = rt.budget
        if budget is not None:
            budget.checkpoint(rt.visits, len(results))
        if rt.profile is not None:
            rt.profile.record(
                self, len(contexts), len(results), kernel="object-walk"
            )
        return results

    def run_rows(self, rt, rows):
        store = rt.store
        parent = store.parent
        seen = set()
        out: List[int] = []
        for row in rows:
            rt.visits += 1
            if row == VIRTUAL_ROW:
                continue
            up = parent[row]
            # the root's parent is the virtual document node: excluded,
            # matching the object backend
            if up != VIRTUAL_ROW and up not in seen:
                seen.add(up)
                out.append(up)
        out.sort()
        budget = rt.budget
        if budget is not None:
            budget.checkpoint(rt.visits, len(out))
        if rt.profile is not None:
            rt.profile.record(self, len(rows), len(out), kernel="parent-links")
        return out


class SlashOp(_Op):
    __slots__ = ("left", "right")

    def __init__(self, left: _Op, right: _Op):
        self.left = left
        self.right = right

    def run(self, rt, contexts):
        return self.right.run(rt, self.left.run(rt, contexts))

    def run_rows(self, rt, rows):
        return self.right.run_rows(rt, self.left.run_rows(rt, rows))


class DescendantOp(_Op):
    """``//p``: walks descendant-or-self, or — when the inner path has
    the ``label[q1][q2]...`` shape and an index is attached — answers
    via two binary searches per context."""

    __slots__ = ("inner", "fast_label", "fast_qualifiers")

    def __init__(self, inner: _Op, fast_label: Optional[str], fast_qualifiers):
        self.inner = inner
        self.fast_label = fast_label
        self.fast_qualifiers = tuple(fast_qualifiers)

    def run(self, rt, contexts):
        budget = rt.budget
        if rt.index is not None and self.fast_label is not None:
            fast = self._fast(rt, contexts)
            if fast is not None:
                if budget is not None:
                    budget.checkpoint(rt.visits, len(fast))
                if rt.profile is not None:
                    rt.profile.record(
                        self, len(contexts), len(fast), kernel="index-posting"
                    )
                return fast
        results = self.inner.run(rt, self._descendants_or_self(rt, contexts))
        if budget is not None:
            budget.checkpoint(rt.visits, len(results))
        if rt.profile is not None:
            rt.profile.record(
                self, len(contexts), len(results), kernel="subtree-walk"
            )
        return results

    def _fast(self, rt, contexts):
        index = rt.index
        label = self.fast_label
        ordered = []
        seen = set()
        for node in contexts:
            if node.is_text:
                continue
            if isinstance(node, _VirtualDocumentNode):
                root = node.children[0]
                if not index.covers(root):
                    return None
                hits = index.descendants_with_label(root, label)
                if root.label == label:
                    hits = [root] + hits
            elif not index.covers(node):
                return None  # context outside the indexed tree
            else:
                hits = index.descendants_with_label(node, label)
            for element in hits:
                position = index.position(element)
                if position not in seen:
                    seen.add(position)
                    ordered.append((position, element))
        rt.visits += len(ordered)
        ordered.sort(key=lambda pair: pair[0])
        results = [element for _, element in ordered]
        for qualifier in self.fast_qualifiers:
            results = [
                element
                for element in results
                if qualifier.test(rt, element)
            ]
        return results

    @staticmethod
    def _descendants_or_self(rt, contexts):
        budget = rt.budget
        results: List = []
        seen = set()
        for origin in contexts:
            if origin.is_text:
                continue
            if id(origin) in seen:
                continue
            stack = [origin]
            while stack:
                node = stack.pop()
                if id(node) in seen:
                    continue
                seen.add(id(node))
                results.append(node)
                rt.visits += 1
                if budget is not None:
                    budget.tick()
                for child in reversed(node.children):
                    if child.is_element:
                        stack.append(child)
        return results

    def run_rows(self, rt, rows):
        """``//``-step as an interval join: the (nested-or-disjoint)
        subtree intervals of the frontier merge into disjoint spans in
        one pass over the sorted frontier, then the ``label`` fast
        shape slices the label's posting list with two binary searches
        per span — a chain ``//a//b`` therefore touches only posting
        entries, never the tree."""
        if not rows:
            if rt.profile is not None:
                rt.profile.record(self, 0, 0)
            return []
        store = rt.store
        if self.fast_label is not None:
            # batch memoization of the pre-qualifier posting slice: the
            # base frontier depends only on (label, input frontier), so
            # plans with different qualifiers still share the scan
            cache = rt.scan_cache
            cache_key = None
            if cache is not None:
                cache_key = ("desc", self.fast_label, tuple(rows))
                base = cache.get(cache_key)
                if base is not None:
                    _metric_record("batch.scan_cache_hits")
                    budget = rt.budget
                    if budget is not None:
                        budget.checkpoint(rt.visits, len(base))
                    results = base
                    for qualifier in self.fast_qualifiers:
                        results = [
                            row
                            for row in results
                            if qualifier.test_row(rt, row)
                        ]
                    if rt.profile is not None:
                        rt.profile.record(
                            self,
                            len(rows),
                            len(results),
                            kernel="scan-cache-hit",
                        )
                    return results
            label_id = store.label_index.get(self.fast_label)
            if label_id is None:
                if rt.profile is not None:
                    rt.profile.record(
                        self, len(rows), 0, kernel="posting-miss"
                    )
                return []
            posting = store.postings[label_id]
            base: List[int] = []
            covered_end = VIRTUAL_ROW  # exclusive end of merged spans
            end = store.end
            label_ids = store.label_ids
            text_label_id = store.text_label_id
            for row in rows:
                if row == VIRTUAL_ROW:
                    span_start, span_end = VIRTUAL_ROW, store.size
                else:
                    if label_ids[row] == text_label_id:
                        continue  # text contexts have no descendants
                    if row < covered_end:
                        continue  # nested inside an earlier span
                    span_start, span_end = row, end[row]
                low = bisect_right(posting, span_start)  # proper: exclude self
                high = bisect_left(posting, span_end)
                base.extend(posting[low:high])
                covered_end = span_end
            rt.visits += len(base)
            budget = rt.budget
            if budget is not None:
                budget.checkpoint(rt.visits, len(base))
            if cache_key is not None:
                cache[cache_key] = base
            results = base
            for qualifier in self.fast_qualifiers:
                results = [
                    row for row in results if qualifier.test_row(rt, row)
                ]
            if rt.profile is not None:
                rt.profile.record(
                    self,
                    len(rows),
                    len(results),
                    kernel="interval-posting-join",
                )
            return results
        # generic inner path: materialize the descendant-or-self
        # element frontier from the merged spans, then run the inner
        # operator set-at-a-time on it
        budget = rt.budget
        frontier: List[int] = []
        covered_end = VIRTUAL_ROW
        end = store.end
        label_ids = store.label_ids
        text_label_id = store.text_label_id
        for row in rows:
            if row == VIRTUAL_ROW:
                frontier.append(VIRTUAL_ROW)
                span_start, span_end = 0, store.size
            else:
                if label_ids[row] == text_label_id:
                    continue
                if row < covered_end:
                    continue
                span_start, span_end = row, end[row]
            for candidate in range(span_start, span_end):
                if budget is not None:
                    budget.tick()
                if label_ids[candidate] != text_label_id:
                    frontier.append(candidate)
            covered_end = span_end
        rt.visits += len(frontier)
        if budget is not None:
            budget.checkpoint(rt.visits, len(frontier))
        results = self.inner.run_rows(rt, frontier)
        if rt.profile is not None:
            rt.profile.record(
                self, len(rows), len(results), kernel="interval-scan"
            )
        return results


class UnionOp(_Op):
    __slots__ = ("branches",)

    def __init__(self, branches):
        self.branches = tuple(branches)

    def run(self, rt, contexts):
        merged: List = []
        seen = set()
        for branch in self.branches:
            for node in branch.run(rt, contexts):
                if id(node) not in seen:
                    seen.add(id(node))
                    merged.append(node)
        budget = rt.budget
        if budget is not None:
            budget.checkpoint(rt.visits, len(merged))
        if rt.profile is not None:
            rt.profile.record(
                self, len(contexts), len(merged), kernel="object-walk"
            )
        return merged

    def run_rows(self, rt, rows):
        """Union as a sorted merge of the branch frontiers."""
        outputs = [branch.run_rows(rt, rows) for branch in self.branches]
        outputs = [out for out in outputs if out]
        if not outputs:
            merged: List[int] = []
        elif len(outputs) == 1:
            merged = outputs[0]
        else:
            merged = _merge_sorted(outputs)
        budget = rt.budget
        if budget is not None:
            budget.checkpoint(rt.visits, len(merged))
        if rt.profile is not None:
            rt.profile.record(
                self, len(rows), len(merged), kernel="sorted-merge"
            )
        return merged


class FilterOp(_Op):
    """``p[q]``."""

    __slots__ = ("path", "qualifier")

    def __init__(self, path: _Op, qualifier: "_QOp"):
        self.path = path
        self.qualifier = qualifier

    def run(self, rt, contexts):
        qualifier = self.qualifier
        candidates = self.path.run(rt, contexts)
        results = [
            node
            for node in candidates
            if not node.is_text and qualifier.test(rt, node)
        ]
        budget = rt.budget
        if budget is not None:
            budget.checkpoint(rt.visits, len(results))
        if rt.profile is not None:
            rt.profile.record(self, len(candidates), len(results))
        return results

    def run_rows(self, rt, rows):
        """Batched qualification: the qualifier runs once per candidate
        of the *frontier* (with and/or short-circuiting inside
        ``test_row``), never per recursive visit."""
        store = rt.store
        label_ids = store.label_ids
        text_label_id = store.text_label_id
        qualifier = self.qualifier
        candidates = self.path.run_rows(rt, rows)
        results = [
            row
            for row in candidates
            if (row == VIRTUAL_ROW or label_ids[row] != text_label_id)
            and qualifier.test_row(rt, row)
        ]
        budget = rt.budget
        if budget is not None:
            budget.checkpoint(rt.visits, len(results))
        if rt.profile is not None:
            rt.profile.record(self, len(candidates), len(results))
        return results


class AbsoluteOp(_Op):
    __slots__ = ("inner",)

    def __init__(self, inner: _Op):
        self.inner = inner

    def run(self, rt, contexts):
        roots = []
        seen = set()
        for node in contexts:
            root = node
            while root.parent is not None:
                root = root.parent
            if id(root) not in seen:
                seen.add(id(root))
                roots.append(root)
        shims = [_VirtualDocumentNode(root) for root in roots]
        results = self.inner.run(rt, shims)
        if rt.profile is not None:
            rt.profile.record(self, len(contexts), len(results))
        return results

    def run_rows(self, rt, rows):
        # all covered rows share one tree, so the root set collapses to
        # the single virtual document pseudo-row
        if not rows:
            if rt.profile is not None:
                rt.profile.record(self, 0, 0)
            return []
        results = self.inner.run_rows(rt, [VIRTUAL_ROW])
        if rt.profile is not None:
            rt.profile.record(self, len(rows), len(results))
        return results


def _merge_sorted(outputs: List[List[int]]) -> List[int]:
    """Merge ascending duplicate-free row lists into one."""
    merged = set()
    for out in outputs:
        merged.update(out)
    return sorted(merged)


# ---------------------------------------------------------------------------
# Qualifier operators
# ---------------------------------------------------------------------------


class _QOp:
    __slots__ = ()

    def test(self, rt: PlanRuntime, node) -> bool:
        raise NotImplementedError

    def test_row(self, rt: PlanRuntime, row: int) -> bool:
        """Columnar qualification of one candidate row; nested paths
        run through the columnar kernels."""
        raise NotImplementedError


class BoolQOp(_QOp):
    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = value

    def test(self, rt, node):
        return self.value

    def test_row(self, rt, row):
        return self.value


class ExistsQOp(_QOp):
    __slots__ = ("path",)

    def __init__(self, path: _Op):
        self.path = path

    def test(self, rt, node):
        passed = bool(self.path.run(rt, [node]))
        if rt.profile is not None:
            rt.profile.record(self, 1, 1 if passed else 0)
        return passed

    def test_row(self, rt, row):
        passed = bool(self.path.run_rows(rt, [row]))
        if rt.profile is not None:
            rt.profile.record(self, 1, 1 if passed else 0)
        return passed


class EqualsQOp(_QOp):
    __slots__ = ("path", "value")

    def __init__(self, path: _Op, value):
        self.path = path
        self.value = value

    def test(self, rt, node):
        value = self.value
        if isinstance(value, Param):
            raise XPathEvaluationError(
                "unbound parameter $%s during evaluation" % value.name
            )
        passed = False
        for selected in self.path.run(rt, [node]):
            rt.visits += 1
            if selected.string_value() == value:
                passed = True
                break
        if rt.profile is not None:
            rt.profile.record(self, 1, 1 if passed else 0)
        return passed

    def test_row(self, rt, row):
        value = self.value
        if isinstance(value, Param):
            raise XPathEvaluationError(
                "unbound parameter $%s during evaluation" % value.name
            )
        store = rt.store
        passed = False
        for selected in self.path.run_rows(rt, [row]):
            rt.visits += 1
            if selected == VIRTUAL_ROW:
                selected = 0  # the virtual node's string-value is the root's
            if store.string_value(selected) == value:
                passed = True
                break
        if rt.profile is not None:
            rt.profile.record(self, 1, 1 if passed else 0)
        return passed


class AttrQOp(_QOp):
    __slots__ = ("path", "name")

    def __init__(self, path: _Op, name: str):
        self.path = path
        self.name = name

    def test(self, rt, node):
        name = self.name
        passed = False
        for selected in self.path.run(rt, [node]):
            rt.visits += 1
            if selected.is_element and name in selected.attributes:
                passed = True
                break
        if rt.profile is not None:
            rt.profile.record(self, 1, 1 if passed else 0)
        return passed

    def test_row(self, rt, row):
        name = self.name
        store = rt.store
        nodes = store.nodes
        label_ids = store.label_ids
        text_label_id = store.text_label_id
        passed = False
        for selected in self.path.run_rows(rt, [row]):
            rt.visits += 1
            if (
                selected != VIRTUAL_ROW  # the virtual node has no attributes
                and label_ids[selected] != text_label_id
                and name in nodes[selected].attributes
            ):
                passed = True
                break
        if rt.profile is not None:
            rt.profile.record(self, 1, 1 if passed else 0)
        return passed


class AttrEqualsQOp(_QOp):
    __slots__ = ("path", "name", "value")

    def __init__(self, path: _Op, name: str, value):
        self.path = path
        self.name = name
        self.value = value

    def test(self, rt, node):
        value = self.value
        if isinstance(value, Param):
            raise XPathEvaluationError(
                "unbound parameter $%s during evaluation" % value.name
            )
        name = self.name
        passed = False
        for selected in self.path.run(rt, [node]):
            rt.visits += 1
            if (
                selected.is_element
                and selected.attributes.get(name) == value
            ):
                passed = True
                break
        if rt.profile is not None:
            rt.profile.record(self, 1, 1 if passed else 0)
        return passed

    def test_row(self, rt, row):
        value = self.value
        if isinstance(value, Param):
            raise XPathEvaluationError(
                "unbound parameter $%s during evaluation" % value.name
            )
        name = self.name
        store = rt.store
        nodes = store.nodes
        label_ids = store.label_ids
        text_label_id = store.text_label_id
        passed = False
        for selected in self.path.run_rows(rt, [row]):
            rt.visits += 1
            if (
                selected != VIRTUAL_ROW
                and label_ids[selected] != text_label_id
                and nodes[selected].attributes.get(name) == value
            ):
                passed = True
                break
        if rt.profile is not None:
            rt.profile.record(self, 1, 1 if passed else 0)
        return passed


class AndQOp(_QOp):
    __slots__ = ("left", "right")

    def __init__(self, left: _QOp, right: _QOp):
        self.left = left
        self.right = right

    def test(self, rt, node):
        if not self.left.test(rt, node):
            if rt.profile is not None:
                rt.profile.short_circuit(self)
            return False
        return self.right.test(rt, node)

    def test_row(self, rt, row):
        if not self.left.test_row(rt, row):
            if rt.profile is not None:
                rt.profile.short_circuit(self)
            return False
        return self.right.test_row(rt, row)


class OrQOp(_QOp):
    __slots__ = ("left", "right")

    def __init__(self, left: _QOp, right: _QOp):
        self.left = left
        self.right = right

    def test(self, rt, node):
        if self.left.test(rt, node):
            if rt.profile is not None:
                rt.profile.short_circuit(self)
            return True
        return self.right.test(rt, node)

    def test_row(self, rt, row):
        if self.left.test_row(rt, row):
            if rt.profile is not None:
                rt.profile.short_circuit(self)
            return True
        return self.right.test_row(rt, row)


class NotQOp(_QOp):
    __slots__ = ("inner",)

    def __init__(self, inner: _QOp):
        self.inner = inner

    def test(self, rt, node):
        return not self.inner.test(rt, node)

    def test_row(self, rt, row):
        return not self.inner.test_row(rt, row)


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

# NOTE: stateless operators (SelfOp, WildcardOp, ...) used to be shared
# module singletons; compilation now allocates fresh instances so that
# profile collectors — which key operator stats by identity — attribute
# work to one plan position each.  Plans are cached, so the extra
# allocations happen once per distinct query.


def _compile_path(path: Path) -> _Op:
    if isinstance(path, Empty):
        return EmptyOp()
    if isinstance(path, EpsilonPath):
        return SelfOp()
    if isinstance(path, Label):
        return LabelOp(path.name)
    if isinstance(path, Wildcard):
        return WildcardOp()
    if isinstance(path, TextStep):
        return TextOp()
    if isinstance(path, Parent):
        return ParentOp()
    if isinstance(path, Slash):
        return SlashOp(_compile_path(path.left), _compile_path(path.right))
    if isinstance(path, Descendant):
        label, qualifiers = _peel_label(path.inner)
        return DescendantOp(
            _compile_path(path.inner),
            label,
            [_compile_qualifier(qualifier) for qualifier in qualifiers],
        )
    if isinstance(path, Union):
        return UnionOp(_compile_path(branch) for branch in path.branches)
    if isinstance(path, Qualified):
        return FilterOp(
            _compile_path(path.path), _compile_qualifier(path.qualifier)
        )
    if isinstance(path, Absolute):
        return AbsoluteOp(_compile_path(path.inner))
    raise XPathEvaluationError("unknown path node %r" % path)


def _compile_qualifier(qualifier: Qualifier) -> _QOp:
    if isinstance(qualifier, QBool):
        return BoolQOp(qualifier.value)
    if isinstance(qualifier, QPath):
        return ExistsQOp(_compile_path(qualifier.path))
    if isinstance(qualifier, QEquals):
        return EqualsQOp(_compile_path(qualifier.path), qualifier.value)
    if isinstance(qualifier, QAttr):
        return AttrQOp(_compile_path(qualifier.path), qualifier.name)
    if isinstance(qualifier, QAttrEquals):
        return AttrEqualsQOp(
            _compile_path(qualifier.path), qualifier.name, qualifier.value
        )
    if isinstance(qualifier, QAnd):
        return AndQOp(
            _compile_qualifier(qualifier.left),
            _compile_qualifier(qualifier.right),
        )
    if isinstance(qualifier, QOr):
        return OrQOp(
            _compile_qualifier(qualifier.left),
            _compile_qualifier(qualifier.right),
        )
    if isinstance(qualifier, QNot):
        return NotQOp(_compile_qualifier(qualifier.inner))
    raise XPathEvaluationError("unknown qualifier node %r" % qualifier)


class CompiledPlan:
    """An executable plan for one :class:`~repro.xpath.ast.Path`.

    A plan is immutable and document-independent: compile once per
    (rewritten, optimized) query, execute against any document, with
    or without an attached index."""

    __slots__ = ("path", "_op", "operator_count")

    def __init__(self, path: Path):
        self.path = path
        self._op = _compile_path(path)
        self.operator_count = _count_ops(self._op)

    def __repr__(self):
        return "CompiledPlan(%s, operators=%d)" % (
            self.path,
            self.operator_count,
        )

    def profile(self, collector: ProfileCollector) -> ProfileNode:
        """The EXPLAIN ANALYZE tree of this plan: its operator tree
        annotated with the stats ``collector`` gathered during
        execution(s) run with ``PlanRuntime(profile=collector)``."""
        return build_profile_node(self._op, collector)

    def execute(
        self,
        context,
        index=None,
        ordered: bool = False,
        runtime: Optional[PlanRuntime] = None,
        store=None,
    ) -> List:
        """Evaluate the plan at a context node (or list of nodes).

        Pass a :class:`PlanRuntime` to share visit accounting (and an
        index or columnar store) across several plan executions;
        otherwise a fresh runtime wrapping ``index``/``store`` is used.

        With a :class:`~repro.xmlmodel.store.NodeTable` attached the
        plan runs on the columnar backend — set-at-a-time kernels over
        sorted row frontiers — and falls back to the object backend
        for contexts the store does not cover (e.g. nodes of a
        different tree)."""
        rt = runtime if runtime is not None else PlanRuntime(index, store)
        contexts = context if isinstance(context, list) else [context]
        if rt.store is not None:
            rows = self._rows_for(rt.store, contexts)
            if rows is not None:
                nodes = rt.store.nodes
                return [
                    nodes[row]
                    for row in self._op.run_rows(rt, rows)
                    if row != VIRTUAL_ROW
                ]
            # a context outside the store's tree: the whole execution
            # falls back to the object backend (observable — it is the
            # usual reason a "columnar" run is unexpectedly slow)
            if rt.profile is not None:
                rt.profile.event("object-backend-fallback")
            _metric_record("columnar.object_backend_fallbacks")
        results = self._op.run(rt, contexts)
        results = [
            node
            for node in results
            if not isinstance(node, _VirtualDocumentNode)
        ]
        if ordered and results:
            results = self._order(results, rt.index)
        return results

    @staticmethod
    def _rows_for(store, contexts) -> Optional[List[int]]:
        """Map context nodes to a sorted duplicate-free row frontier;
        ``None`` when any context lies outside the store's tree (the
        caller then falls back to the object backend)."""
        rows = set()
        for node in contexts:
            if isinstance(node, _VirtualDocumentNode):
                root = node.children[0]
                if store.row(root) != 0:
                    return None
                rows.add(VIRTUAL_ROW)
            else:
                row = store.row(node)
                if row is None:
                    return None
                rows.add(row)
        return sorted(rows)

    @staticmethod
    def _order(results: List, index) -> List:
        if index is not None and all(index.covers(node) for node in results):
            return index.document_order_sort(results)
        return _document_order(results)


# ---------------------------------------------------------------------------
# Profiling support (EXPLAIN ANALYZE)
# ---------------------------------------------------------------------------


def _describe_op(op):
    """``(name, detail)`` labels of one operator for profile trees."""
    if isinstance(op, LabelOp):
        return ("child", op.name)
    if isinstance(op, WildcardOp):
        return ("child", "*")
    if isinstance(op, TextOp):
        return ("text()", "")
    if isinstance(op, ParentOp):
        return ("parent", "..")
    if isinstance(op, SelfOp):
        return ("self", ".")
    if isinstance(op, EmptyOp):
        return ("empty", "")
    if isinstance(op, SlashOp):
        return ("slash", "")
    if isinstance(op, DescendantOp):
        if op.fast_label is not None:
            return ("descendant", "//" + op.fast_label)
        return ("descendant", "//(generic)")
    if isinstance(op, UnionOp):
        return ("union", "%d branches" % len(op.branches))
    if isinstance(op, FilterOp):
        return ("filter", "")
    if isinstance(op, AbsoluteOp):
        return ("absolute", "/")
    if isinstance(op, BoolQOp):
        return ("q:bool", "true" if op.value else "false")
    if isinstance(op, ExistsQOp):
        return ("q:exists", "")
    if isinstance(op, EqualsQOp):
        return ("q:equals", "= %r" % (op.value,))
    if isinstance(op, AttrQOp):
        return ("q:attr", "@" + op.name)
    if isinstance(op, AttrEqualsQOp):
        return ("q:attr-equals", "@%s = %r" % (op.name, op.value))
    if isinstance(op, AndQOp):
        return ("q:and", "")
    if isinstance(op, OrQOp):
        return ("q:or", "")
    if isinstance(op, NotQOp):
        return ("q:not", "")
    return (type(op).__name__, "")


def _op_children(op):
    """Sub-operators in display order (mirrors execution structure)."""
    if isinstance(op, SlashOp):
        return (op.left, op.right)
    if isinstance(op, DescendantOp):
        # the peeled fast shape runs ``fast_qualifiers`` directly; the
        # generic ``inner`` path runs when no fast path applies — both
        # are shown, unexecuted branches render without sample counts
        if op.fast_qualifiers:
            return (op.inner,) + op.fast_qualifiers
        return (op.inner,)
    if isinstance(op, UnionOp):
        return op.branches
    if isinstance(op, FilterOp):
        return (op.path, op.qualifier)
    if isinstance(op, AbsoluteOp):
        return (op.inner,)
    if isinstance(op, (ExistsQOp, EqualsQOp, AttrQOp, AttrEqualsQOp)):
        return (op.path,)
    if isinstance(op, (AndQOp, OrQOp)):
        return (op.left, op.right)
    if isinstance(op, NotQOp):
        return (op.inner,)
    return ()


def build_profile_node(op, collector: ProfileCollector) -> ProfileNode:
    """Pair one operator subtree with its collected execution stats."""
    name, detail = _describe_op(op)
    return ProfileNode(
        name,
        detail,
        collector.lookup(op),
        [build_profile_node(child, collector) for child in _op_children(op)],
    )


def _count_ops(op) -> int:
    count = 1
    for slot in getattr(type(op), "__slots__", ()):
        value = getattr(op, slot)
        if isinstance(value, (_Op, _QOp)):
            count += _count_ops(value)
        elif isinstance(value, tuple):
            count += sum(
                _count_ops(item)
                for item in value
                if isinstance(item, (_Op, _QOp))
            )
    return count


def compile_path(path: Path) -> CompiledPlan:
    """Compile ``path`` into an executable :class:`CompiledPlan`."""
    return CompiledPlan(path)
