"""Compiled query plans: executable operator trees for fragment ``C``.

The interpreter in :mod:`repro.xpath.evaluator` re-dispatches on AST
node types at every step of every evaluation.  On the serving path the
same rewritten/optimized query runs over and over (the engine's plan
cache amortizes rewriting per policy, not per request), so this module
compiles a :class:`~repro.xpath.ast.Path` once into a tree of step
*operators* whose dispatch is resolved ahead of time.

Design constraints:

* **Semantics parity.**  Each operator mirrors the corresponding
  interpreter branch exactly — including duplicate elimination by node
  identity, discovery order, and the ``visits`` work counter the
  benchmark harness relies on.  ``CompiledPlan.execute`` and
  ``XPathEvaluator.evaluate`` return identical node lists *and*
  identical visit counts for the same input.
* **Index awareness.**  A plan is compiled once and executed against
  many documents.  Whether a :class:`~repro.xmlmodel.index.DocumentIndex`
  is available is a property of the *execution*, not the plan: the
  descendant operator precomputes its ``//label`` fast-path shape at
  compile time and consults the runtime's index when one is attached,
  falling back to a subtree walk otherwise (or when a context node
  lies outside the indexed tree).
* **Shared accounting.**  A single :class:`PlanRuntime` may be passed
  through several ``execute`` calls (the engine's projected evaluation
  runs one plan per view target); ``visits`` accumulates across them.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import XPathEvaluationError
from repro.xpath.ast import (
    Absolute,
    Descendant,
    Empty,
    EpsilonPath,
    Label,
    Param,
    Parent,
    Path,
    QAnd,
    QAttr,
    QAttrEquals,
    QBool,
    QEquals,
    QNot,
    QOr,
    QPath,
    Qualified,
    Qualifier,
    Slash,
    TextStep,
    Union,
    Wildcard,
)
from repro.xpath.evaluator import (
    _VirtualDocumentNode,
    _document_order,
    _peel_label,
)


class PlanRuntime:
    """Per-execution state: the optional document index and the
    accumulated node-visit counter."""

    __slots__ = ("index", "visits")

    def __init__(self, index=None):
        self.index = index
        self.visits = 0

    def reset_counters(self) -> None:
        self.visits = 0


# ---------------------------------------------------------------------------
# Path operators
# ---------------------------------------------------------------------------


class _Op:
    __slots__ = ()

    def run(self, rt: PlanRuntime, contexts: List) -> List:
        raise NotImplementedError


class EmptyOp(_Op):
    __slots__ = ()

    def run(self, rt, contexts):
        return []


class SelfOp(_Op):
    """``.`` — the epsilon path."""

    __slots__ = ()

    def run(self, rt, contexts):
        return contexts


class LabelOp(_Op):
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def run(self, rt, contexts):
        name = self.name
        results: List = []
        seen = set()
        for node in contexts:
            if node.is_text:
                continue
            for child in node.children:
                rt.visits += 1
                if (
                    child.is_element
                    and child.label == name
                    and id(child) not in seen
                ):
                    seen.add(id(child))
                    results.append(child)
        return results


class WildcardOp(_Op):
    __slots__ = ()

    def run(self, rt, contexts):
        results: List = []
        seen = set()
        for node in contexts:
            if node.is_text:
                continue
            for child in node.children:
                rt.visits += 1
                if child.is_element and id(child) not in seen:
                    seen.add(id(child))
                    results.append(child)
        return results


class TextOp(_Op):
    __slots__ = ()

    def run(self, rt, contexts):
        results: List = []
        seen = set()
        for node in contexts:
            if node.is_text:
                continue
            for child in node.children:
                rt.visits += 1
                if child.is_text and id(child) not in seen:
                    seen.add(id(child))
                    results.append(child)
        return results


class ParentOp(_Op):
    __slots__ = ()

    def run(self, rt, contexts):
        results: List = []
        seen = set()
        for node in contexts:
            parent = node.parent
            rt.visits += 1
            if (
                parent is not None
                and not isinstance(parent, _VirtualDocumentNode)
                and id(parent) not in seen
            ):
                seen.add(id(parent))
                results.append(parent)
        return results


class SlashOp(_Op):
    __slots__ = ("left", "right")

    def __init__(self, left: _Op, right: _Op):
        self.left = left
        self.right = right

    def run(self, rt, contexts):
        return self.right.run(rt, self.left.run(rt, contexts))


class DescendantOp(_Op):
    """``//p``: walks descendant-or-self, or — when the inner path has
    the ``label[q1][q2]...`` shape and an index is attached — answers
    via two binary searches per context."""

    __slots__ = ("inner", "fast_label", "fast_qualifiers")

    def __init__(self, inner: _Op, fast_label: Optional[str], fast_qualifiers):
        self.inner = inner
        self.fast_label = fast_label
        self.fast_qualifiers = tuple(fast_qualifiers)

    def run(self, rt, contexts):
        if rt.index is not None and self.fast_label is not None:
            fast = self._fast(rt, contexts)
            if fast is not None:
                return fast
        return self.inner.run(rt, self._descendants_or_self(rt, contexts))

    def _fast(self, rt, contexts):
        index = rt.index
        label = self.fast_label
        ordered = []
        seen = set()
        for node in contexts:
            if node.is_text:
                continue
            if isinstance(node, _VirtualDocumentNode):
                root = node.children[0]
                if not index.covers(root):
                    return None
                hits = index.descendants_with_label(root, label)
                if root.label == label:
                    hits = [root] + hits
            elif not index.covers(node):
                return None  # context outside the indexed tree
            else:
                hits = index.descendants_with_label(node, label)
            for element in hits:
                position = index.position(element)
                if position not in seen:
                    seen.add(position)
                    ordered.append((position, element))
        rt.visits += len(ordered)
        ordered.sort(key=lambda pair: pair[0])
        results = [element for _, element in ordered]
        for qualifier in self.fast_qualifiers:
            results = [
                element
                for element in results
                if qualifier.test(rt, element)
            ]
        return results

    @staticmethod
    def _descendants_or_self(rt, contexts):
        results: List = []
        seen = set()
        for origin in contexts:
            if origin.is_text:
                continue
            if id(origin) in seen:
                continue
            stack = [origin]
            while stack:
                node = stack.pop()
                if id(node) in seen:
                    continue
                seen.add(id(node))
                results.append(node)
                rt.visits += 1
                for child in reversed(node.children):
                    if child.is_element:
                        stack.append(child)
        return results


class UnionOp(_Op):
    __slots__ = ("branches",)

    def __init__(self, branches):
        self.branches = tuple(branches)

    def run(self, rt, contexts):
        merged: List = []
        seen = set()
        for branch in self.branches:
            for node in branch.run(rt, contexts):
                if id(node) not in seen:
                    seen.add(id(node))
                    merged.append(node)
        return merged


class FilterOp(_Op):
    """``p[q]``."""

    __slots__ = ("path", "qualifier")

    def __init__(self, path: _Op, qualifier: "_QOp"):
        self.path = path
        self.qualifier = qualifier

    def run(self, rt, contexts):
        qualifier = self.qualifier
        return [
            node
            for node in self.path.run(rt, contexts)
            if not node.is_text and qualifier.test(rt, node)
        ]


class AbsoluteOp(_Op):
    __slots__ = ("inner",)

    def __init__(self, inner: _Op):
        self.inner = inner

    def run(self, rt, contexts):
        roots = []
        seen = set()
        for node in contexts:
            root = node
            while root.parent is not None:
                root = root.parent
            if id(root) not in seen:
                seen.add(id(root))
                roots.append(root)
        shims = [_VirtualDocumentNode(root) for root in roots]
        return self.inner.run(rt, shims)


# ---------------------------------------------------------------------------
# Qualifier operators
# ---------------------------------------------------------------------------


class _QOp:
    __slots__ = ()

    def test(self, rt: PlanRuntime, node) -> bool:
        raise NotImplementedError


class BoolQOp(_QOp):
    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = value

    def test(self, rt, node):
        return self.value


class ExistsQOp(_QOp):
    __slots__ = ("path",)

    def __init__(self, path: _Op):
        self.path = path

    def test(self, rt, node):
        return bool(self.path.run(rt, [node]))


class EqualsQOp(_QOp):
    __slots__ = ("path", "value")

    def __init__(self, path: _Op, value):
        self.path = path
        self.value = value

    def test(self, rt, node):
        value = self.value
        if isinstance(value, Param):
            raise XPathEvaluationError(
                "unbound parameter $%s during evaluation" % value.name
            )
        for selected in self.path.run(rt, [node]):
            rt.visits += 1
            if selected.string_value() == value:
                return True
        return False


class AttrQOp(_QOp):
    __slots__ = ("path", "name")

    def __init__(self, path: _Op, name: str):
        self.path = path
        self.name = name

    def test(self, rt, node):
        name = self.name
        for selected in self.path.run(rt, [node]):
            rt.visits += 1
            if selected.is_element and name in selected.attributes:
                return True
        return False


class AttrEqualsQOp(_QOp):
    __slots__ = ("path", "name", "value")

    def __init__(self, path: _Op, name: str, value):
        self.path = path
        self.name = name
        self.value = value

    def test(self, rt, node):
        value = self.value
        if isinstance(value, Param):
            raise XPathEvaluationError(
                "unbound parameter $%s during evaluation" % value.name
            )
        name = self.name
        for selected in self.path.run(rt, [node]):
            rt.visits += 1
            if (
                selected.is_element
                and selected.attributes.get(name) == value
            ):
                return True
        return False


class AndQOp(_QOp):
    __slots__ = ("left", "right")

    def __init__(self, left: _QOp, right: _QOp):
        self.left = left
        self.right = right

    def test(self, rt, node):
        return self.left.test(rt, node) and self.right.test(rt, node)


class OrQOp(_QOp):
    __slots__ = ("left", "right")

    def __init__(self, left: _QOp, right: _QOp):
        self.left = left
        self.right = right

    def test(self, rt, node):
        return self.left.test(rt, node) or self.right.test(rt, node)


class NotQOp(_QOp):
    __slots__ = ("inner",)

    def __init__(self, inner: _QOp):
        self.inner = inner

    def test(self, rt, node):
        return not self.inner.test(rt, node)


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

_EMPTY_OP = EmptyOp()
_SELF_OP = SelfOp()
_WILDCARD_OP = WildcardOp()
_TEXT_OP = TextOp()
_PARENT_OP = ParentOp()
_TRUE_OP = BoolQOp(True)
_FALSE_OP = BoolQOp(False)


def _compile_path(path: Path) -> _Op:
    if isinstance(path, Empty):
        return _EMPTY_OP
    if isinstance(path, EpsilonPath):
        return _SELF_OP
    if isinstance(path, Label):
        return LabelOp(path.name)
    if isinstance(path, Wildcard):
        return _WILDCARD_OP
    if isinstance(path, TextStep):
        return _TEXT_OP
    if isinstance(path, Parent):
        return _PARENT_OP
    if isinstance(path, Slash):
        return SlashOp(_compile_path(path.left), _compile_path(path.right))
    if isinstance(path, Descendant):
        label, qualifiers = _peel_label(path.inner)
        return DescendantOp(
            _compile_path(path.inner),
            label,
            [_compile_qualifier(qualifier) for qualifier in qualifiers],
        )
    if isinstance(path, Union):
        return UnionOp(_compile_path(branch) for branch in path.branches)
    if isinstance(path, Qualified):
        return FilterOp(
            _compile_path(path.path), _compile_qualifier(path.qualifier)
        )
    if isinstance(path, Absolute):
        return AbsoluteOp(_compile_path(path.inner))
    raise XPathEvaluationError("unknown path node %r" % path)


def _compile_qualifier(qualifier: Qualifier) -> _QOp:
    if isinstance(qualifier, QBool):
        return _TRUE_OP if qualifier.value else _FALSE_OP
    if isinstance(qualifier, QPath):
        return ExistsQOp(_compile_path(qualifier.path))
    if isinstance(qualifier, QEquals):
        return EqualsQOp(_compile_path(qualifier.path), qualifier.value)
    if isinstance(qualifier, QAttr):
        return AttrQOp(_compile_path(qualifier.path), qualifier.name)
    if isinstance(qualifier, QAttrEquals):
        return AttrEqualsQOp(
            _compile_path(qualifier.path), qualifier.name, qualifier.value
        )
    if isinstance(qualifier, QAnd):
        return AndQOp(
            _compile_qualifier(qualifier.left),
            _compile_qualifier(qualifier.right),
        )
    if isinstance(qualifier, QOr):
        return OrQOp(
            _compile_qualifier(qualifier.left),
            _compile_qualifier(qualifier.right),
        )
    if isinstance(qualifier, QNot):
        return NotQOp(_compile_qualifier(qualifier.inner))
    raise XPathEvaluationError("unknown qualifier node %r" % qualifier)


class CompiledPlan:
    """An executable plan for one :class:`~repro.xpath.ast.Path`.

    A plan is immutable and document-independent: compile once per
    (rewritten, optimized) query, execute against any document, with
    or without an attached index."""

    __slots__ = ("path", "_op", "operator_count")

    def __init__(self, path: Path):
        self.path = path
        self._op = _compile_path(path)
        self.operator_count = _count_ops(self._op)

    def __repr__(self):
        return "CompiledPlan(%s, operators=%d)" % (
            self.path,
            self.operator_count,
        )

    def execute(
        self,
        context,
        index=None,
        ordered: bool = False,
        runtime: Optional[PlanRuntime] = None,
    ) -> List:
        """Evaluate the plan at a context node (or list of nodes).

        Pass a :class:`PlanRuntime` to share visit accounting (and an
        index) across several plan executions; otherwise a fresh
        runtime wrapping ``index`` is used."""
        rt = runtime if runtime is not None else PlanRuntime(index)
        contexts = context if isinstance(context, list) else [context]
        results = self._op.run(rt, contexts)
        results = [
            node
            for node in results
            if not isinstance(node, _VirtualDocumentNode)
        ]
        if ordered and results:
            results = self._order(results, rt.index)
        return results

    @staticmethod
    def _order(results: List, index) -> List:
        if index is not None and all(index.covers(node) for node in results):
            return index.document_order_sort(results)
        return _document_order(results)


def _count_ops(op) -> int:
    count = 1
    for slot in getattr(type(op), "__slots__", ()):
        value = getattr(op, slot)
        if isinstance(value, (_Op, _QOp)):
            count += _count_ops(value)
        elif isinstance(value, tuple):
            count += sum(
                _count_ops(item)
                for item in value
                if isinstance(item, (_Op, _QOp))
            )
    return count


def compile_path(path: Path) -> CompiledPlan:
    """Compile ``path`` into an executable :class:`CompiledPlan`."""
    return CompiledPlan(path)
