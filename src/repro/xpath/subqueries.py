"""Enumeration of sub-queries in "ascending" order.

Algorithm ``rewrite`` (Fig. 6) iterates over "the list of all
sub-queries of p in ascending order, such that all sub-queries of p'
(i.e., its descendants in p's parse tree) precede p'".  That is a
deduplicated postorder of the parse tree; structurally identical
sub-queries occurring at several positions share one entry (and hence
one dynamic-programming cell).
"""

from __future__ import annotations

from typing import List

from repro.xpath.ast import Path, Qualifier, _Node


def ascending_subqueries(query: Path) -> List[_Node]:
    """All distinct sub-queries (paths and qualifiers) of ``query``,
    children before parents, ending with ``query`` itself."""
    ordered: List[_Node] = []
    seen = set()
    for node in query.iter_nodes():
        if node not in seen:
            seen.add(node)
            ordered.append(node)
    return ordered


def path_subqueries(query: Path) -> List[Path]:
    """Only the path-typed sub-queries, ascending."""
    return [
        node for node in ascending_subqueries(query) if isinstance(node, Path)
    ]


def qualifier_subqueries(query: Path) -> List[Qualifier]:
    """Only the qualifier-typed sub-queries, ascending."""
    return [
        node
        for node in ascending_subqueries(query)
        if isinstance(node, Qualifier)
    ]
