"""Shared fixtures: the paper's hospital running example and the
reconstructed Adex workload of Section 6."""

import pytest

from repro.core.derive import derive
from repro.core.spec import AccessSpec
from repro.dtd.generator import DocumentGenerator
from repro.workloads.adex import adex_document, adex_dtd, adex_spec
from repro.workloads.hospital import (
    hospital_document,
    hospital_dtd,
    nurse_spec,
)


@pytest.fixture(scope="session")
def hospital():
    """The hospital document DTD of Fig. 1."""
    return hospital_dtd()


@pytest.fixture(scope="session")
def nurse(hospital):
    """The nurse spec of Fig. 4 with $wardNo bound to "2"."""
    return nurse_spec(hospital).bind(wardNo="2")


@pytest.fixture(scope="session")
def nurse_view(nurse):
    """The derived security view of Example 3.2."""
    return derive(nurse)


@pytest.fixture()
def hospital_doc():
    """A mid-sized conforming hospital document (seed chosen to carry
    both ward-2 and other-ward patients, trials and regulars)."""
    return hospital_document(seed=7, max_branch=4)


@pytest.fixture(scope="session")
def adex():
    return adex_dtd()


@pytest.fixture(scope="session")
def adex_policy(adex):
    return adex_spec(adex)


@pytest.fixture(scope="session")
def adex_view(adex_policy):
    return derive(adex_policy)


@pytest.fixture()
def adex_doc():
    return adex_document(seed=1, buyers=12, ads=48)


@pytest.fixture(scope="session")
def recursive_dtd():
    """The recursive DTD family of Fig. 7(b)/(c): r -> a, a -> (b|c),
    c -> a, with a and c hidden."""
    from repro.dtd.parser import parse_dtd

    return parse_dtd(
        """
        <!ELEMENT r (a)>
        <!ELEMENT a (b | c)>
        <!ELEMENT c (a)>
        <!ELEMENT b (#PCDATA)>
        """
    )


@pytest.fixture(scope="session")
def recursive_spec(recursive_dtd):
    spec = AccessSpec(recursive_dtd, name="rec")
    spec.annotate("r", "a", "N")
    spec.annotate("a", "b", "Y")
    return spec


@pytest.fixture(scope="session")
def recursive_view(recursive_spec):
    return derive(recursive_spec)


def make_recursive_doc(recursive_dtd, seed=3, max_depth=11):
    return DocumentGenerator(
        recursive_dtd, seed=seed, max_depth=max_depth
    ).generate()
