"""Integration tests for the Section 6 experimental workload: the
exact query transformations quoted in the paper, and the performance
*shape* of Table 1 in machine-independent node visits."""

import pytest

from repro.core.accessibility import annotate_accessibility
from repro.core.derive import derive
from repro.core.naive import naive_rewrite
from repro.core.optimize import Optimizer
from repro.core.rewrite import Rewriter
from repro.workloads.adex import adex_document
from repro.workloads.queries import (
    ADEX_EXPECTED_OPTIMIZED,
    ADEX_EXPECTED_REWRITES,
    ADEX_QUERIES,
)
from repro.xpath.evaluator import XPathEvaluator


@pytest.fixture(scope="module")
def rewriter(adex_view):
    return Rewriter(adex_view)


@pytest.fixture(scope="module")
def optimizer(adex):
    return Optimizer(adex)


class TestQuotedRewrites:
    """Every rewritten/optimized form Section 6 prints, verbatim."""

    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4"])
    def test_rewrite_matches_paper(self, rewriter, name):
        rewritten = rewriter.rewrite(ADEX_QUERIES[name])
        assert str(rewritten) == ADEX_EXPECTED_REWRITES[name]

    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4"])
    def test_optimize_matches_paper(self, rewriter, optimizer, name):
        rewritten = rewriter.rewrite(ADEX_QUERIES[name])
        optimized = optimizer.optimize(rewritten)
        expected = ADEX_EXPECTED_OPTIMIZED[name]
        if expected == "-":
            assert optimized == rewritten
        else:
            assert str(optimized) == expected

    def test_q2_apartment_branch_pruned(self, rewriter):
        # "the rewrite approach has simplified the second sub-expression
        #  to empty since the r-e.warranty element is not a sub-element
        #  of apartment"
        rewritten = str(rewriter.rewrite(ADEX_QUERIES["Q2"]))
        assert "apartment" not in rewritten

    def test_q4_evaluation_avoided(self, rewriter, optimizer):
        optimized = optimizer.optimize(rewriter.rewrite(ADEX_QUERIES["Q4"]))
        assert optimized.is_empty


class TestResultCorrectness:
    def test_all_approaches_agree_where_applicable(
        self, adex, adex_policy, adex_view, rewriter, optimizer
    ):
        document = adex_document(seed=9, buyers=15, ads=60)
        annotate_accessibility(document, adex_policy)
        evaluator = XPathEvaluator()
        for name, query in ADEX_QUERIES.items():
            rewritten = rewriter.rewrite(query)
            optimized = optimizer.optimize(rewritten)
            rewrite_ids = {
                id(node) for node in evaluator.evaluate(rewritten, document)
            }
            optimize_ids = {
                id(node) for node in evaluator.evaluate(optimized, document)
            }
            assert rewrite_ids == optimize_ids, name
            naive_ids = {
                id(node)
                for node in evaluator.evaluate(naive_rewrite(query), document)
            }
            # naive uses descendant axes: its result is a superset that
            # the annotation filter reduces back; on this DTD it agrees
            assert naive_ids == rewrite_ids, name

    def test_results_are_accessible_only(self, adex_policy, rewriter):
        from repro.core.accessibility import compute_accessibility

        document = adex_document(seed=10, buyers=10, ads=40)
        flags = compute_accessibility(document, adex_policy)
        evaluator = XPathEvaluator()
        for name, query in ADEX_QUERIES.items():
            for node in evaluator.evaluate(rewriter.rewrite(query), document):
                assert flags[id(node)], name


class TestTable1Shape:
    """Machine-independent reproduction of the Table 1 ordering:
    naive does far more work than rewrite; optimize does no more work
    than rewrite; Q4 becomes free."""

    @pytest.fixture(scope="class")
    def measurements(self, adex, adex_policy, adex_view):
        document = adex_document(seed=2, buyers=60, ads=240)
        annotate_accessibility(document, adex_policy)
        rewriter = Rewriter(adex_view)
        optimizer = Optimizer(adex)
        work = {}
        for name, query in ADEX_QUERIES.items():
            rewritten = rewriter.rewrite(query)
            optimized = optimizer.optimize(rewritten)
            row = {}
            for approach, plan in (
                ("naive", naive_rewrite(query)),
                ("rewrite", rewritten),
                ("optimize", optimized),
            ):
                evaluator = XPathEvaluator()
                evaluator.evaluate(plan, document)
                row[approach] = evaluator.visits
            work[name] = row
        return work

    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4"])
    def test_naive_much_slower_than_rewrite(self, measurements, name):
        row = measurements[name]
        assert row["naive"] > 5 * row["rewrite"], row

    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4"])
    def test_optimize_never_worse(self, measurements, name):
        row = measurements[name]
        assert row["optimize"] <= row["rewrite"], row

    def test_q3_improved_by_optimize(self, measurements):
        row = measurements["Q3"]
        assert row["optimize"] < row["rewrite"]

    def test_q4_free_under_optimize(self, measurements):
        assert measurements["Q4"]["optimize"] == 0
