"""Smoke-run the benchmark suite so bench scripts cannot rot silently.

``benchmarks/conftest.py`` defines ``--quick``: tiny documents (scale
0.02), pytest-benchmark timing disabled, every benchmarked callable
executed exactly once.  The whole suite runs in a couple of seconds,
which is cheap enough for tier-1.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_benchmarks_quick_smoke():
    source_root = str(REPO_ROOT / "src")
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        source_root + os.pathsep + existing if existing else source_root
    )
    # each bench module must at least be collected; a syntax error or a
    # renamed fixture fails the subprocess run
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "benchmarks",
            "--quick",
            "-q",
            "-p",
            "no:cacheprovider",
        ],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        "benchmark smoke run failed:\n%s\n%s"
        % (completed.stdout, completed.stderr)
    )
