"""The security canary end-to-end: at sample rate 1.0 a correct
engine produces zero violations across both workloads, and an
engine with a deliberately poisoned plan cache (a mis-rewritten
query that leaks inaccessible names) makes the canary fire."""

import pytest

from repro.core.engine import SecureQueryEngine
from repro.core.options import ExecutionOptions
from repro.obs.events import RingBufferSink
from repro.workloads.adex import adex_document, adex_dtd, adex_spec
from repro.workloads.hospital import (
    doctor_spec,
    hospital_document,
    hospital_dtd,
    nurse_spec,
)
from repro.workloads.queries import ADEX_QUERY_TEXTS
from repro.xpath.parser import parse_xpath
from repro.xpath.plan import compile_path

NURSE_QUERIES = [
    "//patient/name",
    "//patient//bill",
    "//dummy2/medication",
    "//patient[treatment/dummy1]/name",
    "//staffInfo//doctor | //staffInfo//nurse",
    "//name/text()",
]

DOCTOR_QUERIES = [
    "//clinicalTrial//name",
    "//patient/name",
    "//treatment/trial/bill",
]


def hospital_engine():
    dtd = hospital_dtd()
    engine = SecureQueryEngine(dtd)
    engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
    engine.register_policy("doctor", doctor_spec(dtd))
    return engine


class TestZeroViolations:
    @pytest.mark.parametrize("strategy", ["virtual", "columnar"])
    def test_hospital_workload_is_clean(self, strategy):
        engine = hospital_engine()
        ring = engine.add_sink(RingBufferSink(capacity=256))
        canary = engine.enable_canary(sample_rate=1.0)
        options = ExecutionOptions(strategy=strategy)
        for seed in (0, 7, 13):
            document = hospital_document(seed=seed, max_branch=4)
            for query in NURSE_QUERIES:
                engine.query("nurse", query, document, options=options)
            for query in DOCTOR_QUERIES:
                engine.query("doctor", query, document, options=options)
        checks = ring.events(kind="canary")
        expected = 3 * (len(NURSE_QUERIES) + len(DOCTOR_QUERIES))
        assert len(checks) == expected
        assert all(event.ok for event in checks)
        assert canary.checks == expected and canary.violations == 0

    def test_adex_workload_is_clean(self):
        dtd = adex_dtd()
        engine = SecureQueryEngine(dtd)
        engine.register_policy("adex", adex_spec(dtd))
        ring = engine.add_sink(RingBufferSink(capacity=256))
        canary = engine.enable_canary(sample_rate=1.0)
        document = adex_document(seed=1, buyers=10, ads=30)
        for query in ADEX_QUERY_TEXTS.values():
            engine.query("adex", query, document)
        checks = ring.events(kind="canary")
        assert len(checks) == len(ADEX_QUERY_TEXTS)
        assert all(event.violations == 0 for event in checks)
        assert canary.violations == 0


class TestInjectedLeak:
    """Poison the warmed plan cache with a mis-rewritten query — the
    unqualified ``//name``, which reaches names in departments the
    nurse's ward predicate excludes — and verify the canary catches
    the resulting leak.  This is the failure mode the canary exists
    for: the engine still answers 'successfully', only the oracle
    comparison can tell the answer is wrong."""

    QUERY = "//patient/name"

    def poisoned_engine(self, document):
        engine = hospital_engine()
        ring = engine.add_sink(RingBufferSink(capacity=64))
        engine.enable_canary(sample_rate=1.0)
        # warm the cache so the compiled entry (and its per-target
        # projected plans) exist ...
        engine.query("nurse", self.QUERY, document)
        key = ("nurse", self.QUERY, True, None, "virtual", False)
        compiled = engine._plan_cache.get(key)
        assert compiled is not None and compiled.projected
        # ... then swap every projected plan for the leaky one,
        # keeping the (target, is_text) envelope intact
        leaky = compile_path(parse_xpath("//name"))
        compiled.projected = tuple(
            (target, is_text, leaky)
            for target, is_text, _ in compiled.projected
        )
        ring.clear()
        return engine, ring

    def test_canary_fires_on_leak(self):
        # seed 0: the nurse's view exposes 6 names, the raw document
        # holds 12 — the poisoned plan serves all of them
        document = hospital_document(seed=0, max_branch=4)
        engine, ring = self.poisoned_engine(document)
        results = engine.query("nurse", self.QUERY, document)
        (event,) = ring.events(kind="canary")
        assert not event.ok
        assert event.extra > 0
        assert event.violations == event.missing + event.extra
        assert event.actual_count == len(results) > event.expected_count
        assert engine.canary.violations > 0

    def test_clean_engine_same_document_is_quiet(self):
        # control: identical document and query, no poisoning
        document = hospital_document(seed=0, max_branch=4)
        engine = hospital_engine()
        ring = engine.add_sink(RingBufferSink(capacity=64))
        engine.enable_canary(sample_rate=1.0)
        engine.query("nurse", self.QUERY, document)
        (event,) = ring.events(kind="canary")
        assert event.ok and event.violations == 0

    def test_leak_shows_in_audit_stats(self):
        from repro.obs.audit import AuditLog

        document = hospital_document(seed=0, max_branch=4)
        engine, ring = self.poisoned_engine(document)
        engine.query("nurse", self.QUERY, document)
        stats = AuditLog.from_sink(ring).stats()
        assert stats["nurse"]["canary_violations"] > 0
