"""The chaos suite: fault plans at every instrumented seam, across
both workloads and every execution strategy.

The invariant under injected faults is *graceful*: each query either
answers **identically** to the fault-free baseline (a seam degraded)
or raises a **typed** :class:`~repro.errors.ReproError` — never an
unhandled exception, never a hang, and never a security-canary
violation.
"""

import pytest

from repro.core.engine import SecureQueryEngine
from repro.core.options import ExecutionOptions
from repro.errors import FaultInjected, ReproError
from repro.obs import RingBufferSink
from repro.robustness import FaultPlan, FaultSpec, FaultySink, QueryLimits
from repro.robustness.faults import SITES, active_plan
from repro.workloads.adex import adex_document, adex_dtd, adex_spec
from repro.workloads.hospital import hospital_document, hospital_dtd, nurse_spec
from repro.workloads.queries import ADEX_QUERY_TEXTS

pytestmark = pytest.mark.chaos

STRATEGIES = ["virtual", "columnar", "materialized"]

NURSE_QUERIES = [
    "//patient/name",
    "//patient//bill",
    "//patient[wardNo]/name",
    "//name/text()",
]


@pytest.fixture(autouse=True)
def no_leftover_plan():
    yield
    assert active_plan() is None, "a chaos test leaked an installed FaultPlan"


def run_workload(engine, policy, document, queries, strategy):
    """Run every query; return {query: [serialized results] or typed
    error code}.  Anything non-Repro propagates and fails the test."""
    outcomes = {}
    options = ExecutionOptions(strategy=strategy)
    for query in queries:
        try:
            result = engine.query(policy, query, document, options=options)
        except ReproError as error:
            outcomes[query] = error.code
        else:
            outcomes[query] = [str(r) for r in result.results]
    return outcomes


def hospital_setup():
    dtd = hospital_dtd()
    engine = SecureQueryEngine(dtd)
    engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
    document = hospital_document(seed=7, max_branch=4)
    return engine, "nurse", document, NURSE_QUERIES


def adex_setup():
    dtd = adex_dtd()
    engine = SecureQueryEngine(dtd)
    engine.register_policy("adex", adex_spec(dtd))
    document = adex_document(seed=1, buyers=12, ads=48)
    return engine, "adex", document, list(ADEX_QUERY_TEXTS.values())


WORKLOADS = {"hospital": hospital_setup, "adex": adex_setup}


class TestSeamFaults:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("site", sorted(SITES))
    def test_first_call_fault_is_graceful(self, workload, strategy, site):
        engine, policy, document, queries = WORKLOADS[workload]()
        baseline = run_workload(engine, policy, document, queries, strategy)

        engine, policy, document, queries = WORKLOADS[workload]()
        canary = engine.enable_canary(sample_rate=1.0)
        with FaultPlan(FaultSpec(site, at=1), name="chaos-%s" % site):
            chaotic = run_workload(engine, policy, document, queries, strategy)

        for query in queries:
            outcome = chaotic[query]
            if isinstance(outcome, str):
                # a typed error surfaced (e.g. materialize faults on the
                # materialized strategy propagate: no softer path exists)
                assert outcome == "E_FAULT"
            else:
                assert outcome == baseline[query]
        assert canary.violations == 0

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_every_call_faults_on_all_degradable_seams(self, workload, strategy):
        engine, policy, document, queries = WORKLOADS[workload]()
        baseline = run_workload(engine, policy, document, queries, strategy)

        engine, policy, document, queries = WORKLOADS[workload]()
        canary = engine.enable_canary(sample_rate=1.0)
        plan = FaultPlan(
            FaultSpec("store.build", every=1),
            FaultSpec("index.build", every=1),
            FaultSpec("plan_cache.get", every=1),
            FaultSpec("plan_cache.put", every=1),
            name="total-accelerator-outage",
        )
        with plan:
            chaotic = run_workload(engine, policy, document, queries, strategy)
        # every degradable accelerator down: answers must not change
        assert chaotic == baseline
        assert canary.violations == 0

    @pytest.mark.parametrize("site", ["store.build", "plan_cache.get"])
    def test_rate_faults_replay_deterministically(self, site):
        def one_run():
            engine, policy, document, queries = hospital_setup()
            plan = FaultPlan(FaultSpec(site, rate=0.5, seed=99))
            with plan:
                outcomes = run_workload(
                    engine, policy, document, queries, "columnar"
                )
            return outcomes, plan.fired()

        first, first_fired = one_run()
        second, second_fired = one_run()
        assert first == second
        assert first_fired == second_fired

    def test_latency_fault_with_deadline_still_terminates(self):
        engine, policy, document, queries = hospital_setup()
        options = ExecutionOptions(
            strategy="columnar",
            limits=QueryLimits(deadline_seconds=5.0),
        )
        with FaultPlan(FaultSpec("store.build", kind="latency",
                                 latency_seconds=0.01, every=1)):
            result = engine.query(policy, queries[0], document, options=options)
        assert isinstance(result.results, list)


class TestSinkFaults:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_faulty_sink_never_fails_queries(self, workload):
        engine, policy, document, queries = WORKLOADS[workload]()
        baseline = run_workload(engine, policy, document, queries, "virtual")

        engine, policy, document, queries = WORKLOADS[workload]()
        faulty = engine.add_sink(FaultySink())
        ring = engine.add_sink(RingBufferSink(capacity=256))
        canary = engine.enable_canary(sample_rate=1.0)
        chaotic = run_workload(engine, policy, document, queries, "virtual")

        assert chaotic == baseline
        assert canary.violations == 0
        # the pipeline swallowed every sink failure but kept counting
        assert faulty.raised == len(ring.events())
        assert engine.events.dropped == faulty.raised

    def test_faulty_sink_after_n_lets_early_events_through(self):
        engine, policy, document, queries = hospital_setup()
        sink = engine.add_sink(FaultySink(after=2))
        run_workload(engine, policy, document, queries, "virtual")
        assert sink.emitted == 2
        assert sink.raised >= 1


class TestFaultsComposeWithGovernor:
    def test_fault_during_governed_query(self):
        engine, policy, document, queries = hospital_setup()
        options = ExecutionOptions(
            strategy="columnar",
            limits=QueryLimits(deadline_seconds=30.0, max_visits=10**9),
        )
        baseline = engine.query(policy, queries[0], document)
        with FaultPlan(FaultSpec("store.build", at=1)):
            result = engine.query(policy, queries[0], document, options=options)
        assert [str(r) for r in result.results] == [
            str(r) for r in baseline.results
        ]

    def test_injected_error_is_typed(self):
        engine, policy, document, queries = hospital_setup()
        with FaultPlan(FaultSpec("materialize", at=1)):
            with pytest.raises(FaultInjected) as excinfo:
                engine.query(
                    policy,
                    queries[0],
                    document,
                    options=ExecutionOptions(strategy="materialized"),
                )
        assert excinfo.value.code == "E_FAULT"
