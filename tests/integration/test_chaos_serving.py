"""The serving-layer chaos suite.

The engine chaos suite (``test_chaos.py``) proves the *single-query*
invariant under injected faults; this suite proves the *serving*
invariants — across admission, batching, shedding, breakers, and
lifecycle — under the same deterministic :class:`FaultPlan` machinery,
now aimed at the serving seams (``admission.admit``,
``serving.resolve``, ``serving.execute``, ``httpd.write``):

* **no hung futures** — every submitted request resolves, faults or
  not, within the replay client's timeout;
* **typed codes everywhere** — every failed response carries a stable
  ``error_code``, never a raw traceback;
* **shed ordering** — ``critical`` is never shed by the detector, and
  under a uniform criticality mix the lower class sheds at least as
  often as the higher;
* **breakers re-close** — a seam that stops failing is probed and the
  breaker returns to ``closed``;
* **drain always terminates** — even with latency faults in flight,
  within its deadline plus the bounded join grace;
* **audit parity** — shed requests produce audit error events like
  every other serving failure;
* **determinism** — a seeded fault plan over a sequential replay
  produces the identical outcome sequence when replayed.
"""

import threading

import pytest

from repro.obs.events import RingBufferSink
from repro.robustness.faults import FaultPlan, FaultSpec, active_plan
from repro.serving.admission import AdmissionController, TenantPolicy
from repro.serving.protocol import QueryRequest
from repro.serving.replay import mixed_workload, replay, standard_catalog
from repro.serving.resilience import (
    CRITICAL,
    CRITICALITIES,
    DEFAULT,
    SHEDDABLE,
    OverloadDetector,
    RetryBudget,
)
from repro.serving.server import QueryServer

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def no_leftover_plan():
    yield
    assert active_plan() is None, "a chaos test leaked an installed FaultPlan"


def criticality_mix(requests):
    """A deterministic uniform assignment of criticality classes."""
    return [
        request.with_(criticality=CRITICALITIES[index % len(CRITICALITIES)])
        for index, request in enumerate(requests)
    ]


def serving_fault_matrix(seed):
    """Seeded rate faults at every serving seam (the HTTP write seam
    is exercised separately — replay is in-process)."""
    return FaultPlan(
        FaultSpec("admission.admit", rate=0.05, seed=seed),
        FaultSpec("serving.resolve", rate=0.05, seed=seed + 1),
        FaultSpec("serving.execute", rate=0.05, seed=seed + 2),
        name="serving-chaos-%d" % seed,
    )


class TestChaosSoak:
    """The acceptance scenario: a 16-thread mixed-tenant soak under a
    seeded fault matrix and a uniform criticality mix."""

    @pytest.mark.parametrize("seed", [0, 7])
    def test_sixteen_thread_soak_under_fault_matrix(self, seed):
        catalog = standard_catalog(seed=0)
        sinks = [
            engine.add_sink(RingBufferSink(capacity=4096))
            for engine in catalog.engines()
        ]
        detector = OverloadDetector()
        admission = AdmissionController(
            TenantPolicy(
                max_concurrent=2,
                max_queue_depth=32,
                queue_deadline_seconds=2.0,
            ),
            overload=detector,
        )
        requests = criticality_mix(mixed_workload(repetitions=2, seed=seed))
        server = QueryServer(
            catalog, admission=admission, workers=4, max_batch=4
        ).start()
        plan = serving_fault_matrix(seed)
        with plan:
            stats = replay(server, requests, clients=16)
        report = server.drain(deadline_seconds=10.0)

        # no hung futures, no transport drops, everything accounted
        assert stats["requests"] == len(requests)
        assert stats["transport_errors"] == 0
        assert report["unresolved"] == 0
        assert report["within_deadline"]

        # typed codes on every failure — the fault matrix may surface
        # only back-pressure/fault codes, never untyped errors
        assert set(stats["errors"]) <= {
            "E_FAULT",
            "E_SHED",
            "E_ADMISSION",
            "E_DEADLINE",
        }

        # shed ordering: critical never shed by the detector; under a
        # uniform mix the lower class sheds at least as often
        shed = admission.shed_counts()
        assert shed[CRITICAL] == 0
        assert shed[SHEDDABLE] >= shed[DEFAULT]

        # audit parity: every E_SHED response produced an audit event
        shed_events = sum(
            1
            for sink in sinks
            for event in sink.events(kind="error")
            if event.code == "E_SHED"
        )
        assert shed_events == stats["errors"].get("E_SHED", 0)
        for engine, sink in zip(catalog.engines(), sinks):
            engine.remove_sink(sink)

    def test_soak_with_retry_budget_does_not_amplify(self):
        catalog = standard_catalog(seed=0)
        admission = AdmissionController(
            TenantPolicy(
                max_concurrent=1,
                max_queue_depth=2,
                queue_deadline_seconds=0.5,
            ),
            overload=OverloadDetector(),
        )
        requests = criticality_mix(mixed_workload(repetitions=2, seed=3))
        budget = RetryBudget(ratio=0.1, burst=4.0)
        server = QueryServer(
            catalog, admission=admission, workers=4, max_batch=4
        ).start()
        stats = replay(server, requests, clients=16, retry_budget=budget)
        report = server.drain(deadline_seconds=10.0)
        assert report["unresolved"] == 0
        # the budget caps amplification: retries stay a small fraction
        assert stats["retries"] <= len(requests) * 0.1 + 4 * len(
            stats["tenants"]
        )
        assert stats["retry_budget"]["spent"] == stats["retries"]


class TestChaosDeterminism:
    """Same seed, same plan, same sequential request stream -> the
    identical outcome sequence (thread interleaving is the only source
    of nondeterminism, so a 1-client/1-worker replay removes it)."""

    def one_run(self, seed):
        catalog = standard_catalog(seed=0)
        requests = criticality_mix(mixed_workload(repetitions=1, seed=seed))
        plan = serving_fault_matrix(seed)
        outcomes = []
        with QueryServer(catalog, workers=1, max_batch=1) as server:
            with plan:
                for request in requests:
                    response = server.query(request, timeout=30)
                    outcomes.append(
                        (response.ok, response.error_code)
                    )
        return outcomes, plan.fired()

    @pytest.mark.parametrize("seed", [0, 11])
    def test_seeded_replay_is_identical(self, seed):
        first, first_fired = self.one_run(seed)
        second, second_fired = self.one_run(seed)
        assert first == second
        assert first_fired == second_fired
        assert first_fired > 0  # the plan actually did something


class TestBreakersUnderChaos:
    def test_plan_cache_breaker_opens_and_recloses(self):
        from repro.serving.resilience import BreakerBoard

        catalog = standard_catalog(seed=0)
        engine, _ = catalog.resolve("hospital")
        saved = engine.breakers
        board = BreakerBoard(
            failure_threshold=2,
            reset_timeout_seconds=0.05,
            jitter=0.0,
        )
        engine.breakers = board
        request = QueryRequest(
            policy="nurse", query="//patient/name", document="hospital"
        )
        try:
            with QueryServer(catalog, workers=1) as server:
                with FaultPlan(
                    FaultSpec("plan_cache.get", every=1),
                    FaultSpec("plan_cache.put", every=1),
                ):
                    for _ in range(4):
                        assert server.query(request, timeout=30).ok
                # repeated seam failures opened the breakers
                opened = board.open_names()
                assert "plan_cache.get" in opened
                # fault gone: wait out the backoff, probes re-close
                deadline = threading.Event()
                for _ in range(50):
                    if not board.open_names():
                        break
                    deadline.wait(0.06)
                    assert server.query(request, timeout=30).ok
                assert board.open_names() == ()
                assert board.breaker("plan_cache.get").reclosed >= 1
        finally:
            engine.breakers = saved

    def test_open_breaker_short_circuits_instead_of_reprobing(self):
        from repro.serving.resilience import BreakerBoard

        catalog = standard_catalog(seed=0)
        engine, _ = catalog.resolve("hospital")
        saved = engine.breakers
        board = BreakerBoard(
            failure_threshold=1,
            reset_timeout_seconds=60.0,
            jitter=0.0,
        )
        engine.breakers = board
        request = QueryRequest(
            policy="nurse", query="//patient/name", document="hospital"
        )
        plan = FaultPlan(FaultSpec("plan_cache.get", every=1))
        try:
            with QueryServer(catalog, workers=1) as server:
                with plan:
                    for _ in range(5):
                        assert server.query(request, timeout=30).ok
                # only the first call paid the failing seam; the rest
                # short-circuited without tripping the fault site
                assert plan.calls("plan_cache.get") == 1
                assert board.breaker("plan_cache.get").short_circuits >= 4
        finally:
            engine.breakers = saved


class TestDrainUnderChaos:
    def test_drain_terminates_with_latency_faults_in_flight(self):
        catalog = standard_catalog(seed=0)
        requests = mixed_workload(repetitions=1, seed=0)
        server = QueryServer(catalog, workers=2, max_batch=2).start()
        futures = []
        with FaultPlan(
            FaultSpec(
                "serving.execute",
                kind="latency",
                latency_seconds=0.02,
                every=2,
            )
        ):
            futures = [server.submit(request) for request in requests]
            report = server.drain(deadline_seconds=20.0)
        assert report["unresolved"] == 0
        for future in futures:
            response = future.result(timeout=0)  # already resolved
            assert response.ok or response.error_code

    def test_drain_past_deadline_rejects_rather_than_hangs(self):
        catalog = standard_catalog(seed=0)
        requests = mixed_workload(repetitions=2, seed=0)
        server = QueryServer(catalog, workers=1, max_batch=1).start()
        with FaultPlan(
            FaultSpec(
                "serving.execute",
                kind="latency",
                latency_seconds=0.05,
                every=1,
            )
        ):
            futures = [server.submit(request) for request in requests]
            # a deadline far shorter than the queue needs: drain must
            # still terminate promptly and resolve every future
            report = server.drain(deadline_seconds=0.2)
        assert report["unresolved"] == 0
        codes = set()
        for future in futures:
            response = future.result(timeout=5)
            if not response.ok:
                codes.add(response.error_code)
        assert codes <= {"E_ADMISSION", "E_FAULT"}
        assert report["rejected"] >= 1


class TestHttpWriteFaults:
    def test_write_fault_never_kills_the_server(self):
        """An injected failure at the HTTP write seam surfaces as a
        best-effort typed 500 (or a dropped connection) and the next
        request on a fresh connection succeeds."""
        import json
        import urllib.error
        import urllib.request

        from repro.serving.httpd import make_http_server

        catalog = standard_catalog(seed=0)
        server = QueryServer(catalog, workers=1).start()
        httpd = make_http_server(server, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        base = "http://127.0.0.1:%d" % httpd.server_address[1]
        payload = json.dumps(
            {"policy": "nurse", "query": "//patient", "document": "hospital"}
        ).encode("utf-8")

        def post():
            request = urllib.request.Request(
                base + "/query", data=payload, method="POST"
            )
            try:
                with urllib.request.urlopen(request, timeout=10) as reply:
                    return reply.status
            except urllib.error.HTTPError as error:
                return error.code
            except Exception:
                return None  # torn connection — tolerated, not a hang

        try:
            with FaultPlan(FaultSpec("httpd.write", at=1)):
                first = post()
            assert first in {500, None}
            assert post() == 200  # the worker thread survived
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)
            server.drain(deadline_seconds=5.0)
