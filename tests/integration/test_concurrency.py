"""Thread-safety regression suite for the shared engine (PR 6).

One engine, many threads: the serving layer shares a single
:class:`SecureQueryEngine` across a pool, so its caches (`_stores`,
`_indexes`, the plan cache, materialized views) and policy table must
tolerate concurrent queries, and concurrent administration
(``register_policy`` / ``invalidate``) against in-flight queries must
yield either a typed error or a consistent answer — never corruption,
deadlock, or a wrong result.

Run just this suite with ``pytest -m concurrency``.
"""

import threading

import pytest

from repro.core.engine import SecureQueryEngine
from repro.core.options import ExecutionOptions
from repro.errors import ReproError
from repro.workloads.hospital import (
    doctor_spec,
    hospital_document,
    hospital_dtd,
    nurse_spec,
)
from repro.xmlmodel.serialize import serialize

pytestmark = pytest.mark.concurrency

THREADS = 16
ROUNDS = 8

QUERY_TEXTS = (
    "//patient/name",
    "//patient//bill",
    "dept/patientInfo/patient/name",
    "//patient/name/text()",
)

OPTION_MATRIX = (
    ExecutionOptions(),
    ExecutionOptions(strategy="columnar"),
    ExecutionOptions(strategy="materialized"),
    ExecutionOptions(use_index=True),
    ExecutionOptions(strategy="columnar", use_index=True),
    ExecutionOptions(use_cache=False),
)


def _build_engine():
    dtd = hospital_dtd()
    engine = SecureQueryEngine(dtd)
    engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
    engine.register_policy("doctor", doctor_spec(dtd))
    return engine


def _canonical(values):
    return sorted(
        value if isinstance(value, str) else serialize(value)
        for value in values
    )


def _hammer(worker, threads=THREADS):
    """Run ``worker(index)`` on N threads; re-raise the first failure."""
    errors = []
    barrier = threading.Barrier(threads)

    def runner(index):
        try:
            barrier.wait(timeout=30)
            worker(index)
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    pool = [
        threading.Thread(target=runner, args=(index,), name="hammer-%d" % index)
        for index in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=120)
        assert not thread.is_alive(), "worker deadlocked"
    if errors:
        raise errors[0]


class TestConcurrentQuerying:
    def test_sixteen_threads_agree_with_sequential(self):
        """The core hammer: 16 threads × every option combination on a
        cold engine answer exactly like a sequential run."""
        engine = _build_engine()
        document = hospital_document(seed=7, max_branch=4)
        reference_engine = _build_engine()
        expected = {
            (policy, text, id(options)): _canonical(
                reference_engine.query(policy, text, document, options=options)
            )
            for policy in ("nurse", "doctor")
            for text in QUERY_TEXTS
            for options in OPTION_MATRIX
        }

        def worker(index):
            for round_no in range(ROUNDS):
                for policy in ("nurse", "doctor"):
                    for text in QUERY_TEXTS:
                        options = OPTION_MATRIX[
                            (index + round_no) % len(OPTION_MATRIX)
                        ]
                        actual = _canonical(
                            engine.query(policy, text, document, options=options)
                        )
                        assert (
                            actual == expected[(policy, text, id(options))]
                        ), (policy, text, options)

        _hammer(worker)

    def test_cold_cache_stampede_builds_once_each(self):
        """All threads racing the same cold (store, index, plan) keys:
        answers agree and the immutable-after-build caches hold exactly
        one artifact per key afterwards."""
        engine = _build_engine()
        document = hospital_document(seed=3, max_branch=4)
        options = ExecutionOptions(strategy="columnar", use_index=True)
        expected = _canonical(
            _build_engine().query(
                "nurse", "//patient//bill", document, options=options
            )
        )

        def worker(index):
            actual = _canonical(
                engine.query("nurse", "//patient//bill", document, options=options)
            )
            assert actual == expected

        _hammer(worker)
        assert len(engine._stores) == 1
        assert len(engine._indexes) == 1

    def test_query_batch_from_many_threads(self):
        engine = _build_engine()
        document = hospital_document(seed=5, max_branch=4)
        options = ExecutionOptions(strategy="columnar")
        expected = [
            _canonical(
                _build_engine().query("nurse", text, document, options=options)
            )
            for text in QUERY_TEXTS
        ]

        def worker(index):
            results = engine.query_batch(
                "nurse", list(QUERY_TEXTS), document, options=options
            )
            assert [_canonical(r) for r in results] == expected

        _hammer(worker)


class TestAdminRaces:
    def test_register_policy_races_are_typed(self):
        """Concurrent duplicate registration: exactly one thread wins,
        the rest get the typed SecurityError — never a half-registered
        policy."""
        from repro.errors import SecurityError

        engine = _build_engine()
        dtd = hospital_dtd()
        wins = []
        losses = []

        def worker(index):
            try:
                engine.register_policy(
                    "contested", nurse_spec(dtd), wardNo=str(index)
                )
                wins.append(index)
            except SecurityError:
                losses.append(index)

        _hammer(worker)
        assert len(wins) == 1
        assert len(losses) == THREADS - 1
        assert "contested" in engine.policies()

    def test_invalidate_races_inflight_queries(self):
        """invalidate() storms while queries are in flight: every query
        either answers consistently or raises a typed ReproError; the
        engine stays usable afterwards."""
        engine = _build_engine()
        document = hospital_document(seed=7, max_branch=4)
        options = ExecutionOptions(strategy="columnar", use_index=True)
        expected = _canonical(
            _build_engine().query(
                "nurse", "//patient/name", document, options=options
            )
        )
        stop = threading.Event()

        def worker(index):
            if index % 4 == 0:  # every fourth thread is an invalidator
                while not stop.is_set():
                    engine.invalidate()
                return
            try:
                for _ in range(ROUNDS):
                    actual = _canonical(
                        engine.query(
                            "nurse", "//patient/name", document, options=options
                        )
                    )
                    assert actual == expected
            finally:
                stop.set()

        _hammer(worker)
        # still consistent once the dust settles
        assert (
            _canonical(
                engine.query("nurse", "//patient/name", document, options=options)
            )
            == expected
        )

    def test_drop_policy_races_inflight_queries(self):
        """Queries against a policy being dropped either answer or
        raise the typed unknown-policy error."""
        from repro.errors import SecurityError

        engine = _build_engine()
        document = hospital_document(seed=7, max_branch=4)
        dropped = threading.Event()

        def worker(index):
            if index == 0:
                engine.drop_policy("doctor")
                dropped.set()
                return
            for _ in range(ROUNDS):
                try:
                    engine.query("doctor", "//patient/name", document)
                except SecurityError:
                    assert dropped.wait(timeout=30)
                    break

        _hammer(worker)
        assert engine.policies() == ["nurse"]

    def test_materialized_view_stampede(self):
        """Concurrent first-touch of a materialized view builds one
        shared tree (identical node objects across threads)."""
        engine = _build_engine()
        document = hospital_document(seed=9, max_branch=4)
        options = ExecutionOptions(strategy="materialized")
        snapshots = [None] * THREADS

        def worker(index):
            result = engine.query(
                "nurse", "//patient", document, options=options
            )
            snapshots[index] = [id(node) for node in result]

        _hammer(worker)
        assert len({tuple(ids) for ids in snapshots}) == 1


class TestPlanCacheConcurrency:
    def test_shared_compiled_query_single_build(self):
        """Many threads racing one cold plan-cache entry reuse a single
        CompiledQuery whose plan was built exactly once."""
        engine = _build_engine()
        document = hospital_document(seed=7, max_branch=4)
        options = ExecutionOptions(strategy="columnar")

        def worker(index):
            engine.query("nurse", "//patient//bill", document, options=options)

        _hammer(worker)
        stats = engine.plan_cache_stats()
        assert stats.size >= 1
        # one compiled entry, many hits: misses stay at the distinct
        # (policy, query, options) cardinality, not the thread count
        assert stats.misses <= len(OPTION_MATRIX)

    def test_typed_errors_under_concurrency(self):
        """Failing queries raise their typed error on every thread
        (no cross-thread error leakage)."""
        engine = _build_engine()
        document = hospital_document(seed=7, max_branch=4)

        def worker(index):
            with pytest.raises(ReproError):
                engine.query("ghost-%d" % index, "//patient", document)

        _hammer(worker)


class TestFlightRecorderConcurrency:
    """The flight recorder is written from every serving worker; the
    debug endpoints read it concurrently.  16 threads must not grow it
    past its bounds, drop an error trace, or corrupt the id index."""

    def _trace(self, trace_id, ok=True, error_code="", tenant="t"):
        from repro.obs.flight import TraceRecord

        return TraceRecord(
            trace_id,
            tenant=tenant,
            policy="nurse",
            query="//a",
            ok=ok,
            error_code=error_code,
            latency_seconds=0.001,
        )

    def test_bounded_memory_under_write_storm(self):
        from repro.obs.flight import FlightRecorder

        recorder = FlightRecorder(capacity=32, tail_capacity=32, seed=0)
        per_thread = 500

        def worker(index):
            for round_no in range(per_thread):
                ok = round_no % 5 != 0  # 20% errors: forces tail churn
                recorder.record(
                    self._trace(
                        "t%02d-%04d" % (index, round_no),
                        ok=ok,
                        error_code="" if ok else "E_BUDGET",
                    )
                )

        _hammer(worker)
        stats = recorder.stats()
        assert stats["recorded"] == THREADS * per_thread
        assert len(recorder) <= 32 + 32
        assert stats["ok_sampled"] <= 32
        assert stats["tail"] <= 32
        # the id index tracks exactly the retained records
        for record in recorder.traces(n=10_000):
            assert recorder.get(record.trace_id) is record

    def test_error_traces_never_dropped_within_tail_capacity(self):
        from repro.obs.flight import FlightRecorder

        errors_per_thread = 8
        recorder = FlightRecorder(
            capacity=4, tail_capacity=THREADS * errors_per_thread, seed=0
        )

        def worker(index):
            for round_no in range(200):
                recorder.record(self._trace("ok%02d-%04d" % (index, round_no)))
            for round_no in range(errors_per_thread):
                retained = recorder.record(
                    self._trace(
                        "err%02d-%02d" % (index, round_no),
                        ok=False,
                        error_code="E_LABEL_DENIED",
                    )
                )
                assert retained

        _hammer(worker)
        # every error from every thread survived the OK flood
        for index in range(THREADS):
            for round_no in range(errors_per_thread):
                record = recorder.get("err%02d-%02d" % (index, round_no))
                assert record is not None
                assert record.status == "denied"
        assert recorder.stats()["tail_evicted"] == 0

    def test_seeded_sampling_is_deterministic_for_a_fixed_order(self):
        """Sampling decisions depend only on (seed, arrival order) —
        replaying the same stream twice retains the same trace ids."""
        from repro.obs.flight import FlightRecorder

        def run():
            recorder = FlightRecorder(capacity=8, tail_capacity=8, seed=42)
            for index in range(2000):
                recorder.record(self._trace("t%05d" % index))
            return sorted(r.trace_id for r in recorder.traces())

        first, second = run(), run()
        assert first == second

    def test_concurrent_readers_see_consistent_records(self):
        """Readers racing the write storm always get either None or a
        fully-formed record — never a torn one."""
        from repro.obs.flight import FlightRecorder

        recorder = FlightRecorder(capacity=16, tail_capacity=16, seed=0)
        stop = threading.Event()

        def worker(index):
            if index % 4 == 0:  # every fourth thread reads
                while not stop.is_set():
                    for record in recorder.traces(n=50):
                        assert record.trace_id
                        assert record.status in (
                            "ok",
                            "slow",
                            "error",
                            "denied",
                            "canary-violation",
                        )
                    recorder.stats()
                return
            try:
                for round_no in range(300):
                    recorder.record(
                        self._trace(
                            "t%02d-%04d" % (index, round_no),
                            ok=round_no % 7 != 0,
                            error_code="" if round_no % 7 else "E_BUDGET",
                        )
                    )
            finally:
                stop.set()

        _hammer(worker)
        assert len(recorder) <= 32

    def test_slo_tracker_counts_every_observation(self):
        """SLOTracker shared across 16 threads loses no requests and
        keeps per-tenant tallies exact."""
        from repro.obs.slo import SLObjective, SLOTracker

        tracker = SLOTracker(SLObjective(threshold_seconds=0.1, target=0.9))
        per_thread = 200

        def worker(index):
            tenant = "tenant-%d" % (index % 4)
            for round_no in range(per_thread):
                tracker.observe(tenant, 0.5 if round_no % 2 else 0.01, True)

        _hammer(worker)
        snapshot = tracker.snapshot()
        assert sorted(snapshot["tenants"]) == [
            "tenant-0",
            "tenant-1",
            "tenant-2",
            "tenant-3",
        ]
        for tenant in snapshot["tenants"].values():
            assert tenant["requests"] == 4 * per_thread
            assert tenant["breaches"] == 4 * per_thread // 2
