"""Every example script must run to completion (they contain their own
assertions)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(script.name for script in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 6
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, (
        script,
        completed.stdout[-2000:],
        completed.stderr[-2000:],
    )
    assert completed.stdout  # every example narrates what it shows
