"""The resource governor end-to-end through the engine.

Typed limit errors across every execution strategy, their audit and
metrics side effects, graceful degradation at the accelerator seams,
and the acceptance bar from the issue: a 50 ms deadline on the Adex
workload's largest document terminates well under 10x the deadline on
both the columnar and object backends.
"""

import time

import pytest

from repro.core.engine import SecureQueryEngine
from repro.core.options import ExecutionOptions
from repro.errors import BudgetExceeded, DeadlineExceeded, FaultInjected
from repro.obs import RingBufferSink, disable_metrics, enable_metrics
from repro.obs.audit import AuditLog
from repro.obs.metrics import metrics_registry
from repro.robustness import (
    DegradationPolicy,
    FaultPlan,
    FaultSpec,
    QueryLimits,
)
from repro.workloads.adex import adex_document, adex_dtd, adex_spec
from repro.workloads.queries import ADEX_QUERY_TEXTS
from repro.workloads.hospital import hospital_dtd, nurse_spec

STRATEGIES = ["virtual", "columnar", "materialized"]


def nurse_engine(**engine_kwargs):
    dtd = hospital_dtd()
    engine = SecureQueryEngine(dtd, **engine_kwargs)
    engine.register_policy("nurse", nurse_spec(dtd), wardNo="2")
    return engine


@pytest.fixture()
def engine():
    return nurse_engine()


class TestTypedLimitErrors:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_max_visits_raises_budget_exceeded(self, engine, hospital_doc, strategy):
        options = ExecutionOptions(
            strategy=strategy, limits=QueryLimits(max_visits=1)
        )
        with pytest.raises(BudgetExceeded) as excinfo:
            engine.query("nurse", "//patient/name", hospital_doc, options=options)
        assert excinfo.value.code == "E_BUDGET"
        assert excinfo.value.dimension == "visits"

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_tiny_deadline_raises_deadline_exceeded(
        self, engine, hospital_doc, strategy
    ):
        options = ExecutionOptions(
            strategy=strategy, limits=QueryLimits(deadline_seconds=1e-9)
        )
        with pytest.raises(DeadlineExceeded) as excinfo:
            engine.query("nurse", "//patient/name", hospital_doc, options=options)
        assert excinfo.value.code == "E_DEADLINE"

    def test_uncached_pipeline_is_governed_too(self, engine, hospital_doc):
        options = ExecutionOptions(
            use_cache=False, limits=QueryLimits(max_visits=1)
        )
        with pytest.raises(BudgetExceeded):
            engine.query("nurse", "//patient/name", hospital_doc, options=options)

    def test_max_results(self, engine, hospital_doc):
        baseline = engine.query("nurse", "//patient/name", hospital_doc)
        assert len(baseline.results) >= 2
        options = ExecutionOptions(limits=QueryLimits(max_results=1))
        with pytest.raises(BudgetExceeded) as excinfo:
            engine.query("nurse", "//patient/name", hospital_doc, options=options)
        assert excinfo.value.dimension == "results"

    def test_generous_limits_leave_answers_unchanged(self, engine, hospital_doc):
        baseline = engine.query("nurse", "//patient/name", hospital_doc)
        options = ExecutionOptions(
            limits=QueryLimits(
                deadline_seconds=30.0,
                max_results=10**6,
                max_visits=10**9,
                max_frontier_rows=10**9,
            )
        )
        governed = engine.query(
            "nurse", "//patient/name", hospital_doc, options=options
        )
        assert [str(r) for r in governed.results] == [
            str(r) for r in baseline.results
        ]

    def test_unlimited_limits_are_a_noop(self, engine, hospital_doc):
        options = ExecutionOptions(limits=QueryLimits())
        result = engine.query(
            "nurse", "//patient/name", hospital_doc, options=options
        )
        assert result.results


class TestAuditAndMetrics:
    def test_limit_errors_become_error_events(self, engine, hospital_doc):
        ring = engine.add_sink(RingBufferSink(capacity=64))
        for limits in (
            QueryLimits(max_visits=1),
            QueryLimits(deadline_seconds=1e-9),
        ):
            with pytest.raises(Exception):
                engine.query(
                    "nurse",
                    "//patient/name",
                    hospital_doc,
                    options=ExecutionOptions(limits=limits),
                )
        codes = [event.code for event in ring.events(kind="error")]
        assert codes == ["E_BUDGET", "E_DEADLINE"]
        assert all(
            event.policy == "nurse" for event in ring.events(kind="error")
        )

    def test_governor_metrics_counters(self, engine, hospital_doc):
        enable_metrics()
        try:
            registry = metrics_registry()
            before = registry.snapshot()["counters"]
            with pytest.raises(BudgetExceeded):
                engine.query(
                    "nurse",
                    "//patient/name",
                    hospital_doc,
                    options=ExecutionOptions(limits=QueryLimits(max_visits=1)),
                )
            with pytest.raises(DeadlineExceeded):
                engine.query(
                    "nurse",
                    "//patient/name",
                    hospital_doc,
                    options=ExecutionOptions(
                        limits=QueryLimits(deadline_seconds=1e-9)
                    ),
                )
            after = registry.snapshot()["counters"]

            def delta(name):
                return after.get(name, 0) - before.get(name, 0)

            assert delta("governor.budget_exceeded") == 1
            assert delta("governor.budget_exceeded.visits") == 1
            assert delta("governor.deadline_exceeded") == 1
        finally:
            disable_metrics()


class TestDegradation:
    def test_store_build_fault_degrades_to_object_backend(self, hospital_doc):
        engine = nurse_engine()
        baseline = engine.query(
            "nurse",
            "//patient/name",
            hospital_doc,
            options=ExecutionOptions(strategy="columnar"),
        )
        degraded_engine = nurse_engine()
        ring = degraded_engine.add_sink(RingBufferSink(capacity=64))
        with FaultPlan(FaultSpec("store.build", at=1)):
            result = degraded_engine.query(
                "nurse",
                "//patient/name",
                hospital_doc,
                options=ExecutionOptions(strategy="columnar"),
            )
        assert [str(r) for r in result.results] == [
            str(r) for r in baseline.results
        ]
        events = ring.events(kind="degradation")
        assert len(events) == 1
        event = events[0]
        assert event.seam == "store.build"
        assert event.fallback == "object-backend"
        assert event.code == "E_FAULT"
        assert event.policy == "nurse"

    def test_index_build_fault_degrades_to_scan(self, hospital_doc):
        engine = nurse_engine()
        ring = engine.add_sink(RingBufferSink(capacity=64))
        baseline = engine.query("nurse", "//patient/name", hospital_doc)
        with FaultPlan(FaultSpec("index.build", at=1)):
            result = engine.query(
                "nurse",
                "//patient/name",
                hospital_doc,
                options=ExecutionOptions(use_index=True),
            )
        assert [str(r) for r in result.results] == [
            str(r) for r in baseline.results
        ]
        events = ring.events(kind="degradation")
        assert [e.fallback for e in events] == ["scan"]

    def test_plan_cache_faults_degrade_to_uncached_compile(self, hospital_doc):
        engine = nurse_engine()
        ring = engine.add_sink(RingBufferSink(capacity=64))
        baseline = engine.query("nurse", "//patient/name", hospital_doc)
        with FaultPlan(
            FaultSpec("plan_cache.get", every=1),
            FaultSpec("plan_cache.put", every=1),
        ):
            result = engine.query("nurse", "//patient/name", hospital_doc)
        assert [str(r) for r in result.results] == [
            str(r) for r in baseline.results
        ]
        seams = {e.seam for e in ring.events(kind="degradation")}
        assert "plan_cache.get" in seams

    def test_degraded_build_is_retried_next_query(self, hospital_doc):
        engine = nurse_engine()
        options = ExecutionOptions(strategy="columnar")
        with FaultPlan(FaultSpec("store.build", at=1)) as plan:
            engine.query("nurse", "//patient/name", hospital_doc, options=options)
            assert plan.fired() == 1
            # the failed build was not cached: the next query rebuilds,
            # and with the fault disarmed (at=1) it succeeds
            engine.query("nurse", "//patient/name", hospital_doc, options=options)
            assert plan.calls("store.build") == 2
        report = engine.query(
            "nurse", "//patient/name", hospital_doc, options=options
        )
        assert report.results

    def test_strict_policy_propagates(self, hospital_doc):
        engine = nurse_engine(degradation=DegradationPolicy(strict=True))
        with FaultPlan(FaultSpec("store.build", at=1)):
            with pytest.raises(FaultInjected):
                engine.query(
                    "nurse",
                    "//patient/name",
                    hospital_doc,
                    options=ExecutionOptions(strategy="columnar"),
                )

    def test_audit_stats_count_degradations(self, hospital_doc):
        engine = nurse_engine()
        ring = engine.add_sink(RingBufferSink(capacity=64))
        with FaultPlan(FaultSpec("store.build", at=1)):
            engine.query(
                "nurse",
                "//patient/name",
                hospital_doc,
                options=ExecutionOptions(strategy="columnar"),
            )
        stats = AuditLog(ring.events()).stats()
        assert stats["nurse"]["degradations"] == 1
        assert stats["nurse"]["queries"] == 1


class TestDeadlineAcceptance:
    """The issue's acceptance bar: a 50 ms deadline on the largest Adex
    document terminates well under 10x the deadline, on both backends."""

    DEADLINE = 0.050
    CEILING = 10 * DEADLINE

    @pytest.fixture(scope="class")
    def adex_engine(self):
        dtd = adex_dtd()
        engine = SecureQueryEngine(dtd)
        engine.register_policy("adex", adex_spec(dtd))
        return engine

    @pytest.fixture(scope="class")
    def big_doc(self):
        # the largest document the benchmarks run (D4-scale)
        return adex_document(seed=3, buyers=40, ads=400)

    @pytest.mark.parametrize("strategy", ["virtual", "columnar"])
    def test_deadline_bounds_wall_clock(self, adex_engine, big_doc, strategy):
        options = ExecutionOptions(
            strategy=strategy,
            limits=QueryLimits(deadline_seconds=self.DEADLINE),
        )
        started = time.perf_counter()
        try:
            adex_engine.query("adex", ADEX_QUERY_TEXTS["Q3"], big_doc, options=options)
        except DeadlineExceeded as error:
            assert error.elapsed_seconds < self.CEILING
        elapsed = time.perf_counter() - started
        # terminate (answer or typed error) well under 10x the deadline
        assert elapsed < self.CEILING

    def test_deadline_error_reports_overshoot(self, adex_engine, big_doc):
        options = ExecutionOptions(
            limits=QueryLimits(deadline_seconds=1e-6)
        )
        with pytest.raises(DeadlineExceeded) as excinfo:
            adex_engine.query(
                "adex", ADEX_QUERY_TEXTS["Q3"], big_doc, options=options
            )
        error = excinfo.value
        assert error.deadline_seconds == 1e-6
        assert error.elapsed_seconds >= 1e-6
