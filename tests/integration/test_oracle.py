"""The central correctness theorem, exercised broadly:

    for every query p over the view:   p(Tv)  ==  rewrite(p)(T)

and additionally optimize preserves the answer.  Runs a grid of
queries x documents x policies over both workloads and the recursive
catalog DTD.
"""

import pytest

from repro.core.derive import derive
from repro.core.materialize import materialize
from repro.core.optimize import Optimizer
from repro.core.rewrite import Rewriter
from repro.core.spec import AccessSpec
from repro.core.unfold import unfold_view
from repro.dtd.generator import DocumentGenerator
from repro.workloads.hospital import doctor_spec, hospital_document, hospital_dtd
from repro.xpath.evaluator import XPathEvaluator
from repro.xpath.parser import parse_xpath

NURSE_QUERIES = [
    "//patient/name",
    "//patient//bill",
    "dept/patientInfo/patient/name",
    "//dummy1/bill",
    "//dummy2/medication",
    "//treatment/*",
    "//staffInfo//doctor | //staffInfo//nurse",
    "//patient[treatment/dummy1]/name",
    "//patient[not(treatment/dummy1)]/name",
    'dept/patientInfo/patient[wardNo = "2"]',
    "//*[medication]",
    "/hospital/dept/staffInfo",
    "dept[staffInfo/staff]/patientInfo/patient/name",
    "//patient[name and wardNo]/treatment",
    "*/*",
    ".",
    "//name/text()",
]

DOCTOR_QUERIES = [
    "//clinicalTrial//name",
    "//patient/name",
    "dept/clinicalTrial/patientInfo/patient/name",
    "//treatment/trial/bill",
    "//patient[treatment/regular/medication]/name",
    "//*[wardNo = \"2\"]/name",
]


def run_oracle(document, view, spec, query_texts, optimizer=None):
    """Compare ``p(Tv)`` against the engine's answer for every query.

    Results over the view are view elements; results over the document
    are *projected through the view* (as the engine does for users),
    so both sides serialize identically when the rewriting is correct.
    """
    from repro.core.engine import SecureQueryEngine
    from repro.core.options import ExecutionOptions
    from repro.xmlmodel.serialize import serialize

    view_tree = materialize(document, view, spec)
    engine = SecureQueryEngine(spec.dtd)
    engine.register_policy("oracle", spec)
    evaluator = XPathEvaluator()
    for text in query_texts:
        query = parse_xpath(text)
        expected = sorted(
            serialize(node) if node.is_element else node.value
            for node in evaluator.evaluate(query, view_tree)
        )
        for use_optimizer in (False, True) if optimizer else (False,):
            results = engine.query(
                "oracle",
                query,
                document,
                options=ExecutionOptions(optimize=use_optimizer),
            )
            actual = sorted(
                value if isinstance(value, str) else serialize(value)
                for value in results
            )
            assert expected == actual, (
                text,
                "optimize" if use_optimizer else "rewrite",
            )


class TestNursePolicy:
    @pytest.mark.parametrize("seed", [0, 7, 13, 21, 35])
    def test_oracle_grid(self, nurse, nurse_view, seed):
        document = hospital_document(seed=seed, max_branch=4)
        optimizer = Optimizer(hospital_dtd())
        run_oracle(document, nurse_view, nurse, NURSE_QUERIES, optimizer)


class TestDoctorPolicy:
    @pytest.mark.parametrize("seed", [3, 9, 17])
    def test_oracle_grid(self, hospital, seed):
        spec = doctor_spec(hospital)
        view = derive(spec)
        document = hospital_document(seed=seed, max_branch=4)
        optimizer = Optimizer(hospital)
        run_oracle(document, view, spec, DOCTOR_QUERIES, optimizer)


class TestAdexPolicy:
    QUERIES = [
        "//buyer-info/contact-info",
        "//house/r-e.warranty | //apartment/r-e.warranty",
        "//buyer-info[//company-id and //contact-info]",
        "//real-estate/*",
        "//r-e.location",
        "//house[r-e.asking-price]/r-e.location",
        "*/*",
        "//contact-info/phone/text()",
    ]

    @pytest.mark.parametrize("seed", [1, 5])
    def test_oracle_grid(self, adex, adex_policy, adex_view, seed):
        from repro.workloads.adex import adex_document

        document = adex_document(seed=seed, buyers=10, ads=30)
        optimizer = Optimizer(adex)
        run_oracle(document, adex_view, adex_policy, self.QUERIES, optimizer)


class TestRecursivePolicy:
    QUERIES = ["//b", "//dummy1//b", "//dummy2//b", "*", "//dummy1[b]/b"]

    @pytest.mark.parametrize("seed", [0, 4, 8, 12, 16])
    def test_oracle_grid(self, recursive_dtd, recursive_spec, recursive_view, seed):
        document = DocumentGenerator(
            recursive_dtd, seed=seed, max_depth=12
        ).generate()
        run_oracle(document, recursive_view, recursive_spec, self.QUERIES)


class TestCatalogPolicy:
    def test_deep_catalog(self):
        from repro.dtd.parser import parse_dtd

        dtd = parse_dtd(
            """
            <!ELEMENT catalog (assembly*)>
            <!ELEMENT assembly (part, children)>
            <!ELEMENT children (assembly*)>
            <!ELEMENT part (#PCDATA)>
            """
        )
        spec = AccessSpec(dtd, name="flat")
        spec.annotate("assembly", "children", "N")
        spec.annotate("children", "assembly", "Y")
        view = derive(spec)
        for seed in (2, 5, 9):
            document = DocumentGenerator(
                dtd, seed=seed, max_branch=2, max_depth=10
            ).generate()
            run_oracle(
                document,
                view,
                spec,
                ["//part", "assembly/assembly/part", "//assembly[part]/part"],
            )
